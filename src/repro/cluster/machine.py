"""Cluster assembly and the paper-platform preset.

:class:`Cluster` wires an :class:`~repro.sim.engine.Engine`, ``N``
:class:`~repro.cluster.node.Node` objects and a
:class:`~repro.cluster.network.SwitchedNetwork` together.  One
:class:`Cluster` instance represents one *job execution*: build it,
run a program on it (see :mod:`repro.mpi.program`), read its meters.
Fresh runs should build fresh clusters — they are cheap.

:func:`paper_cluster` returns the reproduction of the paper's platform
(§4.1): 16 Dell Inspiron 8600 nodes, Pentium M 1.4 GHz with the Table 2
operating points, 32 KiB L1 / 1 MiB L2 / 1 GiB DDR, 100 Mb switched
Ethernet.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.cpu import CpuSpec
from repro.cluster.memory import MemorySpec
from repro.cluster.network import NetworkSpec, SwitchedNetwork
from repro.cluster.nic import NicSpec
from repro.cluster.node import Node
from repro.cluster.power import PowerSpec
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

__all__ = ["ClusterSpec", "Cluster", "paper_spec", "paper_cluster"]


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Full static description of a homogeneous cluster."""

    n_nodes: int = 16
    cpu: CpuSpec = dataclasses.field(default_factory=CpuSpec)
    memory: MemorySpec = dataclasses.field(default_factory=MemorySpec)
    power: PowerSpec = dataclasses.field(default_factory=PowerSpec)
    nic: NicSpec = dataclasses.field(default_factory=NicSpec)
    network: NetworkSpec = dataclasses.field(default_factory=NetworkSpec)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1: {self.n_nodes}")

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """A copy of this spec with a different node count."""
        return dataclasses.replace(self, n_nodes=n_nodes)


class Cluster:
    """One bootable instance of a cluster.

    Parameters
    ----------
    spec:
        The hardware description.
    frequency_hz:
        Initial frequency for every node (default: the base point).
    trace:
        When true, attach a :class:`~repro.sim.trace.Tracer` that the
        program runtime fills with per-rank activity intervals.
    """

    def __init__(
        self,
        spec: ClusterSpec | None = None,
        *,
        frequency_hz: float | None = None,
        trace: bool = False,
    ) -> None:
        self.spec = spec or ClusterSpec()
        self.engine = Engine()
        self.nodes = [
            Node(
                node_id=i,
                cpu=self.spec.cpu,
                memory=self.spec.memory,
                power=self.spec.power,
                nic=self.spec.nic,
                frequency_hz=frequency_hz,
            )
            for i in range(self.spec.n_nodes)
        ]
        self.network = SwitchedNetwork(
            self.engine, self.spec.n_nodes, self.spec.network
        )
        self.tracer: Tracer | None = Tracer() if trace else None

    # -- shape -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return self.spec.n_nodes

    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        if not 0 <= node_id < self.n_nodes:
            raise ConfigurationError(
                f"node id {node_id} out of range [0, {self.n_nodes})"
            )
        return self.nodes[node_id]

    # -- frequency control -------------------------------------------------

    def set_all_frequencies(self, frequency_hz: float) -> None:
        """Set every node to the same operating point (instantaneous)."""
        for node in self.nodes:
            node.set_frequency(frequency_hz)

    @property
    def operating_points(self):
        """The (shared) operating point table of the nodes' CPUs."""
        return self.spec.cpu.operating_points

    # -- meters -----------------------------------------------------------

    @property
    def total_energy_joules(self) -> float:
        """Energy consumed so far across all nodes."""
        return sum(node.energy.total_joules for node in self.nodes)

    def reset_measurements(self) -> None:
        """Zero all node counters and energy meters."""
        for node in self.nodes:
            node.reset_measurements()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster n={self.n_nodes} t={self.engine.now:.6f}s>"


def paper_spec(n_nodes: int = 16) -> ClusterSpec:
    """The paper's experimental platform (§4.1) as a :class:`ClusterSpec`.

    All component specs use their defaults, which are calibrated to the
    published observables: Table 2 operating points, Table 6 per-level
    latencies (including the bus-downshift quirk), 100 Mb switched
    Ethernet with MPICH-era efficiency.
    """
    return ClusterSpec(n_nodes=n_nodes)


def paper_cluster(
    n_nodes: int = 16,
    *,
    frequency_hz: float | None = None,
    trace: bool = False,
) -> Cluster:
    """A bootable instance of the paper's 16-node platform."""
    return Cluster(paper_spec(n_nodes), frequency_hz=frequency_hz, trace=trace)
