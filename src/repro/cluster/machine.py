"""Cluster assembly and the paper-platform preset.

:class:`Cluster` wires an :class:`~repro.sim.engine.Engine`, ``N``
:class:`~repro.cluster.node.Node` objects and a
:class:`~repro.cluster.network.SwitchedNetwork` together.  One
:class:`Cluster` instance represents one *job execution*: build it,
run a program on it (see :mod:`repro.mpi.program`), read its meters.
Fresh runs should build fresh clusters — they are cheap.

:func:`paper_cluster` returns the reproduction of the paper's platform
(§4.1): 16 Dell Inspiron 8600 nodes, Pentium M 1.4 GHz with the Table 2
operating points, 32 KiB L1 / 1 MiB L2 / 1 GiB DDR, 100 Mb switched
Ethernet.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.cpu import CpuSpec
from repro.cluster.memory import MemorySpec
from repro.cluster.network import NetworkSpec, SwitchedNetwork
from repro.cluster.nic import NicSpec
from repro.cluster.node import Node
from repro.cluster.power import PowerSpec
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

__all__ = [
    "NodeGroupSpec",
    "ClusterSpec",
    "Cluster",
    "paper_spec",
    "paper_cluster",
]


@dataclasses.dataclass(frozen=True)
class NodeGroupSpec:
    """Hardware description of one homogeneous slice of a cluster.

    A heterogeneous cluster is a sequence of node groups — e.g. eight
    first-generation nodes plus eight newer ones.  Node ids are laid
    out group-major: group 0 owns ids ``0..count₀-1``, group 1 the next
    ``count₁``, and so on, so a job on the first ``n`` nodes draws from
    the earliest groups first.
    """

    count: int
    cpu: CpuSpec = dataclasses.field(default_factory=CpuSpec)
    memory: MemorySpec = dataclasses.field(default_factory=MemorySpec)
    power: PowerSpec = dataclasses.field(default_factory=PowerSpec)
    nic: NicSpec = dataclasses.field(default_factory=NicSpec)
    name: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"node group count must be >= 1: {self.count}"
            )


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Full static description of a cluster.

    The degenerate form (``groups=()``) is a homogeneous cluster of
    ``n_nodes`` identical nodes built from the top-level component
    specs — the paper's platform.  A heterogeneous cluster supplies
    explicit ``groups``; the top-level component fields then mirror
    group 0 (enforced here), so code that only understands one spec
    sees the first group's view.
    """

    n_nodes: int = 16
    cpu: CpuSpec = dataclasses.field(default_factory=CpuSpec)
    memory: MemorySpec = dataclasses.field(default_factory=MemorySpec)
    power: PowerSpec = dataclasses.field(default_factory=PowerSpec)
    nic: NicSpec = dataclasses.field(default_factory=NicSpec)
    network: NetworkSpec = dataclasses.field(default_factory=NetworkSpec)
    groups: tuple[NodeGroupSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1: {self.n_nodes}")
        if not self.groups:
            return
        object.__setattr__(self, "groups", tuple(self.groups))
        total = sum(group.count for group in self.groups)
        if total != self.n_nodes:
            raise ConfigurationError(
                f"node groups provide {total} nodes but n_nodes is "
                f"{self.n_nodes}"
            )
        # The top-level component fields mirror group 0 so single-spec
        # consumers (and the digest of the degenerate case) stay
        # coherent with the group layout.
        first = self.groups[0]
        object.__setattr__(self, "cpu", first.cpu)
        object.__setattr__(self, "memory", first.memory)
        object.__setattr__(self, "power", first.power)
        object.__setattr__(self, "nic", first.nic)
        # DVFS consistency: every group must be able to run at the
        # cluster's base frequency (jobs boot there by default).
        # Catching this here — with_nodes() goes through the same
        # validation via dataclasses.replace — beats the lookup error
        # a Node would raise deep inside the engine.
        base = first.cpu.operating_points.base.frequency_hz
        for index, group in enumerate(self.groups):
            table = group.cpu.operating_points
            if base not in table.frequencies:
                label = group.name or f"group {index}"
                legal = ", ".join(
                    f"{f / 1e6:.0f}" for f in table.frequencies
                )
                raise ConfigurationError(
                    f"node group {label!r}: cluster base frequency "
                    f"{base / 1e6:.0f} MHz is absent from its "
                    f"operating-point table (legal: {legal} MHz)"
                )

    @classmethod
    def heterogeneous(
        cls,
        groups: _t.Iterable[NodeGroupSpec],
        network: NetworkSpec | None = None,
    ) -> "ClusterSpec":
        """A spec from explicit node groups (node count = sum of counts)."""
        groups = tuple(groups)
        if not groups:
            raise ConfigurationError("need at least one node group")
        return cls(
            n_nodes=sum(group.count for group in groups),
            network=network if network is not None else NetworkSpec(),
            groups=groups,
        )

    def node_groups(self) -> tuple[NodeGroupSpec, ...]:
        """The group layout; homogeneous specs synthesize one group."""
        if self.groups:
            return self.groups
        return (
            NodeGroupSpec(
                count=self.n_nodes,
                cpu=self.cpu,
                memory=self.memory,
                power=self.power,
                nic=self.nic,
                name="all",
            ),
        )

    @property
    def is_heterogeneous(self) -> bool:
        """True when the spec carries more than one node group."""
        return len(self.groups) > 1

    @property
    def base_frequency_hz(self) -> float:
        """The cluster's boot frequency (group 0's lowest point)."""
        return self.cpu.operating_points.base.frequency_hz

    def common_frequencies(self) -> tuple[float, ...]:
        """Frequencies legal on *every* node group, ascending.

        The cluster-wide campaign grid and the governor's legal sets
        draw from this; for homogeneous specs it is simply the
        operating-point table.
        """
        common = set(self.cpu.operating_points.frequencies)
        for group in self.node_groups():
            common &= set(group.cpu.operating_points.frequencies)
        if not common:
            raise ConfigurationError(
                "node groups share no common operating frequency"
            )
        return tuple(sorted(common))

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """A copy of this spec with a different node count.

        Heterogeneous specs keep the group-major layout: the copy is
        the *first* ``n_nodes`` nodes, truncating groups from the end
        (a grid cell at ``n`` uses the earliest groups first, exactly
        the nodes :class:`Cluster` would boot).
        """
        if not self.groups:
            return dataclasses.replace(self, n_nodes=n_nodes)
        total = sum(group.count for group in self.groups)
        if n_nodes > total:
            raise ConfigurationError(
                f"cannot scale a heterogeneous spec to {n_nodes} nodes: "
                f"its groups provide only {total}"
            )
        remaining = int(n_nodes)
        kept: list[NodeGroupSpec] = []
        for group in self.groups:
            if remaining <= 0:
                break
            take = min(group.count, remaining)
            kept.append(dataclasses.replace(group, count=take))
            remaining -= take
        return dataclasses.replace(
            self, n_nodes=int(n_nodes), groups=tuple(kept)
        )


class Cluster:
    """One bootable instance of a cluster.

    Parameters
    ----------
    spec:
        The hardware description.
    frequency_hz:
        Initial frequency for every node (default: the base point).
    trace:
        When true, attach a :class:`~repro.sim.trace.Tracer` that the
        program runtime fills with per-rank activity intervals.
    """

    def __init__(
        self,
        spec: ClusterSpec | None = None,
        *,
        frequency_hz: float | None = None,
        trace: bool = False,
    ) -> None:
        self.spec = spec or ClusterSpec()
        self.engine = Engine()
        # Nodes are built group-major: group 0's nodes take the lowest
        # ids.  The homogeneous case is one synthesized group carrying
        # the spec's own component objects, so it boots exactly the
        # nodes the pre-group code did.
        self.nodes: list[Node] = []
        for group in self.spec.node_groups():
            for _ in range(group.count):
                self.nodes.append(
                    Node(
                        node_id=len(self.nodes),
                        cpu=group.cpu,
                        memory=group.memory,
                        power=group.power,
                        nic=group.nic,
                        frequency_hz=frequency_hz,
                    )
                )
        self.network = SwitchedNetwork(
            self.engine, self.spec.n_nodes, self.spec.network
        )
        self.tracer: Tracer | None = Tracer() if trace else None

    # -- shape -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return self.spec.n_nodes

    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        if not 0 <= node_id < self.n_nodes:
            raise ConfigurationError(
                f"node id {node_id} out of range [0, {self.n_nodes})"
            )
        return self.nodes[node_id]

    # -- frequency control -------------------------------------------------

    def set_all_frequencies(self, frequency_hz: float) -> None:
        """Set every node to the same operating point (instantaneous)."""
        for node in self.nodes:
            node.set_frequency(frequency_hz)

    @property
    def operating_points(self):
        """The operating point table of group 0's CPUs.

        Homogeneous clusters share one table; on heterogeneous
        clusters, cluster-wide frequency choices should come from
        ``spec.common_frequencies()`` instead.
        """
        return self.spec.cpu.operating_points

    # -- meters -----------------------------------------------------------

    @property
    def total_energy_joules(self) -> float:
        """Energy consumed so far across all nodes."""
        return sum(node.energy.total_joules for node in self.nodes)

    def reset_measurements(self) -> None:
        """Zero all node counters and energy meters."""
        for node in self.nodes:
            node.reset_measurements()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster n={self.n_nodes} t={self.engine.now:.6f}s>"


def paper_spec(n_nodes: int = 16) -> ClusterSpec:
    """The paper's experimental platform (§4.1) as a :class:`ClusterSpec`.

    All component specs use their defaults, which are calibrated to the
    published observables: Table 2 operating points, Table 6 per-level
    latencies (including the bus-downshift quirk), 100 Mb switched
    Ethernet with MPICH-era efficiency.
    """
    return ClusterSpec(n_nodes=n_nodes)


def paper_cluster(
    n_nodes: int = 16,
    *,
    frequency_hz: float | None = None,
    trace: bool = False,
) -> Cluster:
    """A bootable instance of the paper's 16-node platform."""
    return Cluster(paper_spec(n_nodes), frequency_hz=frequency_hz, trace=trace)
