"""Core (ON-chip) timing model.

The paper models ON-chip execution time as ``w_ON · CPI_ON / f_ON``
(Eq. 6): instructions times average cycles-per-instruction divided by the
core clock.  ``CPI_ON`` is itself the workload-weighted average of
per-memory-level CPIs (paper §5.2 step 2).  This module provides that
machinery for the simulator side:

* :class:`CpuSpec` — per-level cycle costs and the DVFS operating points.
* :class:`CpuTimingModel` — turns an ON-chip instruction mix plus a
  frequency into seconds.

Cycle costs are *effective* CPIs: superscalar issue and instruction-level
parallelism are folded in (the paper applies an ILP adjustment of ~2.42
FPD computations per memory operation the same way; footnote 9).
"""

from __future__ import annotations

import dataclasses

from repro.cluster.opoints import (
    PENTIUM_M_OPERATING_POINTS,
    OperatingPointTable,
)
from repro.cluster.workmix import InstructionMix
from repro.errors import ConfigurationError

__all__ = ["CpuSpec", "CpuTimingModel"]


@dataclasses.dataclass(frozen=True)
class CpuSpec:
    """Static description of a DVFS-capable core.

    Attributes
    ----------
    operating_points:
        Legal (frequency, voltage) pairs.
    cpi_cpu, cpi_l1, cpi_l2:
        Effective cycles per instruction for work whose data is in
        registers, the L1 data cache and the L2 cache respectively.
        Calibrated so the weighted average over a typical NPB mix lands
        near the paper's measured ``CPI_ON`` = 2.19 (Table 6).
    dvfs_transition_s:
        Wall time to switch operating points.  Enhanced SpeedStep
        transitions take on the order of tens of microseconds.
    """

    operating_points: OperatingPointTable = PENTIUM_M_OPERATING_POINTS
    cpi_cpu: float = 1.2
    cpi_l1: float = 2.8
    cpi_l2: float = 10.0
    dvfs_transition_s: float = 50e-6

    def __post_init__(self) -> None:
        for name in ("cpi_cpu", "cpi_l1", "cpi_l2"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.dvfs_transition_s < 0:
            raise ConfigurationError("dvfs_transition_s must be >= 0")
        # Hot-path form of cpi_by_level: the timing model multiplies by
        # these once per executed mix, so avoid rebuilding a dict there.
        object.__setattr__(
            self, "_on_chip_cpis", (self.cpi_cpu, self.cpi_l1, self.cpi_l2)
        )

    @property
    def cpi_by_level(self) -> dict[str, float]:
        """Per-ON-chip-level CPI, keyed like :class:`InstructionMix`."""
        return {"cpu": self.cpi_cpu, "l1": self.cpi_l1, "l2": self.cpi_l2}


class CpuTimingModel:
    """Computes ON-chip execution time for instruction mixes.

    Parameters
    ----------
    spec:
        The core description.
    """

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec

    def validate_frequency(self, frequency_hz: float) -> float:
        """Return ``frequency_hz`` if it is a legal operating point."""
        return self.spec.operating_points.lookup(frequency_hz).frequency_hz

    def on_chip_cycles(self, mix: InstructionMix) -> float:
        """Total core cycles for the ON-chip part of ``mix``.

        Cycles are frequency-independent; divide by ``f`` for seconds.
        """
        cpi_cpu, cpi_l1, cpi_l2 = self.spec._on_chip_cpis
        return mix.cpu * cpi_cpu + mix.l1 * cpi_l1 + mix.l2 * cpi_l2

    def on_chip_seconds(self, mix: InstructionMix, frequency_hz: float) -> float:
        """ON-chip execution time: ``Σ_level w_level · CPI_level / f``.

        This is the simulator-side realization of the
        ``w_ON · CPI_ON / f_ON`` term of Eq. 6.
        """
        f = self.validate_frequency(frequency_hz)
        return self.on_chip_cycles(mix) / f

    def weighted_cpi_on(self, mix: InstructionMix) -> float:
        """Workload-weighted average ON-chip CPI (paper §5.2 step 2).

        ``CPI_ON = Σ_level weight_level · CPI_level`` where the weights
        are the ON-chip level fractions of ``mix``.  Returns 0 for a mix
        with no ON-chip work.
        """
        weights = mix.on_chip_weights()
        cpi_cpu, cpi_l1, cpi_l2 = self.spec._on_chip_cpis
        return (
            weights["cpu"] * cpi_cpu
            + weights["l1"] * cpi_l1
            + weights["l2"] * cpi_l2
        )

    def frequency_speedup(self, frequency_hz: float) -> float:
        """Ideal ON-chip speedup ``f / f0`` relative to the base point."""
        f = self.validate_frequency(frequency_hz)
        return f / self.spec.operating_points.base.frequency_hz
