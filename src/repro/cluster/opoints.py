"""DVFS operating points.

An *operating point* pairs a core clock frequency with the minimum supply
voltage at which the core is stable at that frequency.  The paper's
platform (Table 2) exposes five Enhanced-SpeedStep points on the
1.4 GHz Pentium M:

==========  ==============
Frequency   Supply voltage
==========  ==============
1.4 GHz     1.484 V
1.2 GHz     1.436 V
1.0 GHz     1.308 V
800 MHz     1.180 V
600 MHz     0.956 V
==========  ==============

:class:`OperatingPointTable` stores a sorted, validated set of points and
answers the lookups the rest of the library needs (base frequency,
voltage at a frequency, nearest legal point).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError
from repro.units import mhz, to_mhz

__all__ = [
    "OperatingPoint",
    "OperatingPointTable",
    "PENTIUM_M_OPERATING_POINTS",
]


@dataclasses.dataclass(frozen=True, slots=True, order=True)
class OperatingPoint:
    """One DVFS (frequency, voltage) pair.

    Attributes
    ----------
    frequency_hz:
        Core clock frequency in hertz.
    voltage_v:
        Supply voltage in volts.
    """

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"operating point frequency must be positive: {self.frequency_hz}"
            )
        if self.voltage_v <= 0:
            raise ConfigurationError(
                f"operating point voltage must be positive: {self.voltage_v}"
            )

    @property
    def frequency_mhz(self) -> float:
        """The frequency in MHz (convenience for table rendering)."""
        return to_mhz(self.frequency_hz)

    def __str__(self) -> str:
        return f"{self.frequency_mhz:.0f} MHz @ {self.voltage_v:.3f} V"


class OperatingPointTable:
    """An immutable, frequency-sorted collection of operating points.

    Parameters
    ----------
    points:
        The available (frequency, voltage) pairs.  Frequencies must be
        unique; voltage must be non-decreasing with frequency (a physical
        requirement of DVFS: higher clocks need at least as much voltage).
    """

    def __init__(self, points: _t.Iterable[OperatingPoint]) -> None:
        pts = sorted(points, key=lambda p: p.frequency_hz)
        if not pts:
            raise ConfigurationError("operating point table cannot be empty")
        freqs = [p.frequency_hz for p in pts]
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError(f"duplicate frequencies in {freqs}")
        for lo, hi in zip(pts, pts[1:]):
            if hi.voltage_v < lo.voltage_v:
                raise ConfigurationError(
                    "voltage must be non-decreasing with frequency: "
                    f"{hi} < {lo}"
                )
        self._points: tuple[OperatingPoint, ...] = tuple(pts)
        self._by_freq: dict[float, OperatingPoint] = {
            p.frequency_hz: p for p in pts
        }

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> _t.Iterator[OperatingPoint]:
        return iter(self._points)

    def __contains__(self, frequency_hz: float) -> bool:
        return float(frequency_hz) in self._by_freq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperatingPointTable):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    # -- queries -------------------------------------------------------------

    @property
    def points(self) -> tuple[OperatingPoint, ...]:
        """All points, ascending in frequency."""
        return self._points

    @property
    def frequencies(self) -> tuple[float, ...]:
        """All frequencies in hertz, ascending."""
        return tuple(p.frequency_hz for p in self._points)

    @property
    def frequencies_mhz(self) -> tuple[float, ...]:
        """All frequencies in MHz, ascending."""
        return tuple(p.frequency_mhz for p in self._points)

    @property
    def base(self) -> OperatingPoint:
        """The lowest-frequency point — the paper's ``f0``."""
        return self._points[0]

    @property
    def peak(self) -> OperatingPoint:
        """The highest-frequency point."""
        return self._points[-1]

    def lookup(self, frequency_hz: float) -> OperatingPoint:
        """The point at exactly ``frequency_hz``.

        Raises
        ------
        ConfigurationError
            If the frequency is not one of the table's legal points.
        """
        try:
            return self._by_freq[float(frequency_hz)]
        except KeyError:
            legal = ", ".join(f"{f:.0f}" for f in self.frequencies_mhz)
            raise ConfigurationError(
                f"{to_mhz(frequency_hz):.0f} MHz is not an available operating "
                f"point (legal: {legal} MHz)"
            ) from None

    def voltage_at(self, frequency_hz: float) -> float:
        """Supply voltage (volts) at a legal frequency."""
        return self.lookup(frequency_hz).voltage_v

    def nearest(self, frequency_hz: float) -> OperatingPoint:
        """The legal point whose frequency is closest to ``frequency_hz``.

        Ties resolve to the *lower* frequency (the conservative choice
        for a power-aware scheduler).
        """
        return min(
            self._points,
            key=lambda p: (abs(p.frequency_hz - frequency_hz), p.frequency_hz),
        )

    def next_below(self, frequency_hz: float) -> OperatingPoint | None:
        """The highest legal point strictly below ``frequency_hz``, if any."""
        below = [p for p in self._points if p.frequency_hz < frequency_hz]
        return below[-1] if below else None

    def next_above(self, frequency_hz: float) -> OperatingPoint | None:
        """The lowest legal point strictly above ``frequency_hz``, if any."""
        above = [p for p in self._points if p.frequency_hz > frequency_hz]
        return above[0] if above else None

    def __repr__(self) -> str:
        inner = ", ".join(str(p) for p in self._points)
        return f"OperatingPointTable([{inner}])"


#: Table 2 of the paper: Enhanced Intel SpeedStep operating points of the
#: 1.4 GHz Pentium M in the Dell Inspiron 8600 nodes.
PENTIUM_M_OPERATING_POINTS = OperatingPointTable(
    [
        OperatingPoint(mhz(600), 0.956),
        OperatingPoint(mhz(800), 1.180),
        OperatingPoint(mhz(1000), 1.308),
        OperatingPoint(mhz(1200), 1.436),
        OperatingPoint(mhz(1400), 1.484),
    ]
)
