"""A cluster node: core + memory + counters + power meter + NIC.

The node is the unit the simulated MPI runtime talks to.  It exposes
duration computations (how long would this instruction mix take at my
current clock?) and accounting hooks (this much time was spent in that
power state).  All *waiting* — the actual passage of simulated time — is
done by the program runtime in :mod:`repro.mpi.program`, which keeps the
node model clock-free and easy to test.
"""

from __future__ import annotations

from repro.cluster.counters import HardwareCounters
from repro.cluster.cpu import CpuSpec, CpuTimingModel
from repro.cluster.memory import MemorySpec, MemoryTimingModel
from repro.cluster.nic import NicSpec
from repro.cluster.opoints import OperatingPoint
from repro.cluster.power import EnergyMeter, PowerSpec, PowerState
from repro.cluster.workmix import InstructionMix

__all__ = ["Node"]


class Node:
    """One simulated cluster node.

    Parameters
    ----------
    node_id:
        Zero-based node index (also its network port and MPI rank in
        the single-process-per-node runs the paper performs).
    cpu, memory, power, nic:
        Hardware specifications.
    frequency_hz:
        Initial operating frequency; defaults to the CPU's base
        (lowest) operating point, the paper's ``f0``.
    """

    def __init__(
        self,
        node_id: int,
        cpu: CpuSpec | None = None,
        memory: MemorySpec | None = None,
        power: PowerSpec | None = None,
        nic: NicSpec | None = None,
        frequency_hz: float | None = None,
    ) -> None:
        self.node_id = int(node_id)
        self.cpu_spec = cpu or CpuSpec()
        self.memory_spec = memory or MemorySpec()
        self.power_spec = power or PowerSpec()
        self.nic_spec = nic or NicSpec()
        self.cpu = CpuTimingModel(self.cpu_spec)
        self.memory = MemoryTimingModel(self.memory_spec)
        self.counters = HardwareCounters()
        self.energy = EnergyMeter(self.power_spec)
        if frequency_hz is None:
            frequency_hz = self.cpu_spec.operating_points.base.frequency_hz
        self._point = self.cpu_spec.operating_points.lookup(frequency_hz)
        # Duration memo keyed by (mix, frequency): iterative benchmarks
        # (FT/LU) execute the same handful of mixes thousands of times
        # per run, and both specs are immutable, so the Eq. 6 result is
        # a pure function of the key.
        self._duration_cache: dict[tuple[InstructionMix, float], float] = {}
        # Same idea for per-message host overhead: a run uses only a
        # handful of distinct message sizes.
        self._overhead_cache: dict[tuple[float, float], float] = {}

    # -- frequency --------------------------------------------------------

    @property
    def operating_point(self) -> OperatingPoint:
        """The node's current DVFS operating point."""
        return self._point

    @property
    def frequency_hz(self) -> float:
        """The node's current core frequency in hertz."""
        return self._point.frequency_hz

    def set_frequency(self, frequency_hz: float) -> OperatingPoint:
        """Switch to a legal operating point (instantaneous).

        The DVFS transition *time* is charged by whoever drives the
        simulation (see :class:`repro.cluster.dvfs.DvfsController`);
        this setter only flips the state.
        """
        self._point = self.cpu_spec.operating_points.lookup(frequency_hz)
        return self._point

    # -- timing -----------------------------------------------------------

    def compute_seconds(self, mix: InstructionMix) -> float:
        """Execution time of ``mix`` at the current clock.

        Realizes Eq. 6 of the paper:
        ``w_ON · CPI_ON/f_ON + w_OFF · CPI_OFF/f_OFF`` — ON-chip work at
        the core clock, OFF-chip work at the (quirk-adjusted) bus speed.
        """
        f = self._point.frequency_hz
        key = (mix, f)
        duration = self._duration_cache.get(key)
        if duration is None:
            duration = self.cpu.on_chip_seconds(
                mix, f
            ) + self.memory.off_chip_seconds(mix.off_chip, f)
            self._duration_cache[key] = duration
        return duration

    def message_overhead_seconds(self, nbytes: float) -> float:
        """Host CPU time to process one message at the current clock."""
        key = (nbytes, self._point.frequency_hz)
        overhead = self._overhead_cache.get(key)
        if overhead is None:
            overhead = self.nic_spec.host_overhead_s(nbytes, key[1])
            self._overhead_cache[key] = overhead
        return overhead

    # -- accounting ----------------------------------------------------------

    def execute_mix(self, mix: InstructionMix) -> float:
        """Account one executed mix: counters + compute energy.

        Returns the execution time so the caller can advance the clock.
        """
        duration = self.compute_seconds(mix)
        self.counters.record_mix(mix)
        self.energy.account(duration, self._point, PowerState.COMPUTE)
        return duration

    def account_comm(self, duration_s: float) -> None:
        """Charge active-messaging time to the energy meter."""
        self.energy.account(duration_s, self._point, PowerState.COMM)

    def account_idle(self, duration_s: float) -> None:
        """Charge blocked/waiting time to the energy meter."""
        self.energy.account(duration_s, self._point, PowerState.IDLE)

    def reset_measurements(self) -> None:
        """Zero counters and the energy meter (frequency is kept)."""
        self.counters.reset()
        self.energy.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} @ {self._point}>"
