"""Node power model and energy accounting.

The paper pairs its speedup model with an *energy-delay* metric, so the
simulator must produce joules as well as seconds.  We use the standard
CMOS decomposition at each DVFS operating point (f, V):

* **CPU dynamic power** ``P_dyn = P_dyn_max · (f/f_max) · (V/V_max)²`` —
  the ``C·V²·f`` law normalized to the peak operating point.
* **CPU static power**  ``P_static = P_static_max · (V/V_max)`` —
  leakage scales roughly with voltage.
* **System base power** — memory, disk, NIC, board; independent of DVFS.

Each activity *state* of a node applies an activity factor to the
dynamic term.  A crucial piece of realism: MPICH-era blocking
receives *busy-poll* — a rank "waiting" in MPI spins the core at close
to full activity rather than sleeping.  The IDLE state therefore
defaults to a high activity factor (0.85): at a fixed frequency a
waiting node draws nearly as much power as a computing one, and the
only way to cut that power is to *lower the frequency* during
communication phases.  This is exactly the mechanism behind the >30 %
energy savings the power-aware scheduling literature (and the paper's
abstract) reports.  Defaults put a node at ≈34 W flat-out at 1.4 GHz
and ≈18 W spinning at 600 MHz — consistent with the Pentium-M laptop
nodes of the paper's cluster.

:class:`EnergyMeter` integrates power over simulated intervals, keeping
per-state totals so experiments can report energy breakdowns.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.cluster.opoints import OperatingPoint
from repro.errors import ConfigurationError

__all__ = ["PowerState", "PowerSpec", "EnergyMeter"]


class PowerState(enum.Enum):
    """What a node is doing, for power-accounting purposes."""

    #: Full-rate computation on the core.
    COMPUTE = "compute"
    #: Actively moving data through the NIC / memcpying message buffers.
    COMM = "comm"
    #: Blocked waiting in MPI (busy-polling, not sleeping).
    IDLE = "idle"


@dataclasses.dataclass(frozen=True)
class PowerSpec:
    """Static power description of a node.

    Attributes
    ----------
    cpu_dynamic_max_w:
        CPU dynamic power at the peak operating point under full load.
    cpu_static_max_w:
        CPU leakage power at the peak voltage.
    system_base_w:
        Non-CPU node power (memory, disk, NIC, board), DVFS-independent.
    activity:
        Dynamic-power activity factor per :class:`PowerState`.
    peak:
        The operating point defining (f_max, V_max) for normalization.
    """

    cpu_dynamic_max_w: float = 18.0
    cpu_static_max_w: float = 2.0
    system_base_w: float = 14.0
    activity: dict[PowerState, float] = dataclasses.field(
        default_factory=lambda: {
            PowerState.COMPUTE: 1.0,
            PowerState.COMM: 0.90,
            PowerState.IDLE: 0.85,
        }
    )
    peak: OperatingPoint = OperatingPoint(1.4e9, 1.484)

    def __post_init__(self) -> None:
        if self.cpu_dynamic_max_w < 0 or self.cpu_static_max_w < 0:
            raise ConfigurationError("power terms must be >= 0")
        if self.system_base_w < 0:
            raise ConfigurationError("system_base_w must be >= 0")
        for state in PowerState:
            if state not in self.activity:
                raise ConfigurationError(f"missing activity factor for {state}")
            a = self.activity[state]
            if not 0.0 <= a <= 1.0:
                raise ConfigurationError(
                    f"activity factor for {state} must be in [0, 1]: {a}"
                )

    def node_power_w(
        self, point: OperatingPoint, state: PowerState
    ) -> float:
        """Instantaneous node power (watts) in ``state`` at ``point``."""
        f_ratio = point.frequency_hz / self.peak.frequency_hz
        v_ratio = point.voltage_v / self.peak.voltage_v
        dynamic = (
            self.cpu_dynamic_max_w
            * self.activity[state]
            * f_ratio
            * v_ratio**2
        )
        static = self.cpu_static_max_w * v_ratio
        return dynamic + static + self.system_base_w

    def cpu_power_w(self, point: OperatingPoint, state: PowerState) -> float:
        """CPU-only power (node power minus the system base)."""
        return self.node_power_w(point, state) - self.system_base_w


class EnergyMeter:
    """Integrates node power over simulated time, per power state.

    The meter is fed *intervals*: ``account(duration, point, state)``.
    It never looks at the clock itself, so it composes with any driver
    (the MPI program runtime calls it; unit tests call it directly).

    ``account`` is one of the hottest calls in a simulation (every
    compute step and every message charges it), so the meter keeps one
    float accumulator pair per state and memoizes the last power
    computation per state — a node stays at one operating point for
    long stretches, so ``node_power_w`` collapses to one multiply.
    """

    __slots__ = (
        "spec",
        "_j_compute",
        "_j_comm",
        "_j_idle",
        "_s_compute",
        "_s_comm",
        "_s_idle",
        "_pw_compute",
        "_pw_comm",
        "_pw_idle",
    )

    def __init__(self, spec: PowerSpec) -> None:
        self.spec = spec
        self._j_compute = self._j_comm = self._j_idle = 0.0
        self._s_compute = self._s_comm = self._s_idle = 0.0
        # Per-state (point, watts) memo, identity-checked on the point.
        self._pw_compute: tuple[OperatingPoint, float] | None = None
        self._pw_comm: tuple[OperatingPoint, float] | None = None
        self._pw_idle: tuple[OperatingPoint, float] | None = None

    def account(
        self, duration_s: float, point: OperatingPoint, state: PowerState
    ) -> float:
        """Add ``duration_s`` in ``state`` at ``point``; return the joules."""
        if duration_s < 0:
            raise ConfigurationError(f"duration must be >= 0: {duration_s}")
        if state is PowerState.COMPUTE:
            memo = self._pw_compute
            if memo is None or memo[0] is not point:
                self._pw_compute = memo = (
                    point,
                    self.spec.node_power_w(point, state),
                )
            joules = memo[1] * duration_s
            self._j_compute += joules
            self._s_compute += duration_s
        elif state is PowerState.COMM:
            memo = self._pw_comm
            if memo is None or memo[0] is not point:
                self._pw_comm = memo = (
                    point,
                    self.spec.node_power_w(point, state),
                )
            joules = memo[1] * duration_s
            self._j_comm += joules
            self._s_comm += duration_s
        else:
            memo = self._pw_idle
            if memo is None or memo[0] is not point:
                self._pw_idle = memo = (
                    point,
                    self.spec.node_power_w(point, state),
                )
            joules = memo[1] * duration_s
            self._j_idle += joules
            self._s_idle += duration_s
        return joules

    @property
    def total_joules(self) -> float:
        """Total energy across all states."""
        return self._j_compute + self._j_comm + self._j_idle

    @property
    def total_seconds(self) -> float:
        """Total accounted (busy + idle) time."""
        return self._s_compute + self._s_comm + self._s_idle

    def joules_by_state(self) -> dict[PowerState, float]:
        """Energy per power state (a copy)."""
        return {
            PowerState.COMPUTE: self._j_compute,
            PowerState.COMM: self._j_comm,
            PowerState.IDLE: self._j_idle,
        }

    def seconds_by_state(self) -> dict[PowerState, float]:
        """Accounted time per power state (a copy)."""
        return {
            PowerState.COMPUTE: self._s_compute,
            PowerState.COMM: self._s_comm,
            PowerState.IDLE: self._s_idle,
        }

    def seconds_in(self, state: PowerState) -> float:
        """Accounted time in one state (no dict construction)."""
        if state is PowerState.COMPUTE:
            return self._s_compute
        if state is PowerState.COMM:
            return self._s_comm
        return self._s_idle

    def reset(self) -> None:
        """Zero the meter (power memos are kept — they are pure)."""
        self._j_compute = self._j_comm = self._j_idle = 0.0
        self._s_compute = self._s_comm = self._s_idle = 0.0
