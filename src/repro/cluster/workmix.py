"""Instruction mixes decomposed by the memory level they touch.

The paper's fine-grain parameterization (§5.2, Table 5) splits a workload
into four instruction categories by where their data lives:

* ``cpu`` — CPU/register instructions (no data-cache access),
* ``l1``  — instructions served by the L1 data cache,
* ``l2``  — instructions served by the L2 cache,
* ``mem`` — instructions that go to main memory (OFF-chip).

The first three are *ON-chip* (their latency scales with the core clock
``f_ON``); ``mem`` is *OFF-chip* (clocked by the memory bus ``f_OFF`` and
insensitive to DVFS).  :class:`InstructionMix` is the common currency
between the workload models (:mod:`repro.npb`), the hardware counters
(:mod:`repro.cluster.counters`) and the analytical model
(:mod:`repro.core.workload`).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

__all__ = ["InstructionMix"]


@dataclasses.dataclass(frozen=True, slots=True)
class InstructionMix:
    """Instruction counts per memory level.

    Counts are floats so mixes can be scaled/partitioned exactly (e.g.
    split across ranks); they represent *numbers of instructions*.

    Examples
    --------
    >>> mix = InstructionMix(cpu=100.0, l1=50.0, l2=5.0, mem=2.0)
    >>> mix.total
    157.0
    >>> mix.on_chip
    155.0
    >>> mix.off_chip
    2.0
    """

    cpu: float = 0.0
    l1: float = 0.0
    l2: float = 0.0
    mem: float = 0.0

    #: Field names of the ON-chip categories, in hierarchy order.
    ON_CHIP_LEVELS = ("cpu", "l1", "l2")
    #: Field names of all categories, in hierarchy order.
    LEVELS = ("cpu", "l1", "l2", "mem")

    def __post_init__(self) -> None:
        for name in self.LEVELS:
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"instruction count {name}={value} must be non-negative"
                )

    # -- aggregates -----------------------------------------------------

    @property
    def total(self) -> float:
        """Total instruction count ``w`` (all levels)."""
        return self.cpu + self.l1 + self.l2 + self.mem

    @property
    def on_chip(self) -> float:
        """ON-chip instruction count ``w_ON`` (cpu + l1 + l2)."""
        return self.cpu + self.l1 + self.l2

    @property
    def off_chip(self) -> float:
        """OFF-chip instruction count ``w_OFF`` (main-memory accesses)."""
        return self.mem

    @property
    def on_chip_fraction(self) -> float:
        """``w_ON / w`` — the paper reports 98.8 % for LU (Table 5)."""
        total = self.total
        return self.on_chip / total if total > 0 else 0.0

    def on_chip_weights(self) -> dict[str, float]:
        """Fraction of the ON-chip workload at each ON-chip level.

        These are the weights the fine-grain parameterization uses to
        average per-level latencies into a single ``CPI_ON`` (paper §5.2
        step 2: 44.66 % CPU/register, 53.89 % L1, 1.45 % L2 for LU).
        """
        on = self.on_chip
        if on <= 0:
            return {name: 0.0 for name in self.ON_CHIP_LEVELS}
        return {name: getattr(self, name) / on for name in self.ON_CHIP_LEVELS}

    def as_dict(self) -> dict[str, float]:
        """Counts per level, as a plain dict."""
        return {name: getattr(self, name) for name in self.LEVELS}

    # -- arithmetic -------------------------------------------------------

    def scaled(self, factor: float) -> "InstructionMix":
        """A mix with every count multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be >= 0: {factor}")
        return InstructionMix(
            cpu=self.cpu * factor,
            l1=self.l1 * factor,
            l2=self.l2 * factor,
            mem=self.mem * factor,
        )

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        if not isinstance(other, InstructionMix):
            return NotImplemented
        return InstructionMix(
            cpu=self.cpu + other.cpu,
            l1=self.l1 + other.l1,
            l2=self.l2 + other.l2,
            mem=self.mem + other.mem,
        )

    def __radd__(self, other: object) -> "InstructionMix":
        # Support sum([...]) which starts from 0.
        if other == 0:
            return self
        return NotImplemented  # type: ignore[return-value]

    @classmethod
    def zero(cls) -> "InstructionMix":
        """The empty mix."""
        return cls()

    @classmethod
    def from_fractions(
        cls,
        total: float,
        *,
        cpu: float,
        l1: float,
        l2: float,
        mem: float,
    ) -> "InstructionMix":
        """Build a mix from a total count and per-level fractions.

        The fractions must sum to 1 (within 1e-9).
        """
        s = cpu + l1 + l2 + mem
        if abs(s - 1.0) > 1e-9:
            raise ConfigurationError(f"fractions must sum to 1, got {s}")
        if total < 0:
            raise ConfigurationError(f"total must be >= 0: {total}")
        return cls(
            cpu=total * cpu, l1=total * l1, l2=total * l2, mem=total * mem
        )
