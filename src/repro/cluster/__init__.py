"""Power-aware cluster hardware models.

This package is the simulated stand-in for the paper's experimental
platform (§4.1): a 16-node cluster of Dell Inspiron 8600 laptops with
1.4 GHz Pentium M processors (five DVFS operating points, Table 2),
a 32 KiB L1 / 1 MiB L2 / 1 GiB DDR memory hierarchy, and a 100 Mb
switched Ethernet interconnect running MPICH.

Components
----------
* :mod:`~repro.cluster.opoints` — DVFS operating points (Table 2).
* :mod:`~repro.cluster.workmix` — instruction mixes by memory level.
* :mod:`~repro.cluster.cpu` — core timing model (per-level CPI ÷ f).
* :mod:`~repro.cluster.memory` — memory hierarchy and the OFF-chip
  (bus-clocked) access time, including the bus-downshift quirk the paper
  observed at low CPU frequencies.
* :mod:`~repro.cluster.counters` — PAPI-like hardware event counters.
* :mod:`~repro.cluster.power` — node power model and energy meters.
* :mod:`~repro.cluster.nic` — per-message host CPU overhead model.
* :mod:`~repro.cluster.network` — switched-Ethernet link/contention model.
* :mod:`~repro.cluster.node` — a node assembling all of the above.
* :mod:`~repro.cluster.machine` — the cluster, plus :func:`paper_cluster`.
* :mod:`~repro.cluster.dvfs` — the DVFS controller.
"""

from repro.cluster.counters import HardwareCounters
from repro.cluster.cpu import CpuSpec, CpuTimingModel
from repro.cluster.dvfs import DvfsController
from repro.cluster.machine import (
    Cluster,
    ClusterSpec,
    NodeGroupSpec,
    paper_cluster,
    paper_spec,
)
from repro.cluster.memory import MemorySpec, MemoryTimingModel
from repro.cluster.network import NetworkSpec, SwitchedNetwork
from repro.cluster.nic import NicSpec
from repro.cluster.node import Node
from repro.cluster.opoints import (
    PENTIUM_M_OPERATING_POINTS,
    OperatingPoint,
    OperatingPointTable,
)
from repro.cluster.power import EnergyMeter, PowerSpec, PowerState
from repro.cluster.workmix import InstructionMix

__all__ = [
    "OperatingPoint",
    "OperatingPointTable",
    "PENTIUM_M_OPERATING_POINTS",
    "InstructionMix",
    "CpuSpec",
    "CpuTimingModel",
    "MemorySpec",
    "MemoryTimingModel",
    "HardwareCounters",
    "PowerSpec",
    "PowerState",
    "EnergyMeter",
    "NicSpec",
    "NetworkSpec",
    "SwitchedNetwork",
    "Node",
    "Cluster",
    "ClusterSpec",
    "NodeGroupSpec",
    "paper_cluster",
    "paper_spec",
    "DvfsController",
]
