"""Switched-Ethernet interconnect model.

The paper's cluster uses a Cisco Catalyst 2950: a store-and-forward
switch giving every node a dedicated full-duplex 100 Mb/s port.  The
consequences we model:

* Each node has an independent *transmit* and *receive* channel
  (full duplex): a node can send and receive simultaneously, but two
  concurrent sends from one node share its TX port, and two concurrent
  sends *to* one node share its RX port.  This ingress contention is
  what makes FT's all-to-all sub-linear.
* Effective bandwidth is well below line rate — MPICH over TCP on
  100 Mb hardware of that era sustained roughly 60–80 % of line rate —
  captured by ``efficiency``.
* A fixed one-way latency covers PHY, switch forwarding and kernel
  stack traversal.
* **Congestion**: TCP over small-buffer 100 Mb switches degrades
  sharply under many simultaneous flows (packet loss, retransmission
  timeouts — the "incast" effect).  Dense exchanges such as FT's
  all-to-all ran far below per-port line rate on clusters of this era.
  We model it as a bandwidth penalty that grows sublinearly with the
  number of concurrently active flows:
  ``penalty = 1 + congestion_coeff · (flows − 1)^congestion_exponent``.
  Setting ``congestion_coeff = 0`` recovers the ideal switch (used by
  the ablation benches).

Intra-node "messages" (rank to itself) bypass the network and move at
local memcpy bandwidth.

:class:`SwitchedNetwork` executes transfers as simulated processes on
the discrete-event engine; the analytic Hockney/LogGP view of the same
network lives in :mod:`repro.mpi.cost`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.events import Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.units import mbit_per_s, mbyte_per_s

__all__ = ["NetworkSpec", "SwitchedNetwork"]


@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """Static description of the interconnect.

    Attributes
    ----------
    line_rate_bytes_per_s:
        Physical port speed (100 Mb/s for the paper platform).
    efficiency:
        Fraction of line rate achievable by the messaging stack.
    latency_s:
        One-way message latency (wire + switch + protocol stack).
    local_copy_bytes_per_s:
        Bandwidth for rank-to-self transfers (memcpy speed).
    congestion_coeff, congestion_exponent:
        TCP-era congestion surrogate: a transfer that starts while
        ``k`` other transfers are active sees its bandwidth divided by
        ``1 + coeff · k^exponent``.  Zero coefficient disables it.
    """

    line_rate_bytes_per_s: float = mbit_per_s(100)
    efficiency: float = 0.72
    latency_s: float = 70e-6
    local_copy_bytes_per_s: float = mbyte_per_s(400)
    congestion_coeff: float = 0.5
    congestion_exponent: float = 0.6

    def __post_init__(self) -> None:
        if self.line_rate_bytes_per_s <= 0:
            raise ConfigurationError("line rate must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError(
                f"efficiency must be in (0, 1]: {self.efficiency}"
            )
        if self.latency_s < 0:
            raise ConfigurationError("latency must be >= 0")
        if self.local_copy_bytes_per_s <= 0:
            raise ConfigurationError("local copy bandwidth must be positive")
        if self.congestion_coeff < 0:
            raise ConfigurationError("congestion_coeff must be >= 0")
        if self.congestion_exponent < 0:
            raise ConfigurationError("congestion_exponent must be >= 0")

    def congestion_penalty(self, concurrent_flows: int) -> float:
        """Bandwidth division factor when ``concurrent_flows`` are active."""
        if concurrent_flows <= 1:
            return 1.0
        return 1.0 + self.congestion_coeff * float(
            concurrent_flows - 1
        ) ** self.congestion_exponent

    @property
    def effective_bandwidth(self) -> float:
        """Achievable point-to-point bandwidth in bytes/second."""
        return self.line_rate_bytes_per_s * self.efficiency


class SwitchedNetwork:
    """A full-duplex switched network with per-port contention.

    Parameters
    ----------
    env:
        The discrete-event engine.
    n_nodes:
        Number of switch ports (cluster nodes).
    spec:
        Interconnect description.
    """

    def __init__(
        self, env: Engine, n_nodes: int, spec: NetworkSpec | None = None
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1: {n_nodes}")
        self.env = env
        self.spec = spec or NetworkSpec()
        self.n_nodes = int(n_nodes)
        # Hot-path caches of immutable spec values (one lookup each per
        # remote transfer instead of property/method hops).
        self._bandwidth = self.spec.effective_bandwidth
        self._latency = self.spec.latency_s
        self._tx = [Resource(env, capacity=1) for _ in range(n_nodes)]
        self._rx = [Resource(env, capacity=1) for _ in range(n_nodes)]
        #: Transfers currently clocking bytes through the switch.
        self._active_flows = 0
        #: Total payload bytes moved over the switch (excludes local copies).
        self.bytes_transferred = 0.0
        #: Number of completed remote transfers.
        self.transfer_count = 0

    def _check_port(self, port: int) -> int:
        if not 0 <= port < self.n_nodes:
            raise ConfigurationError(
                f"port {port} out of range [0, {self.n_nodes})"
            )
        return int(port)

    def serialization_time(self, nbytes: float) -> float:
        """Time to clock ``nbytes`` through one port (no contention)."""
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0: {nbytes}")
        return nbytes / self.spec.effective_bandwidth

    def uncontended_transfer_time(self, nbytes: float) -> float:
        """Latency + serialization for a lone message (Hockney view)."""
        return self.spec.latency_s + self.serialization_time(nbytes)

    def transfer(self, src: int, dst: int, nbytes: float) -> Process:
        """Start moving ``nbytes`` from node ``src`` to node ``dst``.

        Returns the transfer :class:`~repro.sim.process.Process`; it
        succeeds when the last byte has arrived at ``dst``.  The wire
        time occupies the sender's TX port and the receiver's RX port
        simultaneously; latency is pure pipeline delay and holds
        neither.
        """
        src = self._check_port(src)
        dst = self._check_port(dst)
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0: {nbytes}")
        if src == dst:
            return self.env.process(self._local_copy(nbytes))
        return self.env.process(self._remote_transfer(src, dst, nbytes))

    def _local_copy(self, nbytes: float) -> _t.Generator:
        yield self.env.timeout(nbytes / self.spec.local_copy_bytes_per_s)

    def _remote_transfer(
        self, src: int, dst: int, nbytes: float
    ) -> _t.Generator:
        # Acquire TX before RX everywhere.  The two resource classes are
        # disjoint (nobody holds an RX while waiting for a TX), so the
        # ordering is deadlock-free.  Spelled with try/finally rather
        # than context managers — this generator runs a quarter million
        # times per LU cell, and the release order (RX, then TX) matches
        # what nested ``with`` blocks produced.
        tx, rx = self._tx[src], self._rx[dst]
        tx_req = tx.request()
        try:
            yield tx_req
            rx_req = rx.request()
            try:
                yield rx_req
                self._active_flows += 1
                flows = self._active_flows
                penalty = (
                    1.0
                    if flows <= 1
                    else self.spec.congestion_penalty(flows)
                )
                try:
                    yield Timeout(
                        self.env, nbytes / self._bandwidth * penalty
                    )
                finally:
                    self._active_flows -= 1
            finally:
                rx.release(rx_req)
        finally:
            tx.release(tx_req)
        # Propagation/forwarding delay after the ports are released: the
        # message is "in flight" and does not block subsequent traffic.
        yield Timeout(self.env, self._latency)
        self.bytes_transferred += nbytes
        self.transfer_count += 1

    def tx_queue_length(self, port: int) -> int:
        """Number of transfers waiting on a node's TX port."""
        return self._tx[self._check_port(port)].queue_length

    def rx_queue_length(self, port: int) -> int:
        """Number of transfers waiting on a node's RX port."""
        return self._rx[self._check_port(port)].queue_length
