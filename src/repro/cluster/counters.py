"""PAPI-like hardware event counters.

The fine-grain parameterization (paper §5.2 step 1, Table 5) reads five
PAPI events and derives the per-memory-level workload split:

================  ==========================================
Event             Meaning
================  ==========================================
PAPI_TOT_INS      total instructions retired
PAPI_L1_DCA       L1 data-cache accesses
PAPI_L1_DCM       L1 data-cache misses
PAPI_L2_TCA       L2 total-cache accesses
PAPI_L2_TCM       L2 total-cache misses
================  ==========================================

Derivation formulae (Table 5):

* CPU/register work = ``TOT_INS − L1_DCA``
* L1 work           = ``L1_DCA − L1_DCM``
* L2 work           = ``L2_TCA − L2_TCM``
* memory work       = ``L2_TCM``

Our simulated counters are fed directly from the
:class:`~repro.cluster.workmix.InstructionMix` of every executed compute
phase, using the inverse mapping, so the derivation formulae recover the
mix exactly — the simulated analogue of counters that "accurately track
low-level operations with minimum overhead".
"""

from __future__ import annotations

import typing as _t

from repro.cluster.workmix import InstructionMix
from repro.errors import ConfigurationError

__all__ = ["HardwareCounters", "PAPI_EVENTS"]

#: The five PAPI events the paper's methodology reads.
PAPI_EVENTS = (
    "PAPI_TOT_INS",
    "PAPI_L1_DCA",
    "PAPI_L1_DCM",
    "PAPI_L2_TCA",
    "PAPI_L2_TCM",
)


class HardwareCounters:
    """A register file of accumulating hardware event counters."""

    def __init__(self) -> None:
        self._events: dict[str, float] = {name: 0.0 for name in PAPI_EVENTS}

    # -- recording ---------------------------------------------------------

    def record_mix(self, mix: InstructionMix) -> None:
        """Account one executed instruction mix into the counters.

        The mapping mirrors the memory hierarchy: every L1/L2/memory
        instruction accesses the L1 cache; L2 and memory instructions
        miss in L1 and access L2; memory instructions miss in L2.
        """
        self._events["PAPI_TOT_INS"] += mix.total
        self._events["PAPI_L1_DCA"] += mix.l1 + mix.l2 + mix.mem
        self._events["PAPI_L1_DCM"] += mix.l2 + mix.mem
        self._events["PAPI_L2_TCA"] += mix.l2 + mix.mem
        self._events["PAPI_L2_TCM"] += mix.mem

    def reset(self) -> None:
        """Zero every counter."""
        for name in self._events:
            self._events[name] = 0.0

    # -- reading -----------------------------------------------------------

    def read(self, event: str) -> float:
        """Current value of one event counter.

        Raises
        ------
        ConfigurationError
            For event names the (simulated) hardware does not implement.
        """
        try:
            return self._events[event]
        except KeyError:
            raise ConfigurationError(
                f"unknown PAPI event {event!r}; available: {PAPI_EVENTS}"
            ) from None

    def snapshot(self) -> dict[str, float]:
        """All counters as a plain dict (a copy)."""
        return dict(self._events)

    # -- derivation (Table 5) -----------------------------------------------

    def derive_mix(self) -> InstructionMix:
        """Recover the per-level instruction mix via the Table 5 formulae."""
        tot = self._events["PAPI_TOT_INS"]
        l1_dca = self._events["PAPI_L1_DCA"]
        l1_dcm = self._events["PAPI_L1_DCM"]
        l2_tca = self._events["PAPI_L2_TCA"]
        l2_tcm = self._events["PAPI_L2_TCM"]
        return InstructionMix(
            cpu=max(tot - l1_dca, 0.0),
            l1=max(l1_dca - l1_dcm, 0.0),
            l2=max(l2_tca - l2_tcm, 0.0),
            mem=max(l2_tcm, 0.0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.3g}" for k, v in self._events.items())
        return f"HardwareCounters({inner})"

    def __iter__(self) -> _t.Iterator[tuple[str, float]]:
        return iter(self._events.items())
