"""Network-interface host overhead model.

Sending a message is not free for the CPU: MPICH over TCP copies the
payload, builds packets and runs the protocol stack on the host
processor.  That work is ON-chip, so — unlike the wire time — it *does*
scale with DVFS.  This is exactly the effect the paper observes in
Table 6: transmitting 310 doubles costs 200 µs at 600 MHz but only
167 µs at 800 MHz and above, while small messages show no measurable
frequency sensitivity.

:class:`NicSpec` captures the per-message host cost as

``overhead(bytes, f) = fixed + bytes · cycles_per_byte / f``

and the eager/rendezvous protocol switch point.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

__all__ = ["NicSpec"]


@dataclasses.dataclass(frozen=True)
class NicSpec:
    """Host-side messaging cost description.

    Attributes
    ----------
    per_message_overhead_s:
        Fixed software cost per message (matching, envelope handling),
        charged on both the sender and the receiver.
    cycles_per_byte:
        Host CPU cycles per payload byte (buffer copies, packetization),
        charged at the node's current clock — the frequency-sensitive
        part of messaging.
    eager_threshold_bytes:
        Messages up to this size use the *eager* protocol (sender does
        not block on the receiver); larger ones use *rendezvous* (sender
        and receiver handshake first), like MPICH.
    """

    per_message_overhead_s: float = 20e-6
    cycles_per_byte: float = 4.0
    eager_threshold_bytes: float = 8192.0

    def __post_init__(self) -> None:
        if self.per_message_overhead_s < 0:
            raise ConfigurationError("per_message_overhead_s must be >= 0")
        if self.cycles_per_byte < 0:
            raise ConfigurationError("cycles_per_byte must be >= 0")
        if self.eager_threshold_bytes < 0:
            raise ConfigurationError("eager_threshold_bytes must be >= 0")

    def host_overhead_s(self, nbytes: float, frequency_hz: float) -> float:
        """Host CPU time to push/pull one ``nbytes`` message at ``f``."""
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0: {nbytes}")
        if frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be positive: {frequency_hz}"
            )
        return (
            self.per_message_overhead_s
            + nbytes * self.cycles_per_byte / frequency_hz
        )

    def is_eager(self, nbytes: float) -> bool:
        """Whether a message of ``nbytes`` uses the eager protocol."""
        return nbytes <= self.eager_threshold_bytes
