"""Memory-hierarchy (OFF-chip) timing model.

OFF-chip work — instructions whose data must come from main memory — is
clocked by the memory bus, not the core, so DVFS does not speed it up
(paper Eq. 6: the ``w_OFF · CPI_OFF / f_OFF`` term).  The paper's
platform additionally shows a *bus-downshift quirk*: at the two lowest
core frequencies the chipset drives the front-side bus slower, so the
measured seconds-per-OFF-chip-instruction *rises* from 110 ns to 140 ns
(Table 6).  :class:`MemorySpec` models this with an explicit per-core-
frequency latency map.

Cache capacities are carried for documentation and for the workload
characterization in :mod:`repro.npb.characterize` (footprint vs. cache
size decides the level split); the timing model itself consumes only the
latency map.
"""

from __future__ import annotations

import dataclasses
import types

from repro.errors import ConfigurationError
from repro.units import gib, kib, mib, ns

__all__ = ["MemorySpec", "MemoryTimingModel"]


def _default_bus_quirk() -> types.MappingProxyType:
    """Default Table-6 latency map for the paper platform.

    140 ns/OFF-chip instruction at 600 and 800 MHz (bus downshifted),
    110 ns at 1.0–1.4 GHz.
    """
    return types.MappingProxyType({600e6: 140.0, 800e6: 140.0})


@dataclasses.dataclass(frozen=True)
class MemorySpec:
    """Static description of a node's memory system.

    Attributes
    ----------
    l1_bytes, l2_bytes, ram_bytes:
        Capacities (Pentium M: 32 KiB L1-D, 1 MiB L2; nodes have 1 GiB).
    off_chip_ns:
        Default seconds-per-OFF-chip-instruction, in nanoseconds.  This
        is ``CPI_OFF / f_OFF`` as a single measured latency (the paper
        reports it exactly this way in Table 6).
    off_chip_ns_overrides:
        Mapping from *core* frequency (Hz) to an overriding OFF-chip
        latency (ns), modelling the bus-downshift quirk.
    shared_cores:
        How many cores (ranks) contend for this node's memory bus.  The
        paper platform runs one rank per node, so the default is 1.
    contention:
        Memory-wall contention coefficient ``α``: with ``c`` sharers the
        OFF-chip latency is inflated by ``1 + α·(c − 1)`` — the
        Furtunato-style memory-wall shape, where OFF-chip time stops
        scaling once the shared bus saturates.  The defaults make the
        multiplier exactly 1.0, so the paper platform is bit-identical
        to the pre-memory-wall model.
    """

    l1_bytes: float = kib(32)
    l2_bytes: float = mib(1)
    ram_bytes: float = gib(1)
    off_chip_ns: float = 110.0
    off_chip_ns_overrides: dict[float, float] = dataclasses.field(
        default_factory=_default_bus_quirk
    )
    shared_cores: int = 1
    contention: float = 0.0

    def __post_init__(self) -> None:
        if self.off_chip_ns <= 0:
            raise ConfigurationError("off_chip_ns must be positive")
        if self.shared_cores < 1:
            raise ConfigurationError(
                f"shared_cores must be >= 1: {self.shared_cores}"
            )
        if self.contention < 0:
            raise ConfigurationError(
                f"contention must be >= 0: {self.contention}"
            )
        for f, lat in self.off_chip_ns_overrides.items():
            if f <= 0 or lat <= 0:
                raise ConfigurationError(
                    f"invalid off-chip override {f!r}: {lat!r}"
                )
        if not (0 < self.l1_bytes <= self.l2_bytes <= self.ram_bytes):
            raise ConfigurationError(
                "capacities must satisfy 0 < L1 <= L2 <= RAM: "
                f"{self.l1_bytes}, {self.l2_bytes}, {self.ram_bytes}"
            )
        # Freeze the override map so the spec is safely shareable.
        object.__setattr__(
            self,
            "off_chip_ns_overrides",
            types.MappingProxyType(dict(self.off_chip_ns_overrides)),
        )

    # Mapping proxies cannot be pickled, and campaign cells are shipped
    # to worker processes; swap a plain dict in and out of the state.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["off_chip_ns_overrides"] = dict(self.off_chip_ns_overrides)
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(
            self,
            "off_chip_ns_overrides",
            types.MappingProxyType(dict(self.off_chip_ns_overrides)),
        )

    @property
    def contention_multiplier(self) -> float:
        """Memory-wall inflation factor ``1 + α·(shared_cores − 1)``.

        Exactly 1.0 on contention-free specs (the paper platform), so
        the memory-wall term is zero-effect there.
        """
        return 1.0 + self.contention * (self.shared_cores - 1)


class MemoryTimingModel:
    """Computes OFF-chip execution time for instruction mixes."""

    def __init__(self, spec: MemorySpec) -> None:
        self.spec = spec

    def off_chip_latency_s(self, core_frequency_hz: float) -> float:
        """Seconds per OFF-chip instruction at a given *core* frequency.

        Mostly flat (OFF-chip work is bus-clocked), except where the
        platform's bus-downshift overrides apply.  On memory-wall specs
        the latency is further inflated by the contention multiplier;
        the multiplier-1.0 branch returns the uninflated latency
        unchanged so contention-free specs stay bit-identical.
        """
        nanos = self.spec.off_chip_ns_overrides.get(
            float(core_frequency_hz), self.spec.off_chip_ns
        )
        multiplier = self.spec.contention_multiplier
        if multiplier == 1.0:
            return ns(nanos)
        return ns(nanos) * multiplier

    def off_chip_seconds(
        self, off_chip_instructions: float, core_frequency_hz: float
    ) -> float:
        """OFF-chip execution time ``w_OFF · (CPI_OFF / f_OFF)``."""
        if off_chip_instructions < 0:
            raise ConfigurationError(
                f"instruction count must be >= 0: {off_chip_instructions}"
            )
        return off_chip_instructions * self.off_chip_latency_s(
            core_frequency_hz
        )

    def level_for_footprint(self, footprint_bytes: float) -> str:
        """Deepest level a working set of ``footprint_bytes`` lives in.

        Used by the workload characterizer to decide where a kernel's
        data resides: 'l1', 'l2' or 'mem'.
        """
        if footprint_bytes < 0:
            raise ConfigurationError("footprint must be >= 0")
        if footprint_bytes <= self.spec.l1_bytes:
            return "l1"
        if footprint_bytes <= self.spec.l2_bytes:
            return "l2"
        return "mem"
