"""DVFS control.

Two ways to change frequency:

* **Between runs** — experiments that measure one fixed (N, f) point
  simply call :meth:`DvfsController.set_cluster_frequency` before the
  program starts; the transition is configuration, not simulated time.
* **During a run** — DVS *scheduling* policies (:mod:`repro.sched`)
  change frequency at phase boundaries while the application executes.
  In that case the transition costs simulated time
  (``CpuSpec.dvfs_transition_s``) and idle energy, charged through
  :meth:`DvfsController.transition`, which simulated programs ``yield``.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import Cluster
from repro.errors import ConfigurationError

__all__ = ["DvfsController"]


class DvfsController:
    """Sets node frequencies, with or without simulated transition cost."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        #: Number of in-simulation transitions performed (per node id).
        self.transition_counts: dict[int, int] = {}

    # -- configuration-time control -----------------------------------------

    def set_cluster_frequency(self, frequency_hz: float) -> None:
        """Instantly set every node's frequency (pre-run configuration)."""
        self.cluster.set_all_frequencies(frequency_hz)

    def set_node_frequency(self, node_id: int, frequency_hz: float) -> None:
        """Instantly set one node's frequency (pre-run configuration)."""
        self.cluster.node(node_id).set_frequency(frequency_hz)

    # -- in-simulation control ------------------------------------------------

    def transition(self, node_id: int, frequency_hz: float) -> _t.Generator:
        """Simulated-process generator performing a DVFS switch.

        Costs ``dvfs_transition_s`` of simulated time on the node (spent
        idle — the core is stalled during a SpeedStep transition) unless
        the node is already at the target point, which is free.

        Usage inside a simulated program::

            yield from dvfs.transition(rank, new_frequency)
        """
        node = self.cluster.node(node_id)
        target = node.cpu_spec.operating_points.lookup(frequency_hz)
        if target == node.operating_point:
            return
        delay = node.cpu_spec.dvfs_transition_s
        if delay > 0:
            yield self.cluster.engine.timeout(delay)
            node.account_idle(delay)
        node.set_frequency(frequency_hz)
        self.transition_counts[node_id] = (
            self.transition_counts.get(node_id, 0) + 1
        )

    def total_transitions(self) -> int:
        """Total in-simulation transitions across all nodes."""
        return sum(self.transition_counts.values())

    def validate(self, frequency_hz: float) -> float:
        """Check a frequency against the cluster's operating points."""
        try:
            return self.cluster.operating_points.lookup(
                frequency_hz
            ).frequency_hz
        except ConfigurationError:
            raise
