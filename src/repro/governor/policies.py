"""Pluggable governor policies: oracle, reactive, and model-predictive.

A :class:`GovernorPolicy` is consulted once per epoch with the full
observation history and returns per-rank frequencies for the next
epoch.  Three families are provided:

* :class:`StaticGovernorPolicy` — hold one frequency for the whole run
  (the cap-legal peak by default); this is the fair static baseline
  every governed policy is compared against.
* :class:`StaticOptimalPolicy` — the offline oracle: sweep the
  cap-legal frequency grid through the analytic backend's vectorized
  evaluator before the run starts and hold the argmin-EDP point.  An
  online policy cannot beat it by much, so "within x% of the oracle"
  is the headline acceptance metric.
* :class:`ReactiveSlackPolicy` — the online generalization of
  :class:`repro.sched.policies.SlackPolicy`: each rank reclaims the
  slack it *observed last epoch*, scaling down until its stretched
  busy time would consume a ``safety`` fraction of that slack.
* :class:`ModelPredictivePolicy` — fits the power-aware speedup model
  online: from last epoch's reconstructed instruction mix and
  comm/idle split it predicts every candidate frequency's epoch time
  and energy with the platform's own Eq. 6 timing and power curves,
  picks the argmin-EDP uniform frequency (with hysteresis against
  churn), then slack-fills non-critical ranks below it.

All policies receive only cap-legal frequencies via
:class:`GovernorContext`, so cap safety is independent of policy
quality.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.cpu import CpuTimingModel
from repro.cluster.machine import ClusterSpec
from repro.cluster.memory import MemoryTimingModel
from repro.cluster.power import PowerState
from repro.errors import ConfigurationError
from repro.governor.caps import PowerCap
from repro.governor.telemetry import PhaseObservation

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.npb.base import BenchmarkModel

__all__ = [
    "GovernorContext",
    "GovernorDecision",
    "GovernorPolicy",
    "StaticGovernorPolicy",
    "StaticOptimalPolicy",
    "ReactiveSlackPolicy",
    "ModelPredictivePolicy",
    "POLICIES",
    "build_policy",
]

#: Default fraction of observed slack the online policies dare reclaim.
DEFAULT_SAFETY = 0.9

#: Relative EDP improvement a frequency switch must promise before the
#: model-predictive policy abandons its current point.
DEFAULT_HYSTERESIS = 0.01


class GovernorContext:
    """Everything a policy may know about the platform and the run.

    Built once per governed run; policies receive it on every
    :meth:`GovernorPolicy.decide` call.  The ``allowed`` tuple is the
    cap-legal frequency set (ascending) — policies must choose from it.
    """

    def __init__(
        self,
        benchmark: "BenchmarkModel",
        n_ranks: int,
        spec: ClusterSpec,
        cap: PowerCap,
        allowed: tuple[float, ...],
        safety: float,
    ) -> None:
        self.benchmark = benchmark
        self.n_ranks = int(n_ranks)
        self.spec = spec
        self.cap = cap
        self.allowed = tuple(sorted(allowed))
        self.safety = float(safety)
        self.operating_points = spec.cpu.operating_points
        self.power_spec = spec.power
        self._cpu_model = CpuTimingModel(spec.cpu)
        self._memory_model = MemoryTimingModel(spec.memory)

    @property
    def allowed_peak(self) -> float:
        """The highest cap-legal frequency."""
        return self.allowed[-1]

    def compute_seconds(self, mix, frequency_hz: float) -> float:
        """Predicted compute time for ``mix`` at ``frequency_hz``.

        Uses the same Eq. 6 split the nodes themselves execute:
        ON-chip work at the core clock, OFF-chip work at the bus.
        """
        return self._cpu_model.on_chip_seconds(
            mix, frequency_hz
        ) + self._memory_model.off_chip_seconds(mix.off_chip, frequency_hz)

    def node_power_w(self, frequency_hz: float, state: PowerState) -> float:
        """Node power at a cap-legal frequency in the given state."""
        point = self.operating_points.lookup(frequency_hz)
        return self.power_spec.node_power_w(point, state)


@dataclasses.dataclass(frozen=True)
class GovernorDecision:
    """Per-rank frequencies for the next epoch, plus the policy's why."""

    frequencies: tuple[float, ...]
    reason: str


class GovernorPolicy(_t.Protocol):
    """Protocol every governor policy implements."""

    name: str

    def decide(
        self,
        epoch: int,
        history: _t.Sequence[tuple[PhaseObservation, ...]],
        context: GovernorContext,
    ) -> GovernorDecision:
        """Choose per-rank frequencies for ``epoch``.

        ``history[e][r]`` is rank ``r``'s observation of epoch ``e``;
        all epochs before ``epoch`` are present.
        """
        ...  # pragma: no cover - protocol


def _uniform(context: GovernorContext, frequency_hz: float) -> tuple[float, ...]:
    return (frequency_hz,) * context.n_ranks


class StaticGovernorPolicy:
    """Hold one frequency for the whole run (cap-legal peak by default)."""

    def __init__(self, frequency_hz: float | None = None) -> None:
        self.name = "static"
        self.frequency_hz = frequency_hz

    def decide(
        self,
        epoch: int,
        history: _t.Sequence[tuple[PhaseObservation, ...]],
        context: GovernorContext,
    ) -> GovernorDecision:
        """Return the configured (or cap-peak) frequency for every rank."""
        target = (
            context.allowed_peak
            if self.frequency_hz is None
            else context.cap.clamp(self.frequency_hz, context.allowed)
        )
        return GovernorDecision(
            frequencies=_uniform(context, target),
            reason=f"static hold at {target / 1e6:.0f} MHz",
        )


class StaticOptimalPolicy:
    """Offline oracle: argmin-EDP frequency from an analytic grid sweep.

    Before the first epoch it evaluates every cap-legal frequency for
    the run's (benchmark, rank count) through
    :class:`repro.analytic.model.AnalyticCampaignModel` and holds the
    energy*time minimizer for the entire run.  Deterministic, and far
    cheaper than a DES sweep — this is the yardstick online policies
    are judged against.
    """

    def __init__(self) -> None:
        self.name = "static_optimal"
        self._choice: float | None = None
        self._why = ""

    def _solve(self, context: GovernorContext) -> float:
        from repro.analytic.model import AnalyticCampaignModel

        model = AnalyticCampaignModel(context.benchmark, spec=context.spec)
        evaluation = model.evaluate_cells(
            [(context.n_ranks, f) for f in context.allowed]
        )
        edp = [t * e for t, e in zip(evaluation.times, evaluation.energies)]
        best = min(range(len(edp)), key=lambda i: (edp[i], context.allowed[i]))
        self._why = (
            f"analytic sweep over {len(context.allowed)} cap-legal points: "
            f"argmin EDP {edp[best]:.4f} J*s at "
            f"{context.allowed[best] / 1e6:.0f} MHz"
        )
        return context.allowed[best]

    def decide(
        self,
        epoch: int,
        history: _t.Sequence[tuple[PhaseObservation, ...]],
        context: GovernorContext,
    ) -> GovernorDecision:
        """Hold the precomputed oracle frequency for every rank."""
        if self._choice is None:
            self._choice = self._solve(context)
        return GovernorDecision(
            frequencies=_uniform(context, self._choice),
            reason=self._why,
        )


class ReactiveSlackPolicy:
    """Per-rank slack reclamation from last epoch's idle fraction.

    The online generalization of
    :meth:`repro.sched.policies.SlackPolicy.from_idle_fractions`: a
    rank that idled fraction ``i`` of the previous epoch assumes the
    next epoch looks the same and scales down to the slowest cap-legal
    frequency that keeps its stretched busy time within ``safety * i``
    of the epoch.  No model, no coordination — each rank reacts to its
    own slack alone.
    """

    def __init__(self, safety: float | None = None) -> None:
        self.name = "reactive"
        self.safety = DEFAULT_SAFETY if safety is None else float(safety)

    def decide(
        self,
        epoch: int,
        history: _t.Sequence[tuple[PhaseObservation, ...]],
        context: GovernorContext,
    ) -> GovernorDecision:
        """Pick each rank's frequency from its previous-epoch slack."""
        if epoch == 0 or not history:
            return GovernorDecision(
                frequencies=_uniform(context, context.allowed_peak),
                reason="bootstrap epoch at cap-legal peak",
            )
        previous = history[-1]
        peak = context.allowed_peak
        table = []
        for observation in previous:
            usable = observation.idle_fraction * self.safety
            required = peak * (1.0 - usable)
            candidates = [f for f in context.allowed if f >= required]
            table.append(min(candidates) if candidates else peak)
        lowered = sum(1 for f in table if f < peak)
        return GovernorDecision(
            frequencies=tuple(table),
            reason=(
                f"slack reclamation: {lowered}/{context.n_ranks} ranks "
                f"below peak (safety {self.safety:g})"
            ),
        )


class ModelPredictivePolicy:
    """Fit the SP model online, pick argmin-EDP, slack-fill the rest.

    Per epoch it reconstructs each rank's executed instruction mix from
    the hardware-counter deltas in the previous observation, then for
    every cap-legal candidate frequency predicts the epoch under the
    platform's own models: compute time via Eq. 6 (ON-chip scales with
    the core clock, OFF-chip does not), messaging host overhead scaled
    as core cycles (conservative — the per-message constant does not
    actually stretch), wire/blocked time held frequency-invariant, and
    energy from the per-state power curve.  The uniform argmin-EDP
    frequency wins unless the improvement over the incumbent is below
    the hysteresis threshold; ranks with leftover predicted slack are
    then filled further down, reclaiming ``safety`` of it.
    """

    def __init__(
        self,
        safety: float | None = None,
        hysteresis: float = DEFAULT_HYSTERESIS,
    ) -> None:
        self.name = "model_predictive"
        self.safety = DEFAULT_SAFETY if safety is None else float(safety)
        self.hysteresis = float(hysteresis)

    def _predict(
        self,
        previous: tuple[PhaseObservation, ...],
        frequency_hz: float,
        context: GovernorContext,
    ) -> tuple[float, float, list[float]]:
        """Predicted (epoch time, energy, per-rank busy time) at ``f``."""
        busy = []
        for observation in previous:
            compute = context.compute_seconds(observation.mix, frequency_hz)
            comm = observation.comm_s * (
                observation.frequency_hz / frequency_hz
            )
            busy.append(compute + comm)
        wire = min(o.idle_s for o in previous)
        epoch_time = max(busy) + wire
        p_compute = context.node_power_w(frequency_hz, PowerState.COMPUTE)
        p_comm = context.node_power_w(frequency_hz, PowerState.COMM)
        p_idle = context.node_power_w(frequency_hz, PowerState.IDLE)
        energy = 0.0
        for observation, rank_busy in zip(previous, busy):
            compute = context.compute_seconds(observation.mix, frequency_hz)
            comm = rank_busy - compute
            idle = max(epoch_time - rank_busy, 0.0)
            energy += compute * p_compute + comm * p_comm + idle * p_idle
        return epoch_time, energy, busy

    def decide(
        self,
        epoch: int,
        history: _t.Sequence[tuple[PhaseObservation, ...]],
        context: GovernorContext,
    ) -> GovernorDecision:
        """Predict every candidate's EDP and actuate the minimizer."""
        if epoch == 0 or not history:
            return GovernorDecision(
                frequencies=_uniform(context, context.allowed_peak),
                reason="bootstrap epoch at cap-legal peak",
            )
        previous = history[-1]
        predictions = {
            f: self._predict(previous, f, context) for f in context.allowed
        }
        edp = {f: t * e for f, (t, e, _) in predictions.items()}
        best = min(context.allowed, key=lambda f: (edp[f], f))
        incumbent = max(o.frequency_hz for o in previous)
        if (
            incumbent in edp
            and edp[incumbent] <= edp[best] * (1.0 + self.hysteresis)
        ):
            best = incumbent
        epoch_time, _, busy = predictions[best]
        table = []
        filled = 0
        for observation, rank_busy in zip(previous, busy):
            slack = max(epoch_time - rank_busy, 0.0)
            budget = rank_busy + self.safety * slack
            target = best
            for candidate in context.allowed:
                if candidate >= best:
                    break
                stretched = context.compute_seconds(
                    observation.mix, candidate
                ) + observation.comm_s * (observation.frequency_hz / candidate)
                if stretched <= budget:
                    target = candidate
                    break
            if target < best:
                filled += 1
            table.append(target)
        return GovernorDecision(
            frequencies=tuple(table),
            reason=(
                f"SP-model argmin EDP at {best / 1e6:.0f} MHz "
                f"(predicted {edp[best]:.4f} J*s); "
                f"{filled}/{context.n_ranks} ranks slack-filled"
            ),
        )


#: Registry of policy names accepted by the CLI, service, and spec.
POLICIES: dict[str, _t.Callable[[], _t.Any]] = {
    "static": StaticGovernorPolicy,
    "static_optimal": StaticOptimalPolicy,
    "reactive": ReactiveSlackPolicy,
    "model_predictive": ModelPredictivePolicy,
}


def build_policy(name: str, safety: float | None = None) -> GovernorPolicy:
    """Instantiate a policy by registry name.

    ``safety`` is forwarded to the online policies that take it and
    ignored by the static ones.
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown governor policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None
    if factory in (ReactiveSlackPolicy, ModelPredictivePolicy):
        return factory(safety=safety)
    return factory()
