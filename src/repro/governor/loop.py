"""The governed-run harness: sensors in, decisions out, actuations back.

:func:`govern_run` executes a benchmark under closed-loop frequency
control.  The phase list is chunked into epochs; at every epoch
boundary the ranks synchronize on a barrier, the governor folds the
previous epoch's :class:`~repro.governor.telemetry.PhaseObservation`
stream into a policy decision (computed exactly once per epoch — the
first rank through the barrier triggers it), and each rank actuates
its assigned frequency through the real
:class:`~repro.cluster.dvfs.DvfsController` (paying the transition
latency).  Re-timing of remaining work is automatic: node compute
durations are memoized per (mix, frequency), so a frequency change
simply selects a different memoized duration for everything that
follows.

The epoch-0 decision is applied as *pre-run configuration* (no
simulated time has passed, so no transition is charged), which also
means a static policy generates zero DVFS transitions.

Every run yields a :class:`GovernedRun` wrapping the raw
:class:`~repro.mpi.program.RunResult` and the sealed, deterministic
:class:`~repro.governor.trace.DecisionTrace`.

Environment knobs (all overridable per call):

* ``REPRO_GOVERNOR_EPOCH`` — phases per epoch (default 4);
* ``REPRO_GOVERNOR_POLICY`` — default policy name;
* ``REPRO_GOVERNOR_SAFETY`` — slack-reclamation safety factor.
"""

from __future__ import annotations

import dataclasses
import os
import typing as _t

from repro.cluster.machine import Cluster
from repro.errors import ConfigurationError
from repro.governor.caps import PowerCap
from repro.governor.policies import (
    DEFAULT_SAFETY,
    GovernorContext,
    GovernorDecision,
    GovernorPolicy,
    build_policy,
)
from repro.governor.telemetry import EpochSensor, PhaseObservation
from repro.governor.trace import DecisionTrace, EpochDecision
from repro.mpi.program import RunResult, run_program
from repro.proftools.profiler import normalize_label

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.machine import ClusterSpec
    from repro.npb.base import BenchmarkModel

__all__ = [
    "GovernedRun",
    "govern_run",
    "resolve_epoch_phases",
    "resolve_policy_name",
    "resolve_safety",
    "DEFAULT_EPOCH_PHASES",
    "DEFAULT_POLICY",
]

#: Phases folded into one governor epoch by default (aligned with the
#: four-phase iteration structure of the FT and LU models).
DEFAULT_EPOCH_PHASES = 4

#: Policy used when neither the call nor the environment names one.
DEFAULT_POLICY = "model_predictive"


def _env_positive_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be an integer, got {raw!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def resolve_epoch_phases(explicit: int | None = None) -> int:
    """Phases per epoch: explicit arg, else ``REPRO_GOVERNOR_EPOCH``."""
    if explicit is not None:
        if explicit <= 0:
            raise ConfigurationError(
                f"epoch_phases must be positive, got {explicit}"
            )
        return int(explicit)
    return _env_positive_int("REPRO_GOVERNOR_EPOCH", DEFAULT_EPOCH_PHASES)


def resolve_policy_name(explicit: str | None = None) -> str:
    """Policy name: explicit arg, else ``REPRO_GOVERNOR_POLICY``."""
    if explicit is not None:
        return explicit
    return os.environ.get("REPRO_GOVERNOR_POLICY", DEFAULT_POLICY)


def resolve_safety(explicit: float | None = None) -> float:
    """Safety factor: explicit arg, else ``REPRO_GOVERNOR_SAFETY``."""
    if explicit is not None:
        value = float(explicit)
    else:
        raw = os.environ.get("REPRO_GOVERNOR_SAFETY")
        if raw is None:
            return DEFAULT_SAFETY
        try:
            value = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_GOVERNOR_SAFETY must be a float, got {raw!r}"
            )
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"governor safety must be in [0, 1], got {value}"
        )
    return value


@dataclasses.dataclass(frozen=True)
class GovernedRun:
    """Outcome of one governed execution."""

    benchmark: str
    problem_class: str
    n_ranks: int
    policy: str
    cap: PowerCap
    run: RunResult
    trace: DecisionTrace

    @property
    def elapsed_s(self) -> float:
        """Simulated wall time of the governed run."""
        return self.run.elapsed_s

    @property
    def energy_j(self) -> float:
        """Total cluster energy of the governed run."""
        return self.run.energy_j

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — the governor's objective."""
        return self.run.elapsed_s * self.run.energy_j

    @property
    def mean_power_w(self) -> float:
        """Average cluster power over the run."""
        if self.run.elapsed_s <= 0:
            return 0.0
        return self.run.energy_j / self.run.elapsed_s


class _Governor:
    """Run-scoped coordinator shared by all rank programs.

    Memoizes one decision per epoch (the first rank consulting it
    after the boundary barrier computes it from the completed history;
    engine scheduling is deterministic, so "first" is too), enforces
    the power cap on every actuation, and feeds the trace.
    """

    def __init__(
        self,
        policy: GovernorPolicy,
        context: GovernorContext,
        trace: DecisionTrace,
    ) -> None:
        self.policy = policy
        self.context = context
        self.trace = trace
        self._decisions: dict[int, tuple[float, ...]] = {}
        self._history: list[tuple[PhaseObservation, ...]] = []
        self._pending: dict[int, dict[int, PhaseObservation]] = {}
        self.sensors: dict[int, EpochSensor] = {}
        self.dvfs = None

    def decide(self, epoch: int, now: float) -> tuple[float, ...]:
        if epoch in self._decisions:
            return self._decisions[epoch]
        decision: GovernorDecision = self.policy.decide(
            epoch, tuple(self._history), self.context
        )
        clamped = tuple(
            self.context.cap.clamp(f, self.context.allowed)
            for f in decision.frequencies
        )
        if len(clamped) != self.context.n_ranks:
            raise ConfigurationError(
                f"policy {self.policy.name!r} returned "
                f"{len(clamped)} frequencies for {self.context.n_ranks} ranks"
            )
        self._decisions[epoch] = clamped
        self.trace.record_decision(
            EpochDecision(
                epoch=epoch,
                time_s=now,
                policy=self.policy.name,
                frequencies=clamped,
                reason=decision.reason,
            )
        )
        return clamped

    def observe(self, epoch: int, rank: int, ctx: _t.Any, span: str) -> None:
        if self.dvfs is None:
            self.dvfs = ctx.dvfs
        observation = self.sensors[rank].observe(
            epoch, rank, ctx.now, ctx.frequency_hz, phase_span=span
        )
        self.trace.record_observation(observation)
        bucket = self._pending.setdefault(epoch, {})
        bucket[rank] = observation
        if len(bucket) == self.context.n_ranks:
            self._history.append(
                tuple(bucket[r] for r in range(self.context.n_ranks))
            )
            del self._pending[epoch]


def govern_run(
    benchmark: "BenchmarkModel",
    n_ranks: int,
    policy: GovernorPolicy | str | None = None,
    cap: PowerCap | None = None,
    *,
    spec: "ClusterSpec | None" = None,
    platform: str | None = None,
    epoch_phases: int | None = None,
    safety: float | None = None,
    seed: int = 0,
) -> GovernedRun:
    """Execute ``benchmark`` on ``n_ranks`` under closed-loop control.

    ``policy`` may be a registry name (see
    :data:`repro.governor.policies.POLICIES`), a policy instance, or
    ``None`` to resolve from the environment.  ``cap`` defaults to
    uncapped.  ``platform`` names a registered platform as an
    alternative to ``spec`` (``None`` resolves the runtime default);
    the governor's legal frequency set is then the cap-filtered
    *cluster-wide common* frequencies of the platform's node groups.
    The run is fully deterministic for a given argument tuple;
    ``seed`` is recorded in the trace as provenance.
    """
    benchmark.check_ranks(n_ranks)
    cap = cap or PowerCap()
    safety = resolve_safety(safety)
    epoch_phases = resolve_epoch_phases(epoch_phases)
    if isinstance(policy, str) or policy is None:
        policy = build_policy(resolve_policy_name(policy), safety=safety)

    if spec is None:
        from repro import runtime
        from repro.platforms import get_platform

        spec = get_platform(runtime.resolve_platform(platform))
    elif platform is not None:
        raise ConfigurationError(
            f"pass either spec= or platform={platform!r}, not both"
        )
    spec = spec.with_nodes(int(n_ranks))
    allowed = cap.allowed_frequencies_for(spec, int(n_ranks))
    context = GovernorContext(
        benchmark=benchmark,
        n_ranks=int(n_ranks),
        spec=spec,
        cap=cap,
        allowed=allowed,
        safety=safety,
    )
    trace = DecisionTrace(
        benchmark=benchmark.name,
        problem_class=benchmark.problem_class.value,
        n_ranks=int(n_ranks),
        policy=policy.name,
        cap=cap,
        epoch_phases=epoch_phases,
        seed=seed,
        safety=safety,
    )
    governor = _Governor(policy, context, trace)

    phases = list(benchmark.phases(int(n_ranks)))
    groups = [
        phases[i : i + epoch_phases]
        for i in range(0, len(phases), epoch_phases)
    ]
    spans = [
        "+".join(
            dict.fromkeys(normalize_label(phase.label) for phase in group)
        )
        for group in groups
    ]

    cluster = Cluster(spec)
    # Epoch 0 is pre-run configuration: no simulated time has passed,
    # so the initial operating point costs no transition.
    initial = governor.decide(0, now=0.0)
    for rank in range(int(n_ranks)):
        cluster.node(rank).set_frequency(initial[rank])
        governor.sensors[rank] = EpochSensor(cluster.node(rank))

    def program(ctx: _t.Any) -> _t.Generator:
        for index, group in enumerate(groups):
            if index:
                yield from ctx.barrier()
                target = governor.decide(index, now=ctx.now)[ctx.rank]
                if target != ctx.frequency_hz:
                    yield from ctx.set_frequency(target)
            for phase in group:
                yield from phase.execute(ctx)
            governor.observe(index, ctx.rank, ctx, spans[index])

    result = run_program(cluster, program)
    transitions = (
        governor.dvfs.total_transitions() if governor.dvfs is not None else 0
    )
    trace.finalize(
        elapsed_s=result.elapsed_s,
        energy_j=result.energy_j,
        transitions=transitions,
    )
    return GovernedRun(
        benchmark=benchmark.name,
        problem_class=benchmark.problem_class.value,
        n_ranks=int(n_ranks),
        policy=policy.name,
        cap=cap,
        run=result,
        trace=trace,
    )
