"""Closed-loop DVFS governor: the SP model as an online controller.

The paper's predictive-scheduling experiment picks frequencies *before*
a run; this subsystem closes the loop.  A governed run chunks a
benchmark's phase list into epochs, observes each epoch through the
simulator's own meters (:mod:`repro.governor.telemetry`), consults a
pluggable policy (:mod:`repro.governor.policies` — static baseline,
offline static-optimal oracle, reactive slack reclamation, and an
online model-predictive controller that refits power-aware speedup
from observations), and actuates per-rank frequency changes through
the real DVFS controller mid-run (:mod:`repro.governor.loop`).

Operator power budgets are first-class (:mod:`repro.governor.caps`):
every actuation is clamped to the cap-legal operating-point set, so a
governed run cannot violate its cluster-wide or per-node watt budget
by construction.  Every run emits a deterministic
:class:`~repro.governor.trace.DecisionTrace` whose canonical JSON (and
hence SHA-256 digest) is bit-identical across repeats of the same
seeded configuration.
"""

from repro.governor.caps import PowerCap, power_cap_scenarios
from repro.governor.loop import (
    DEFAULT_EPOCH_PHASES,
    DEFAULT_POLICY,
    GovernedRun,
    govern_run,
    resolve_epoch_phases,
    resolve_policy_name,
    resolve_safety,
)
from repro.governor.policies import (
    DEFAULT_SAFETY,
    POLICIES,
    GovernorContext,
    GovernorDecision,
    GovernorPolicy,
    ModelPredictivePolicy,
    ReactiveSlackPolicy,
    StaticGovernorPolicy,
    StaticOptimalPolicy,
    build_policy,
)
from repro.governor.telemetry import EpochSensor, PhaseObservation
from repro.governor.trace import DecisionTrace, EpochDecision

__all__ = [
    "PowerCap",
    "power_cap_scenarios",
    "PhaseObservation",
    "EpochSensor",
    "DecisionTrace",
    "EpochDecision",
    "GovernorContext",
    "GovernorDecision",
    "GovernorPolicy",
    "StaticGovernorPolicy",
    "StaticOptimalPolicy",
    "ReactiveSlackPolicy",
    "ModelPredictivePolicy",
    "POLICIES",
    "build_policy",
    "GovernedRun",
    "govern_run",
    "resolve_epoch_phases",
    "resolve_policy_name",
    "resolve_safety",
    "DEFAULT_EPOCH_PHASES",
    "DEFAULT_POLICY",
    "DEFAULT_SAFETY",
]
