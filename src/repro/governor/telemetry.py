"""Sensor layer: per-rank, per-epoch telemetry for the governor.

The closed-loop governor needs to *observe* an in-flight run the way a
real runtime system would — through the node's own meters, not through
privileged knowledge of the benchmark model.  This module taps the
accounting the simulator already keeps (the
:class:`~repro.cluster.power.EnergyMeter` per-state integrators and the
PAPI-style :class:`~repro.cluster.counters.HardwareCounters`) and turns
interval *differences* into a stream of :class:`PhaseObservation`
records at epoch boundaries:

* compute / comm / idle time split — where the epoch's wall time went;
* joules — what the epoch cost;
* the executed :class:`~repro.cluster.workmix.InstructionMix`,
  recovered from hardware-counter deltas via the paper's Table 5
  formulae (the counter feed is exactly invertible, so the governor's
  model-predictive policy sees the true per-level workload without
  touching the benchmark definition);
* the operating frequency the epoch ran at.

One :class:`EpochSensor` is attached per rank; it is a pure
differencing engine — it never advances simulated time and never
mutates the node.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.power import PowerState
from repro.cluster.workmix import InstructionMix

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import Node

__all__ = ["PhaseObservation", "EpochSensor"]


@dataclasses.dataclass(frozen=True)
class PhaseObservation:
    """What the sensor learned about one rank over one epoch.

    Attributes
    ----------
    epoch:
        Zero-based epoch index.
    rank:
        The observed rank.
    phase_span:
        Normalized phase-group labels the epoch covered (for humans
        reading the trace).
    frequency_hz:
        The operating frequency the rank ran the epoch at.
    elapsed_s:
        Wall (simulated) time between the epoch's boundary snapshots.
    compute_s, comm_s, idle_s:
        Accounted time per power state within the epoch.
    joules:
        Node energy consumed within the epoch.
    mix:
        The instruction mix executed during the epoch, recovered from
        hardware-counter deltas (Table 5 inversion).
    """

    epoch: int
    rank: int
    phase_span: str
    frequency_hz: float
    elapsed_s: float
    compute_s: float
    comm_s: float
    idle_s: float
    joules: float
    mix: InstructionMix

    @property
    def busy_s(self) -> float:
        """Compute plus active-messaging time."""
        return self.compute_s + self.comm_s

    @property
    def idle_fraction(self) -> float:
        """Fraction of the epoch the rank spent blocked (its slack)."""
        return self.idle_s / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def mean_power_w(self) -> float:
        """Average node power over the epoch."""
        return self.joules / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def as_dict(self) -> dict[str, _t.Any]:
        """A JSON-ready rendering (mix expanded to its four levels)."""
        return {
            "epoch": self.epoch,
            "rank": self.rank,
            "phase_span": self.phase_span,
            "frequency_mhz": self.frequency_hz / 1e6,
            "elapsed_s": self.elapsed_s,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "idle_s": self.idle_s,
            "joules": self.joules,
            "mix": {
                "cpu": self.mix.cpu,
                "l1": self.mix.l1,
                "l2": self.mix.l2,
                "mem": self.mix.mem,
            },
        }


class EpochSensor:
    """Differences one node's meters between epoch boundaries.

    Construction snapshots the node's current accounting; every
    :meth:`observe` call yields the delta since the previous snapshot
    as a :class:`PhaseObservation` and re-arms the sensor.
    """

    def __init__(self, node: "Node", start_time: float = 0.0) -> None:
        self._node = node
        self._mark(start_time)

    def _mark(self, now: float) -> None:
        self._time = now
        self._seconds = self._node.energy.seconds_by_state()
        self._joules = self._node.energy.total_joules
        self._events = self._node.counters.snapshot()

    def observe(
        self,
        epoch: int,
        rank: int,
        now: float,
        frequency_hz: float,
        phase_span: str = "",
    ) -> PhaseObservation:
        """Read the epoch's telemetry delta and re-arm the sensor."""
        seconds = self._node.energy.seconds_by_state()
        events = self._node.counters.snapshot()
        tot = events["PAPI_TOT_INS"] - self._events["PAPI_TOT_INS"]
        l1_dca = events["PAPI_L1_DCA"] - self._events["PAPI_L1_DCA"]
        l1_dcm = events["PAPI_L1_DCM"] - self._events["PAPI_L1_DCM"]
        l2_tca = events["PAPI_L2_TCA"] - self._events["PAPI_L2_TCA"]
        l2_tcm = events["PAPI_L2_TCM"] - self._events["PAPI_L2_TCM"]
        observation = PhaseObservation(
            epoch=int(epoch),
            rank=int(rank),
            phase_span=str(phase_span),
            frequency_hz=float(frequency_hz),
            elapsed_s=now - self._time,
            compute_s=seconds[PowerState.COMPUTE]
            - self._seconds[PowerState.COMPUTE],
            comm_s=seconds[PowerState.COMM]
            - self._seconds[PowerState.COMM],
            idle_s=seconds[PowerState.IDLE]
            - self._seconds[PowerState.IDLE],
            joules=self._node.energy.total_joules - self._joules,
            mix=InstructionMix(
                cpu=max(tot - l1_dca, 0.0),
                l1=max(l1_dca - l1_dcm, 0.0),
                l2=max(l2_tca - l2_tcm, 0.0),
                mem=max(l2_tcm, 0.0),
            ),
        )
        self._mark(now)
        return observation
