"""Power-cap scenarios and their enforcement semantics.

A :class:`PowerCap` models the budget an operator hands the governor:
an optional cluster-wide watt budget (rack breaker, facility
allocation) and an optional per-node watt ceiling (thermal or VRM
limit).  Enforcement is *worst-case and a priori*: a frequency is
legal only if a node running flat-out compute at that operating point
stays under the node cap, and all ``n`` nodes doing so simultaneously
stay under the cluster cap.  Because the platform's activity factors
make COMPUTE the most power-hungry state and node power is monotone in
the operating point, clamping every actuation to the legal set
guarantees that no instant of a governed run can exceed the cap — the
safety argument is by construction, not by monitoring.

:func:`power_cap_scenarios` derives the named scenarios used across
the experiment spec, service, CLI, and CI from the platform's own
power curve, so the budgets track the spec rather than hard-coded
watts.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.machine import ClusterSpec, paper_spec
from repro.cluster.power import PowerState
from repro.errors import ConfigurationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.opoints import OperatingPointTable
    from repro.cluster.power import PowerSpec

__all__ = ["PowerCap", "power_cap_scenarios"]

# Headroom multiplier applied when a scenario budget is derived from an
# operating point's own draw, so the boundary point itself stays legal
# despite floating-point rounding.
_SCENARIO_HEADROOM = 1.001


@dataclasses.dataclass(frozen=True)
class PowerCap:
    """An operator-imposed power budget for a governed run.

    ``cluster_w`` bounds the sum of worst-case node powers across all
    participating ranks; ``node_w`` bounds any single node.  ``None``
    means unconstrained on that axis.
    """

    label: str = "uncapped"
    cluster_w: float | None = None
    node_w: float | None = None

    def __post_init__(self) -> None:
        for name in ("cluster_w", "node_w"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"power cap {name} must be positive, got {value!r}"
                )

    def admits(
        self,
        frequency_hz: float,
        operating_points: "OperatingPointTable",
        power_spec: "PowerSpec",
        n_ranks: int,
    ) -> bool:
        """True if running every node at ``frequency_hz`` obeys the cap."""
        point = operating_points.lookup(frequency_hz)
        worst = power_spec.node_power_w(point, PowerState.COMPUTE)
        if self.node_w is not None and worst > self.node_w:
            return False
        if self.cluster_w is not None and worst * n_ranks > self.cluster_w:
            return False
        return True

    def admits_spec(
        self,
        frequency_hz: float,
        spec: ClusterSpec,
        n_ranks: int,
    ) -> bool:
        """Per-node-group :meth:`admits` for arbitrary platforms.

        Sizes the spec to ``n_ranks`` nodes (group-major, the nodes a
        job would actually boot), checks every participating group's
        worst-case draw against the node cap, and their count-weighted
        sum against the cluster cap.  Homogeneous specs delegate to
        :meth:`admits` unchanged — same floats, same result.
        """
        sized = spec.with_nodes(max(int(n_ranks), 1))
        if not sized.is_heterogeneous:
            return self.admits(
                frequency_hz,
                sized.cpu.operating_points,
                sized.power,
                n_ranks,
            )
        total = 0.0
        for group in sized.node_groups():
            point = group.cpu.operating_points.lookup(frequency_hz)
            worst = group.power.node_power_w(point, PowerState.COMPUTE)
            if self.node_w is not None and worst > self.node_w:
                return False
            total += worst * group.count
        if self.cluster_w is not None and total > self.cluster_w:
            return False
        return True

    def allowed_frequencies_for(
        self, spec: ClusterSpec, n_ranks: int
    ) -> tuple[float, ...]:
        """The cap-legal *cluster-wide* frequencies for a platform.

        Draws candidates from ``spec.common_frequencies()`` (legal on
        every node group) and filters with :meth:`admits_spec`; on
        homogeneous specs this is exactly
        ``allowed_frequencies(spec.cpu.operating_points, spec.power,
        n_ranks)``.  Raises :class:`~repro.errors.ConfigurationError`
        when no operating point survives.
        """
        sized = spec.with_nodes(max(int(n_ranks), 1))
        legal = tuple(
            f
            for f in sized.common_frequencies()
            if self.admits_spec(f, sized, n_ranks)
        )
        if not legal:
            raise ConfigurationError(
                f"power cap {self.label!r} ({self.as_dict()}) is infeasible: "
                f"no operating point is legal for {n_ranks} ranks"
            )
        return legal

    def allowed_frequencies(
        self,
        operating_points: "OperatingPointTable",
        power_spec: "PowerSpec",
        n_ranks: int,
    ) -> tuple[float, ...]:
        """The cap-legal frequencies, ascending.

        Raises
        ------
        ConfigurationError
            If even the lowest operating point would violate the cap.
        """
        legal = tuple(
            f
            for f in operating_points.frequencies
            if self.admits(f, operating_points, power_spec, n_ranks)
        )
        if not legal:
            raise ConfigurationError(
                f"power cap {self.label!r} ({self.as_dict()}) is infeasible: "
                f"no operating point is legal for {n_ranks} ranks"
            )
        return legal

    def clamp(
        self,
        frequency_hz: float,
        allowed: _t.Sequence[float],
    ) -> float:
        """The highest legal frequency not above the request.

        Falls back to the lowest legal point when the request sits
        below the entire legal set.
        """
        below = [f for f in allowed if f <= frequency_hz]
        return max(below) if below else min(allowed)

    def as_dict(self) -> dict[str, _t.Any]:
        """A JSON-ready rendering of the cap."""
        return {
            "label": self.label,
            "cluster_w": self.cluster_w,
            "node_w": self.node_w,
        }


def power_cap_scenarios(
    n_ranks: int,
    spec: ClusterSpec | None = None,
) -> dict[str, PowerCap]:
    """Named cap scenarios derived from the platform power curve.

    * ``uncapped`` — no budget; every operating point is legal.
    * ``cluster_cap`` — a cluster-wide budget sized to the second-highest
      operating point's worst-case draw times ``n_ranks`` (the whole
      machine can run one notch below peak, but not at peak).
    * ``node_cap`` — a per-node ceiling sized to the middle operating
      point's worst-case draw (each node loses its top two notches).

    On heterogeneous platforms the candidate notches are the
    cluster-wide common frequencies, the node ceiling tracks the
    hungriest group's draw, and the cluster budget is the
    count-weighted sum of per-group draws over the first ``n_ranks``
    nodes.  On homogeneous platforms the arithmetic is unchanged from
    the pre-registry code (same floats).
    """
    spec = spec or paper_spec(n_nodes=max(int(n_ranks), 1))
    hetero = spec.is_heterogeneous
    sized = spec.with_nodes(max(int(n_ranks), 1)) if hetero else spec
    frequencies = sized.common_frequencies()
    if len(frequencies) < 3:
        raise ConfigurationError(
            "power cap scenarios need at least three operating points, "
            f"got {len(frequencies)}"
        )

    def group_worst_w(group, frequency_hz: float) -> float:
        point = group.cpu.operating_points.lookup(frequency_hz)
        return group.power.node_power_w(point, PowerState.COMPUTE)

    def worst_w(frequency_hz: float) -> float:
        point = spec.cpu.operating_points.lookup(frequency_hz)
        return spec.power.node_power_w(point, PowerState.COMPUTE)

    def node_worst_w(frequency_hz: float) -> float:
        if not hetero:
            return worst_w(frequency_hz)
        return max(
            group_worst_w(group, frequency_hz)
            for group in sized.node_groups()
        )

    def cluster_worst_w(frequency_hz: float) -> float:
        if not hetero:
            return worst_w(frequency_hz) * n_ranks
        return sum(
            group_worst_w(group, frequency_hz) * group.count
            for group in sized.node_groups()
        )

    second = frequencies[-2]
    middle = frequencies[len(frequencies) // 2]
    return {
        "uncapped": PowerCap(label="uncapped"),
        "cluster_cap": PowerCap(
            label="cluster_cap",
            cluster_w=cluster_worst_w(second) * _SCENARIO_HEADROOM,
        ),
        "node_cap": PowerCap(
            label="node_cap",
            node_w=node_worst_w(middle) * _SCENARIO_HEADROOM,
        ),
    }
