"""Deterministic decision traces for governed runs.

Every governed run produces exactly one :class:`DecisionTrace`: the
run's configuration header, the full `PhaseObservation` stream the
sensors emitted, every :class:`EpochDecision` the policy issued, and
the run's closing totals.  The discrete-event engine is deterministic
and the trace stores nothing wall-clock dependent, so the same seed,
policy, and cap always serialize to the *bit-identical* canonical JSON
— :meth:`DecisionTrace.digest` is therefore a stable fingerprint that
golden tests, the artifact store, and the ``/govern`` endpoint can all
pin without replaying the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as _t

from repro.governor.caps import PowerCap
from repro.governor.telemetry import PhaseObservation

__all__ = ["EpochDecision", "DecisionTrace"]


@dataclasses.dataclass(frozen=True)
class EpochDecision:
    """One actuation the governor issued at an epoch boundary."""

    epoch: int
    time_s: float
    policy: str
    frequencies: tuple[float, ...]
    reason: str

    def as_dict(self) -> dict[str, _t.Any]:
        """A JSON-ready rendering of the decision."""
        return {
            "epoch": self.epoch,
            "time_s": self.time_s,
            "policy": self.policy,
            "frequencies_mhz": [f / 1e6 for f in self.frequencies],
            "reason": self.reason,
        }


class DecisionTrace:
    """The complete, replayable record of one governed run.

    Mutable while the run is in flight (the governor appends
    observations and decisions), then sealed with :meth:`finalize`.
    """

    def __init__(
        self,
        benchmark: str,
        problem_class: str,
        n_ranks: int,
        policy: str,
        cap: PowerCap,
        epoch_phases: int,
        seed: int,
        safety: float,
    ) -> None:
        self.benchmark = benchmark
        self.problem_class = problem_class
        self.n_ranks = int(n_ranks)
        self.policy = policy
        self.cap = cap
        self.epoch_phases = int(epoch_phases)
        self.seed = int(seed)
        self.safety = float(safety)
        self.observations: list[PhaseObservation] = []
        self.decisions: list[EpochDecision] = []
        self.elapsed_s: float = 0.0
        self.energy_j: float = 0.0
        self.transitions: int = 0
        self._finalized = False

    def record_observation(self, observation: PhaseObservation) -> None:
        """Append one sensor reading to the trace."""
        self.observations.append(observation)

    def record_decision(self, decision: EpochDecision) -> None:
        """Append one governor actuation to the trace."""
        self.decisions.append(decision)

    def finalize(
        self, elapsed_s: float, energy_j: float, transitions: int
    ) -> None:
        """Seal the trace with the run's closing totals."""
        self.elapsed_s = float(elapsed_s)
        self.energy_j = float(energy_j)
        self.transitions = int(transitions)
        self._finalized = True

    @property
    def edp(self) -> float:
        """Energy-delay product of the governed run (J*s)."""
        return self.energy_j * self.elapsed_s

    @property
    def n_epochs(self) -> int:
        """How many epoch decisions the governor issued."""
        return len(self.decisions)

    def to_document(self) -> dict[str, _t.Any]:
        """The full trace as a JSON-ready document."""
        return {
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "n_ranks": self.n_ranks,
            "policy": self.policy,
            "cap": self.cap.as_dict(),
            "epoch_phases": self.epoch_phases,
            "seed": self.seed,
            "safety": self.safety,
            "decisions": [d.as_dict() for d in self.decisions],
            "observations": [o.as_dict() for o in self.observations],
            "result": {
                "elapsed_s": self.elapsed_s,
                "energy_j": self.energy_j,
                "edp_j_s": self.edp,
                "transitions": self.transitions,
                "finalized": self._finalized,
            },
        }

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free serialization used for hashing."""
        return json.dumps(
            self.to_document(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 fingerprint of the canonical serialization."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
