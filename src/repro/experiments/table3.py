"""Table 3 — power-aware speedup prediction errors for FT (SP method).

The paper fits the simplified parameterization (§5.1) to FT — one
base-frequency column of parallel runs plus one sequential frequency
row — and predicts the full grid with Eq. 18.  Published errors: 0 % in
the base column (by construction), at most ~3 % elsewhere, growing
with N and f.
"""

from __future__ import annotations

import typing as _t

from repro.core.params_sp import SimplifiedParameterization
from repro.core.prediction import Predictor
from repro.experiments.platform import PAPER_COUNTS, PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_error_table, format_grid

__all__ = ["SPEC"]

TITLE = "Table 3: power-aware speedup (SP) prediction errors for FT"


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            "ft",
            params.get("problem_class") or "A",
            tuple(params.get("counts") or PAPER_COUNTS),
            tuple(params.get("frequencies") or PAPER_FREQUENCIES),
        ),
    )


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    sp = SimplifiedParameterization(campaign)
    return {"sp": sp, "predictor": Predictor(campaign, sp)}


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    sp = ctx.state["fit"]["sp"]
    predictor = ctx.state["fit"]["predictor"]
    table = predictor.speedup_error_table(label="Table 3 (SP errors, FT)")
    overheads = {n: sp.overhead(n) for n in campaign.counts if n > 1}
    data = {
        "errors": table.cells(),
        "max_error": table.max_error,
        "predicted_speedups": predictor.predicted_speedups(),
        "measured_speedups": predictor.measured_speedups(),
        "derived_overheads": overheads,
        "runs_required": sp.inputs_used()["runs_required"],
    }
    return {"table": table, "overheads": overheads, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    campaign = ctx.campaign(0)
    predictor = ctx.state["fit"]["predictor"]
    table = ctx.state["analyze"]["table"]
    overheads = ctx.state["analyze"]["overheads"]
    text = "\n\n".join(
        [
            format_error_table(table),
            format_grid(
                predictor.predicted_speedups(),
                title="Predicted power-aware speedups",
                value_style="speedup",
            ),
            "Derived parallel overhead T(w_PO, f_OFF) per N (Eq. 17):\n"
            + "\n".join(
                f"  N={n:2d}: {t:.2f}s" for n, t in sorted(overheads.items())
            ),
            f"max error off the base column: "
            f"{table.max_excluding_base(campaign.base_frequency_hz):.1%}"
            f"  (paper: <= 3%)",
        ]
    )
    return ExperimentResult("table3", TITLE, text, ctx.state["analyze"]["data"])


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="table3",
        title=TITLE,
        description=(
            "Simplified parameterization fitted to FT, errors over the grid"
        ),
        requires=_requires,
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
