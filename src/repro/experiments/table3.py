"""Table 3 — power-aware speedup prediction errors for FT (SP method).

The paper fits the simplified parameterization (§5.1) to FT — one
base-frequency column of parallel runs plus one sequential frequency
row — and predicts the full grid with Eq. 18.  Published errors: 0 % in
the base column (by construction), at most ~3 % elsewhere, growing
with N and f.
"""

from __future__ import annotations

import typing as _t

from repro.core.params_sp import SimplifiedParameterization
from repro.core.prediction import Predictor
from repro.experiments.platform import (
    PAPER_COUNTS,
    PAPER_FREQUENCIES,
    measure_campaign,
)
from repro.experiments.registry import ExperimentResult, register
from repro.npb import FTBenchmark, ProblemClass
from repro.reporting.tables import format_error_table, format_grid

__all__ = ["run"]


@register(
    "table3",
    "Table 3: power-aware speedup (SP) prediction errors for FT",
    "Simplified parameterization fitted to FT, errors over the grid",
)
def run(
    problem_class: str = "A",
    counts: _t.Sequence[int] = PAPER_COUNTS,
    frequencies: _t.Sequence[float] = PAPER_FREQUENCIES,
) -> ExperimentResult:
    """Reproduce Table 3."""
    ft = FTBenchmark(ProblemClass.parse(problem_class))
    campaign = measure_campaign(ft, counts, frequencies)
    sp = SimplifiedParameterization(campaign)
    predictor = Predictor(campaign, sp)
    table = predictor.speedup_error_table(label="Table 3 (SP errors, FT)")

    overheads = {n: sp.overhead(n) for n in campaign.counts if n > 1}
    text = "\n\n".join(
        [
            format_error_table(table),
            format_grid(
                predictor.predicted_speedups(),
                title="Predicted power-aware speedups",
                value_style="speedup",
            ),
            "Derived parallel overhead T(w_PO, f_OFF) per N (Eq. 17):\n"
            + "\n".join(
                f"  N={n:2d}: {t:.2f}s" for n, t in sorted(overheads.items())
            ),
            f"max error off the base column: "
            f"{table.max_excluding_base(campaign.base_frequency_hz):.1%}"
            f"  (paper: <= 3%)",
        ]
    )
    data = {
        "errors": table.cells(),
        "max_error": table.max_error,
        "predicted_speedups": predictor.predicted_speedups(),
        "measured_speedups": predictor.measured_speedups(),
        "derived_overheads": overheads,
        "runs_required": sp.inputs_used()["runs_required"],
    }
    return ExperimentResult(
        "table3",
        "Table 3: power-aware speedup (SP) prediction errors for FT",
        text,
        data,
    )
