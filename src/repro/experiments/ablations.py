"""Ablations of the model's design choices (DESIGN.md §5).

Three experiments isolate what each modelling ingredient buys:

* ``ablation_onoff`` — remove the ON/OFF-chip decomposition: scale the
  *whole* workload with frequency.  FT's sizable memory time then gets
  mis-scaled and frequency-column errors blow up — the Table 1 error
  structure re-appears even with a perfect overhead model.
* ``ablation_overhead`` — violate Assumption 2: measure on a platform
  whose messaging is strongly CPU-bound (large per-byte host cost).
  SP's frequency-insensitive overhead then under-predicts the benefit
  of frequency, and its errors grow accordingly.
* ``ablation_dop`` — relax Assumption 1 (the paper's named future
  work): give FP the DOP-decomposed workload instead of
  fully-parallel.  LU's pipeline-limited sweeps are then modelled and
  the large-N errors shrink.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.analysis import ErrorTable
from repro.core.params_sp import SimplifiedParameterization
from repro.core.prediction import Predictor
from repro.experiments.platform import (
    PAPER_FREQUENCIES,
    measure_campaign,
)
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.table7 import TABLE7_COUNTS, fit_lu_fp
from repro.npb import FTBenchmark, LUBenchmark, ProblemClass
from repro.cluster.machine import paper_spec
from repro.reporting.tables import format_error_table, format_rows

__all__ = ["run_onoff", "run_overhead", "run_dop"]


class _NoSplitModel:
    """A predictor with the ON/OFF decomposition removed.

    Takes SP's measured base column and overheads, but replaces the
    measured sequential frequency row with pure 1/f scaling of
    ``T_1(w, f0)`` — i.e. it assumes *all* work is ON-chip.
    """

    def __init__(self, sp: SimplifiedParameterization) -> None:
        self._sp = sp
        self._t1_f0 = sp.campaign.sequential_base_time()
        self._f0 = sp.base_frequency_hz

    def predict_time(self, n: int, frequency_hz: float) -> float:
        t1 = self._t1_f0 * (self._f0 / frequency_hz)
        if n == 1:
            return t1
        return t1 / n + max(self._sp.overhead(n), 0.0)


@register(
    "ablation_onoff",
    "Ablation: remove the ON/OFF-chip workload decomposition",
    "Pure-1/f frequency scaling vs the full SP model on FT",
)
def run_onoff(problem_class: str = "A") -> ExperimentResult:
    """Quantify what the ON/OFF-chip split buys on FT."""
    ft = FTBenchmark(ProblemClass.parse(problem_class))
    campaign = measure_campaign(ft)
    sp = SimplifiedParameterization(campaign)
    full_table = Predictor(campaign, sp).speedup_error_table(label="with split")
    ablated_table = Predictor(campaign, _NoSplitModel(sp)).speedup_error_table(
        label="without split"
    )

    text = "\n\n".join(
        [
            format_error_table(
                full_table, title="FT speedup errors WITH the ON/OFF split"
            ),
            format_error_table(
                ablated_table,
                title="FT speedup errors WITHOUT the split (all work scaled "
                "by f)",
            ),
            f"max error grows {full_table.max_error:.1%} -> "
            f"{ablated_table.max_error:.1%} when the split is removed",
        ]
    )
    data = {
        "with_split": full_table.cells(),
        "without_split": ablated_table.cells(),
        "with_split_max": full_table.max_error,
        "without_split_max": ablated_table.max_error,
    }
    return ExperimentResult(
        "ablation_onoff",
        "Ablation: remove the ON/OFF-chip workload decomposition",
        text,
        data,
    )


@register(
    "ablation_overhead",
    "Ablation: violate Assumption 2 (frequency-sensitive overhead)",
    "SP errors on a platform with CPU-bound messaging",
)
def run_overhead(
    problem_class: str = "A",
    cycles_per_byte: float = 60.0,
    counts: _t.Sequence[int] = (1, 2, 4, 8, 16),
) -> ExperimentResult:
    """Quantify SP's sensitivity to Assumption 2."""
    ft = FTBenchmark(ProblemClass.parse(problem_class))

    def sp_errors(spec) -> ErrorTable:
        campaign = measure_campaign(
            ft, counts, PAPER_FREQUENCIES, spec=spec
        )
        return Predictor(
            campaign, SimplifiedParameterization(campaign)
        ).speedup_error_table()

    normal = sp_errors(paper_spec())
    heavy_spec = dataclasses.replace(
        paper_spec(),
        nic=dataclasses.replace(
            paper_spec().nic, cycles_per_byte=cycles_per_byte
        ),
    )
    heavy = sp_errors(heavy_spec)

    text = "\n\n".join(
        [
            format_error_table(
                normal,
                title="SP errors, stock platform (messaging ~frequency-"
                "insensitive)",
            ),
            format_error_table(
                heavy,
                title=f"SP errors, CPU-bound messaging "
                f"({cycles_per_byte:.0f} cycles/byte)",
            ),
            f"max error grows {normal.max_error:.1%} -> {heavy.max_error:.1%} "
            f"when overhead becomes frequency-sensitive",
        ]
    )
    data = {
        "normal_errors": normal.cells(),
        "heavy_errors": heavy.cells(),
        "normal_max": normal.max_error,
        "heavy_max": heavy.max_error,
    }
    return ExperimentResult(
        "ablation_overhead",
        "Ablation: violate Assumption 2 (frequency-sensitive overhead)",
        text,
        data,
    )


@register(
    "ablation_dop",
    "Ablation: relax Assumption 1 with a DOP-decomposed workload",
    "FP with/without the DOP spectrum on LU (the paper's future work)",
)
def run_dop(problem_class: str = "A") -> ExperimentResult:
    """Quantify what DOP awareness buys FP on LU."""
    lu = LUBenchmark(ProblemClass.parse(problem_class))
    campaign = measure_campaign(lu, TABLE7_COUNTS, PAPER_FREQUENCIES)

    fp_flat = fit_lu_fp(lu)
    fp_dop = fit_lu_fp(lu, workload=lu.workload(max_dop=1 << 20))

    flat_table = Predictor(campaign, fp_flat).speedup_error_table(
        label="FP (Assumption 1)"
    )
    dop_table = Predictor(campaign, fp_dop).speedup_error_table(
        label="FP + DOP"
    )

    rows = [
        [
            label,
            f"{table.max_error:.1%}",
            f"{table.mean_error:.1%}",
            f"{max(table.row(max(TABLE7_COUNTS)).values()):.1%}",
        ]
        for label, table in (
            ("FP, fully-parallel (paper)", flat_table),
            ("FP, DOP-decomposed (future work)", dop_table),
        )
    ]
    direction = (
        "improves"
        if dop_table.mean_error < flat_table.mean_error
        else "worsens"
    )
    text = "\n\n".join(
        [
            format_rows(
                ["model", "max err", "mean err", f"max err @ N={max(TABLE7_COUNTS)}"],
                rows,
                title="LU: what DOP awareness buys the FP parameterization",
            ),
            f"mean error {direction}: {flat_table.mean_error:.1%} -> "
            f"{dop_table.mean_error:.1%}\n"
            "note: FP's Assumption-1 optimism (ignoring the pipeline) and "
            "its per-message overhead pessimism (ping-pong times overstate "
            "overlapped eager messaging) partially cancel; correcting only "
            "one of them can move the total either way.",
        ]
    )
    data = {
        "flat_errors": flat_table.cells(),
        "dop_errors": dop_table.cells(),
        "flat_mean": flat_table.mean_error,
        "dop_mean": dop_table.mean_error,
    }
    return ExperimentResult(
        "ablation_dop",
        "Ablation: relax Assumption 1 with a DOP-decomposed workload",
        text,
        data,
    )


@register(
    "ablation_decomposition",
    "Ablation: FT transpose decomposition (1-D slab vs 2-D pencil)",
    "Both FT decompositions on the stock switch and a gigabit variant",
)
def run_decomposition(
    problem_class: str = "A", n_ranks: int = 16
) -> ExperimentResult:
    """Compare FT's 1-D and 2-D transposes across interconnects.

    The 2-D (pencil) decomposition transposes in two √N-group stages —
    fewer, larger messages per rank, but ~2·(√N−1)/√N vs (N−1)/N of
    the slab volume, i.e. nearly twice the bytes on the wire.  On a
    bandwidth-starved switch the slab wins; 2-D's raison d'être is
    rank counts beyond the slab limit (N > nz) and latency-dominated
    fabrics.
    """
    from repro.npb import FTBenchmark

    gigabit = dataclasses.replace(
        paper_spec(),
        network=dataclasses.replace(
            paper_spec().network,
            line_rate_bytes_per_s=125e6,
            latency_s=30e-6,
            congestion_coeff=0.2,
        ),
    )
    rows = []
    data: dict[str, dict[str, float]] = {}
    for net_label, spec in (("100Mb (paper)", paper_spec()),
                            ("gigabit", gigabit)):
        for decomp in ("1d", "2d"):
            ft = FTBenchmark(
                ProblemClass.parse(problem_class), decomposition=decomp
            )
            campaign = measure_campaign(
                ft, (1, n_ranks), (min(PAPER_FREQUENCIES),), spec=spec
            )
            f0 = min(PAPER_FREQUENCIES)
            speedup = campaign.time(1, f0) / campaign.time(n_ranks, f0)
            data[f"{net_label}/{decomp}"] = {
                "time_s": campaign.time(n_ranks, f0),
                "speedup": speedup,
            }
            rows.append(
                [
                    net_label,
                    decomp,
                    f"{campaign.time(n_ranks, f0):.2f}s",
                    f"{speedup:.2f}",
                ]
            )
    text = "\n\n".join(
        [
            format_rows(
                ["network", "decomposition", f"T({n_ranks},600)", "speedup"],
                rows,
                title=f"FT transpose decomposition at {n_ranks} ranks",
            ),
            "The slab (1-D) decomposition moves ~(N-1)/N of the dataset "
            "per transpose; the pencil (2-D) moves ~2(sqrt(N)-1)/sqrt(N) "
            "— nearly twice as much — so on bandwidth-bound fabrics the "
            "paper's 1-D configuration is the right one at these rank "
            "counts.  2-D pays off only past the slab limit (N > nz).",
        ]
    )
    return ExperimentResult(
        "ablation_decomposition",
        "Ablation: FT transpose decomposition (1-D slab vs 2-D pencil)",
        text,
        data,
    )
