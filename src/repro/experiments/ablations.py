"""Ablations of the model's design choices (DESIGN.md §5).

Three experiments isolate what each modelling ingredient buys:

* ``ablation_onoff`` — remove the ON/OFF-chip decomposition: scale the
  *whole* workload with frequency.  FT's sizable memory time then gets
  mis-scaled and frequency-column errors blow up — the Table 1 error
  structure re-appears even with a perfect overhead model.
* ``ablation_overhead`` — violate Assumption 2: measure on a platform
  whose messaging is strongly CPU-bound (large per-byte host cost).
  SP's frequency-insensitive overhead then under-predicts the benefit
  of frequency, and its errors grow accordingly.
* ``ablation_dop`` — relax Assumption 1 (the paper's named future
  work): give FP the DOP-decomposed workload instead of
  fully-parallel.  LU's pipeline-limited sweeps are then modelled and
  the large-N errors shrink.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.params_sp import SimplifiedParameterization
from repro.core.prediction import Predictor
from repro.experiments.platform import PAPER_COUNTS, PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.experiments.table7 import TABLE7_COUNTS, fit_lu_fp
from repro.npb import LUBenchmark, ProblemClass
from repro.cluster.machine import paper_spec
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_error_table, format_rows

__all__ = [
    "ONOFF_SPEC",
    "OVERHEAD_SPEC",
    "DOP_SPEC",
    "DECOMPOSITION_SPEC",
]

ONOFF_TITLE = "Ablation: remove the ON/OFF-chip workload decomposition"
OVERHEAD_TITLE = "Ablation: violate Assumption 2 (frequency-sensitive overhead)"
DOP_TITLE = "Ablation: relax Assumption 1 with a DOP-decomposed workload"
DECOMPOSITION_TITLE = (
    "Ablation: FT transpose decomposition (1-D slab vs 2-D pencil)"
)


class _NoSplitModel:
    """A predictor with the ON/OFF decomposition removed.

    Takes SP's measured base column and overheads, but replaces the
    measured sequential frequency row with pure 1/f scaling of
    ``T_1(w, f0)`` — i.e. it assumes *all* work is ON-chip.
    """

    def __init__(self, sp: SimplifiedParameterization) -> None:
        self._sp = sp
        self._t1_f0 = sp.campaign.sequential_base_time()
        self._f0 = sp.base_frequency_hz

    def predict_time(self, n: int, frequency_hz: float) -> float:
        t1 = self._t1_f0 * (self._f0 / frequency_hz)
        if n == 1:
            return t1
        return t1 / n + max(self._sp.overhead(n), 0.0)


# --------------------------------------------------------------------------
# ablation_onoff
# --------------------------------------------------------------------------


def _onoff_requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            "ft",
            params.get("problem_class") or "A",
            PAPER_COUNTS,
            PAPER_FREQUENCIES,
        ),
    )


def _onoff_fit(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    sp = SimplifiedParameterization(campaign)
    return {
        "full_table": Predictor(campaign, sp).speedup_error_table(
            label="with split"
        ),
        "ablated_table": Predictor(
            campaign, _NoSplitModel(sp)
        ).speedup_error_table(label="without split"),
    }


def _onoff_render(ctx: StageContext) -> ExperimentResult:
    full_table = ctx.state["fit"]["full_table"]
    ablated_table = ctx.state["fit"]["ablated_table"]
    text = "\n\n".join(
        [
            format_error_table(
                full_table, title="FT speedup errors WITH the ON/OFF split"
            ),
            format_error_table(
                ablated_table,
                title="FT speedup errors WITHOUT the split (all work scaled "
                "by f)",
            ),
            f"max error grows {full_table.max_error:.1%} -> "
            f"{ablated_table.max_error:.1%} when the split is removed",
        ]
    )
    data = {
        "with_split": full_table.cells(),
        "without_split": ablated_table.cells(),
        "with_split_max": full_table.max_error,
        "without_split_max": ablated_table.max_error,
    }
    return ExperimentResult("ablation_onoff", ONOFF_TITLE, text, data)


ONOFF_SPEC = register_spec(
    ExperimentSpec(
        experiment_id="ablation_onoff",
        title=ONOFF_TITLE,
        description="Pure-1/f frequency scaling vs the full SP model on FT",
        requires=_onoff_requires,
        stages=(
            Stage("fit", _onoff_fit),
            Stage("render", _onoff_render),
        ),
    )
)


# --------------------------------------------------------------------------
# ablation_overhead
# --------------------------------------------------------------------------


def _heavy_spec(cycles_per_byte: float):
    return dataclasses.replace(
        paper_spec(),
        nic=dataclasses.replace(
            paper_spec().nic, cycles_per_byte=cycles_per_byte
        ),
    )


def _overhead_requires(params: dict) -> tuple[CampaignRequest, ...]:
    problem_class = params.get("problem_class") or "A"
    cycles_per_byte = float(params.get("cycles_per_byte") or 60.0)
    counts = tuple(params.get("counts") or (1, 2, 4, 8, 16))
    return (
        CampaignRequest(
            "ft", problem_class, counts, PAPER_FREQUENCIES, spec=paper_spec()
        ),
        CampaignRequest(
            "ft",
            problem_class,
            counts,
            PAPER_FREQUENCIES,
            spec=_heavy_spec(cycles_per_byte),
        ),
    )


def _overhead_fit(ctx: StageContext) -> dict[str, _t.Any]:
    def sp_errors(campaign):
        return Predictor(
            campaign, SimplifiedParameterization(campaign)
        ).speedup_error_table()

    return {
        "normal": sp_errors(ctx.campaign(0)),
        "heavy": sp_errors(ctx.campaign(1)),
    }


def _overhead_render(ctx: StageContext) -> ExperimentResult:
    normal = ctx.state["fit"]["normal"]
    heavy = ctx.state["fit"]["heavy"]
    cycles_per_byte = float(ctx.param("cycles_per_byte", 60.0))
    text = "\n\n".join(
        [
            format_error_table(
                normal,
                title="SP errors, stock platform (messaging ~frequency-"
                "insensitive)",
            ),
            format_error_table(
                heavy,
                title=f"SP errors, CPU-bound messaging "
                f"({cycles_per_byte:.0f} cycles/byte)",
            ),
            f"max error grows {normal.max_error:.1%} -> {heavy.max_error:.1%} "
            f"when overhead becomes frequency-sensitive",
        ]
    )
    data = {
        "normal_errors": normal.cells(),
        "heavy_errors": heavy.cells(),
        "normal_max": normal.max_error,
        "heavy_max": heavy.max_error,
    }
    return ExperimentResult("ablation_overhead", OVERHEAD_TITLE, text, data)


OVERHEAD_SPEC = register_spec(
    ExperimentSpec(
        experiment_id="ablation_overhead",
        title=OVERHEAD_TITLE,
        description="SP errors on a platform with CPU-bound messaging",
        requires=_overhead_requires,
        stages=(
            Stage("fit", _overhead_fit),
            Stage("render", _overhead_render),
        ),
    )
)


# --------------------------------------------------------------------------
# ablation_dop
# --------------------------------------------------------------------------


def _dop_requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            "lu",
            params.get("problem_class") or "A",
            TABLE7_COUNTS,
            PAPER_FREQUENCIES,
        ),
    )


def _dop_fit(ctx: StageContext) -> dict[str, _t.Any]:
    lu = LUBenchmark(ProblemClass.parse(ctx.param("problem_class", "A")))
    campaign = ctx.campaign(0)

    fp_flat = fit_lu_fp(lu)
    fp_dop = fit_lu_fp(lu, workload=lu.workload(max_dop=1 << 20))

    return {
        "flat_table": Predictor(campaign, fp_flat).speedup_error_table(
            label="FP (Assumption 1)"
        ),
        "dop_table": Predictor(campaign, fp_dop).speedup_error_table(
            label="FP + DOP"
        ),
    }


def _dop_render(ctx: StageContext) -> ExperimentResult:
    flat_table = ctx.state["fit"]["flat_table"]
    dop_table = ctx.state["fit"]["dop_table"]
    rows = [
        [
            label,
            f"{table.max_error:.1%}",
            f"{table.mean_error:.1%}",
            f"{max(table.row(max(TABLE7_COUNTS)).values()):.1%}",
        ]
        for label, table in (
            ("FP, fully-parallel (paper)", flat_table),
            ("FP, DOP-decomposed (future work)", dop_table),
        )
    ]
    direction = (
        "improves"
        if dop_table.mean_error < flat_table.mean_error
        else "worsens"
    )
    text = "\n\n".join(
        [
            format_rows(
                ["model", "max err", "mean err", f"max err @ N={max(TABLE7_COUNTS)}"],
                rows,
                title="LU: what DOP awareness buys the FP parameterization",
            ),
            f"mean error {direction}: {flat_table.mean_error:.1%} -> "
            f"{dop_table.mean_error:.1%}\n"
            "note: FP's Assumption-1 optimism (ignoring the pipeline) and "
            "its per-message overhead pessimism (ping-pong times overstate "
            "overlapped eager messaging) partially cancel; correcting only "
            "one of them can move the total either way.",
        ]
    )
    data = {
        "flat_errors": flat_table.cells(),
        "dop_errors": dop_table.cells(),
        "flat_mean": flat_table.mean_error,
        "dop_mean": dop_table.mean_error,
    }
    return ExperimentResult("ablation_dop", DOP_TITLE, text, data)


DOP_SPEC = register_spec(
    ExperimentSpec(
        experiment_id="ablation_dop",
        title=DOP_TITLE,
        description="FP with/without the DOP spectrum on LU (the paper's future work)",
        requires=_dop_requires,
        stages=(
            Stage("fit", _dop_fit),
            Stage("render", _dop_render),
        ),
    )
)


# --------------------------------------------------------------------------
# ablation_decomposition
# --------------------------------------------------------------------------

#: The network variants the decomposition ablation sweeps, in order.
_NET_LABELS = ("100Mb (paper)", "gigabit")
_DECOMPOSITIONS = ("1d", "2d")


def _gigabit_spec():
    return dataclasses.replace(
        paper_spec(),
        network=dataclasses.replace(
            paper_spec().network,
            line_rate_bytes_per_s=125e6,
            latency_s=30e-6,
            congestion_coeff=0.2,
        ),
    )


def _decomposition_requires(params: dict) -> tuple[CampaignRequest, ...]:
    problem_class = params.get("problem_class") or "A"
    n_ranks = int(params.get("n_ranks") or 16)
    requests = []
    for spec in (paper_spec(), _gigabit_spec()):
        for decomp in _DECOMPOSITIONS:
            requests.append(
                CampaignRequest(
                    "ft",
                    problem_class,
                    (1, n_ranks),
                    (min(PAPER_FREQUENCIES),),
                    spec=spec,
                    options=(("decomposition", decomp),),
                )
            )
    return tuple(requests)


def _decomposition_analyze(ctx: StageContext) -> dict[str, _t.Any]:
    n_ranks = int(ctx.param("n_ranks", 16))
    rows = []
    data: dict[str, dict[str, float]] = {}
    index = 0
    for net_label in _NET_LABELS:
        for decomp in _DECOMPOSITIONS:
            campaign = ctx.campaign(index)
            index += 1
            f0 = min(PAPER_FREQUENCIES)
            speedup = campaign.time(1, f0) / campaign.time(n_ranks, f0)
            data[f"{net_label}/{decomp}"] = {
                "time_s": campaign.time(n_ranks, f0),
                "speedup": speedup,
            }
            rows.append(
                [
                    net_label,
                    decomp,
                    f"{campaign.time(n_ranks, f0):.2f}s",
                    f"{speedup:.2f}",
                ]
            )
    return {"rows": rows, "data": data}


def _decomposition_render(ctx: StageContext) -> ExperimentResult:
    n_ranks = int(ctx.param("n_ranks", 16))
    text = "\n\n".join(
        [
            format_rows(
                ["network", "decomposition", f"T({n_ranks},600)", "speedup"],
                ctx.state["analyze"]["rows"],
                title=f"FT transpose decomposition at {n_ranks} ranks",
            ),
            "The slab (1-D) decomposition moves ~(N-1)/N of the dataset "
            "per transpose; the pencil (2-D) moves ~2(sqrt(N)-1)/sqrt(N) "
            "— nearly twice as much — so on bandwidth-bound fabrics the "
            "paper's 1-D configuration is the right one at these rank "
            "counts.  2-D pays off only past the slab limit (N > nz).",
        ]
    )
    return ExperimentResult(
        "ablation_decomposition",
        DECOMPOSITION_TITLE,
        text,
        ctx.state["analyze"]["data"],
    )


DECOMPOSITION_SPEC = register_spec(
    ExperimentSpec(
        experiment_id="ablation_decomposition",
        title=DECOMPOSITION_TITLE,
        description="Both FT decompositions on the stock switch and a gigabit variant",
        requires=_decomposition_requires,
        stages=(
            Stage("analyze", _decomposition_analyze),
            Stage("render", _decomposition_render),
        ),
    )
)
