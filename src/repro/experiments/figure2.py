"""Figure 2 — FT execution times and the 2-D power-aware speedup surface.

The communication-bound counterpart to Figure 1.  Observations the
reproduction must show (paper §4.3):

1. time falls with N for N >= 2, sub-linearly;
2. sequential time falls sub-linearly with f (≈1.9 at 1400 MHz);
3. speedup *dips* from 1 to 2 processors, then recovers (≈2.9 at 16);
4. the N = 1 speedup row is sub-linear in f;
5. frequency scaling's effect diminishes as nodes are added.
"""

from __future__ import annotations

import typing as _t

from repro.core.speedup import measured_speedup_table
from repro.experiments.platform import PAPER_COUNTS, PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_grid

__all__ = ["SPEC"]

TITLE = "Figure 2: FT execution time and two-dimensional speedup"


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            "ft",
            params.get("problem_class") or "A",
            tuple(params.get("counts") or PAPER_COUNTS),
            tuple(params.get("frequencies") or PAPER_FREQUENCIES),
        ),
    )


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    return {
        "speedups": measured_speedup_table(
            campaign.times, campaign.base_frequency_hz
        )
    }


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    speedups = ctx.state["fit"]["speedups"]
    f0 = campaign.base_frequency_hz
    f_peak = max(campaign.frequencies)
    n_max = max(campaign.counts)
    observations = [
        (
            "speedup dips from 1 to 2 processors",
            speedups[(2, f0)] < speedups[(1, f0)],
        ),
        (
            "speedup recovers by the largest count",
            speedups[(n_max, f0)] > 2.0,
        ),
        (
            "sequential frequency speedup is sub-linear",
            speedups[(1, f_peak)] < f_peak / f0,
        ),
        (
            "frequency effect diminishes with nodes",
            speedups[(n_max, f_peak)] / speedups[(n_max, f0)]
            < speedups[(1, f_peak)] / speedups[(1, f0)],
        ),
    ]
    data = {
        "times": dict(campaign.times),
        "energies": dict(campaign.energies),
        "speedups": speedups,
        "observations": {label: ok for label, ok in observations},
    }
    return {"observations": observations, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    campaign = ctx.campaign(0)
    speedups = ctx.state["fit"]["speedups"]
    observations = ctx.state["analyze"]["observations"]
    obs_lines = [
        f"[{'ok' if ok else 'FAIL'}] {label}" for label, ok in observations
    ]
    text = "\n\n".join(
        [
            format_grid(
                campaign.times,
                title="Figure 2a: FT execution time (seconds)",
                value_style="time",
            ),
            format_grid(
                speedups,
                title="Figure 2b: FT power-aware speedup surface",
                value_style="speedup",
            ),
            "\n".join(obs_lines),
        ]
    )
    return ExperimentResult(
        "figure2", TITLE, text, ctx.state["analyze"]["data"]
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="figure2",
        title=TITLE,
        description="FT time series per frequency + (N, f) speedup surface",
        requires=_requires,
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
