"""Command-line interface: ``repro-experiments``.

Usage::

    repro-experiments list
    repro-experiments run table3 [--class A] [--json OUT.json] [--jobs 4]
    repro-experiments run-all [--outdir results/] [--json ALL.json] \\
        [--plan-json PLAN.json]
    repro-experiments campaign ft --class A --counts 1,2,4,8,16 \\
        --csv ft_times.csv --json ft.json
    repro-experiments govern ft --ranks 4 --policy model_predictive \\
        --scenario cluster_cap --json trace.json
    repro-experiments optimize ep --objective energy \\
        --scenario cluster_cap --json winner.json
    repro-experiments serve --port 8080
    repro-experiments --version

Every experiment prints its report in the paper's table layout; JSON
export captures the machine-readable data for downstream analysis.
All JSON exports — ``run --json``, ``run-all --json``/``--outdir``
and ``campaign --json`` — share one schema path
(:func:`repro.reporting.jsonify`): grid cells render as ``"N@fMHz"``
keys and floats round-trip bit-exactly.  The ``campaign`` subcommand
measures any registered benchmark over a custom (counts × frequencies)
grid and exports times/energies/speedups.  ``serve`` starts the
long-running prediction & campaign service (see
:mod:`repro.service`).

``run-all`` executes the whole suite as **one deduplicated campaign
plan** (:mod:`repro.pipeline`): every experiment declares the
campaigns it requires, the planner unions the cells and simulates
each unique (benchmark, N, f) cell at most once, and the experiments'
fit/analyze/render stages consume the shared artifact store.  The
``[experiment plan]`` line reports planned/deduped/executed cell
counts; ``--plan-json`` exports the plan, the store's provenance
document and the runtime metrics snapshot.

``--jobs N`` fans campaign cells out over N worker processes and
``--no-disk-cache`` disables the persistent ``.repro_cache/`` tier
(see :mod:`repro.runtime`); each command ends with a ``[campaign
runtime]`` line reporting simulated cells, cache hits and engine
throughput (events processed, events/second, peak queue length).
``--profile`` wraps the command in :mod:`cProfile` and prints the top
20 functions by cumulative time.  Fault
tolerance is tunable per run: ``--retries N`` (extra attempts per
failing cell), ``--cell-timeout S`` (terminate and retry hung
workers) and ``--allow-partial`` (return surviving cells plus a
failure report instead of aborting the command).  ``--backend
{des,analytic,auto}`` picks the campaign execution path — the
discrete-event simulator, the vectorized closed forms, or per-cell
routing between them (see ``docs/ANALYTIC.md``).

``govern`` runs one benchmark under the closed-loop DVFS governor
(:mod:`repro.governor`): pick a policy and a power-cap scenario, get
the decision trace plus the energy/time/EDP comparison against the
static baseline governed under the same cap (see
``docs/GOVERNOR.md``).

``--platform NAME`` selects a registered platform (``paper``,
``paper-memwall``, ``hetero-2gen``; see ``docs/PLATFORMS.md``) for
the command's campaigns and governed runs — equivalent to setting
``REPRO_PLATFORM``.  ``optimize`` searches every ``(platform, N, f)``
configuration for the energy/EDP/time-optimal one under a power
budget, pricing candidates analytically and confirming the winner in
the simulator (:mod:`repro.optimizer`).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t

from repro.experiments.registry import (
    list_experiments,
    run_experiment,
)

__all__ = ["main"]


def _jsonify(value: _t.Any) -> _t.Any:
    """Make experiment data JSON-serializable.

    One shared schema path for every CLI JSON export — delegates to
    :func:`repro.reporting.jsonify` (tuple grid keys become
    ``"N@fMHz"`` strings).
    """
    from repro.reporting import jsonify

    return jsonify(value)


def _configure_runtime(args: argparse.Namespace) -> None:
    """Apply the runtime flags (jobs, cache, platform, fault tolerance)."""
    from repro import runtime
    from repro.errors import ConfigurationError

    jobs = args.jobs
    if getattr(args, "profile", False) and jobs is None:
        # Profile in-process by default: pool workers would hide the
        # simulation hot loop from the profiler.
        jobs = 1
    try:
        _apply_runtime(runtime, args, jobs)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        raise SystemExit(2)


def _apply_runtime(
    runtime: _t.Any, args: argparse.Namespace, jobs: int | None
) -> None:
    runtime.configure(
        jobs=jobs,
        disk_cache=False if args.no_disk_cache else None,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        allow_partial=True if args.allow_partial else None,
        backend=getattr(args, "backend", None),
        fabric=True if getattr(args, "fabric", False) else None,
        platform=getattr(args, "platform", None),
    )


def _print_runtime_stats() -> None:
    """Per-cell timing, cache-hit and fault metrics for the command."""
    from repro.runtime.metrics import METRICS

    if METRICS.records:
        print(f"[campaign runtime] {METRICS.summary_line()}")
    for record in METRICS.records:
        for failure in record.failures:
            cell = failure.get("cell", ["?", 0.0])
            try:
                where = f"n={cell[0]}, f={float(cell[1]) / 1e6:.0f} MHz"
            except (TypeError, ValueError, IndexError):
                where = repr(cell)
            print(
                f"[campaign runtime] {record.label}: FAILED cell "
                f"({where}): {failure.get('error', 'unknown error')}"
            )


def _cmd_list(_args: argparse.Namespace) -> int:
    for exp_id, title, _desc in list_experiments():
        print(f"{exp_id:20s} {title}")
    return 0


def _run_one(
    exp_id: str, problem_class: str, json_path: str | None
) -> dict[str, _t.Any]:
    kwargs: dict[str, _t.Any] = {}
    if problem_class:
        kwargs["problem_class"] = problem_class
    result = run_experiment(exp_id, **kwargs)
    print(result)
    print()
    document = result.document()
    if json_path:
        pathlib.Path(json_path).write_text(json.dumps(document, indent=2))
        print(f"[data written to {json_path}]")
    return document


def _cmd_run(args: argparse.Namespace) -> int:
    _configure_runtime(args)
    _run_one(args.experiment, args.problem_class, args.json)
    _print_runtime_stats()
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    _configure_runtime(args)
    from repro.experiments.registry import get_experiment
    from repro.pipeline import ArtifactStore, run_pipeline

    outdir = pathlib.Path(args.outdir) if args.outdir else None
    if outdir:
        outdir.mkdir(parents=True, exist_ok=True)
    params: dict[str, _t.Any] = {}
    if args.problem_class:
        params["problem_class"] = args.problem_class

    # One deduplicated plan for the whole suite: every experiment's
    # campaign requests are unioned, each unique (benchmark, N, f)
    # cell is simulated at most once, and the per-experiment stages
    # run off the shared artifact store.
    store = ArtifactStore()
    listing = list_experiments()
    specs = [(get_experiment(exp_id), dict(params)) for exp_id, _, _ in listing]
    results, report = run_pipeline(specs, store=store)

    documents = []
    for exp_id, _title, _desc in listing:
        result = results[exp_id]
        print(result)
        print()
        document = result.document()
        if outdir:
            json_path = outdir / f"{exp_id}.json"
            json_path.write_text(json.dumps(document, indent=2))
            print(f"[data written to {json_path}]")
        documents.append(document)
    print(f"[experiment plan] {report.summary_line()}")
    if args.json:
        combined = {"experiments": documents}
        pathlib.Path(args.json).write_text(json.dumps(combined, indent=2))
        print(f"[combined data written to {args.json}]")
    if args.plan_json:
        from repro.runtime.metrics import METRICS

        plan_document = {
            "plan": report.as_dict(),
            "store": store.provenance_document(),
            "runtime": METRICS.snapshot(),
        }
        pathlib.Path(args.plan_json).write_text(
            json.dumps(plan_document, indent=2)
        )
        print(f"[plan report written to {args.plan_json}]")
    _print_runtime_stats()
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.platform import (
        PAPER_COUNTS,
        PAPER_FREQUENCIES,
        measure_campaign,
    )
    from repro.npb import BENCHMARKS, ProblemClass
    from repro.reporting import format_grid, grid_to_csv
    from repro.units import mhz

    name = args.benchmark.lower()
    if name not in BENCHMARKS:
        print(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    _configure_runtime(args)
    counts = (
        tuple(int(c) for c in args.counts.split(","))
        if args.counts
        else PAPER_COUNTS
    )
    frequencies = (
        tuple(mhz(float(m)) for m in args.frequencies.split(","))
        if args.frequencies
        else PAPER_FREQUENCIES
    )
    bench = BENCHMARKS[name](
        ProblemClass.parse(args.problem_class or "A")
    )
    campaign = measure_campaign(bench, counts, frequencies)

    print(
        format_grid(
            campaign.times,
            title=f"{name.upper()} execution time (seconds)",
            value_style="time",
        )
    )
    print()
    print(
        format_grid(
            campaign.speedups(),
            title=f"{name.upper()} power-aware speedup",
            value_style="speedup",
        )
    )
    if args.csv:
        base = pathlib.Path(args.csv)
        grid_to_csv(campaign.times, base, value_name="seconds")
        energy_path = base.with_name(base.stem + "_energy" + base.suffix)
        grid_to_csv(campaign.energies, energy_path, value_name="joules")
        print(f"\n[times written to {base}, energies to {energy_path}]")
    if args.json:
        document = {
            "benchmark": name,
            "class": bench.problem_class.value,
            "base_frequency_hz": campaign.base_frequency_hz,
            "data": _jsonify(
                {
                    "times": campaign.times,
                    "energies": campaign.energies,
                    "speedups": campaign.speedups(),
                }
            ),
        }
        pathlib.Path(args.json).write_text(json.dumps(document, indent=2))
        print(f"[data written to {args.json}]")
    _print_runtime_stats()
    return 0


def _cmd_govern(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError, ReproError
    from repro.governor import PowerCap, govern_run, power_cap_scenarios
    from repro.npb import BENCHMARKS, ProblemClass
    from repro.reporting.tables import format_rows

    name = args.benchmark.lower()
    if name not in BENCHMARKS:
        print(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    bench = BENCHMARKS[name](ProblemClass.parse(args.problem_class or "A"))
    ranks = args.ranks
    try:
        from repro import runtime
        from repro.platforms import get_platform

        spec = get_platform(runtime.resolve_platform(args.platform))
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.scenario:
        scenarios = power_cap_scenarios(ranks, spec)
        if args.scenario not in scenarios:
            print(
                f"unknown cap scenario {args.scenario!r}; available: "
                f"{sorted(scenarios)}",
                file=sys.stderr,
            )
            return 2
        cap = scenarios[args.scenario]
    elif args.cluster_cap_w or args.node_cap_w:
        cap = PowerCap(
            label="custom",
            cluster_w=args.cluster_cap_w,
            node_w=args.node_cap_w,
        )
    else:
        cap = PowerCap()

    try:
        governed = govern_run(
            bench,
            ranks,
            args.policy,
            cap,
            spec=spec,
            epoch_phases=args.epoch_phases,
            safety=args.safety,
            seed=args.seed,
        )
        baseline = govern_run(
            bench,
            ranks,
            "static",
            cap,
            spec=spec,
            epoch_phases=args.epoch_phases,
            safety=args.safety,
            seed=args.seed,
        )
    except ReproError as exc:
        print(f"govern failed: {exc}", file=sys.stderr)
        return 2

    rows = [
        [
            run.policy,
            f"{run.elapsed_s:.3f}",
            f"{run.energy_j:.1f}",
            f"{run.edp:.1f}",
            run.trace.transitions,
        ]
        for run in (baseline, governed)
    ]
    print(
        format_rows(
            ["policy", "time [s]", "energy [J]", "EDP [J*s]", "transitions"],
            rows,
            title=(
                f"{name.upper()} class {bench.problem_class.value} at "
                f"N={ranks}, cap '{cap.label}' "
                f"({governed.trace.n_epochs} epochs)"
            ),
        )
    )
    ratio = governed.edp / baseline.edp if baseline.edp else 0.0
    print(
        f"\nEDP vs static baseline: {ratio:.3f}  "
        f"(trace digest {governed.trace.digest()[:16]})"
    )
    if args.json:
        document = {
            "baseline": {
                "elapsed_s": baseline.elapsed_s,
                "energy_j": baseline.energy_j,
                "edp_j_s": baseline.edp,
            },
            "edp_ratio_vs_static": ratio,
            "trace": governed.trace.to_document(),
        }
        pathlib.Path(args.json).write_text(json.dumps(document, indent=2))
        print(f"[decision trace written to {args.json}]")
    return 0


def _cmd_platforms(_args: argparse.Namespace) -> int:
    from repro.platforms import platform_summaries
    from repro.reporting.tables import format_rows

    rows = []
    for summary in platform_summaries():
        rows.append(
            [
                summary["name"],
                str(summary["n_nodes"]),
                "yes" if summary["heterogeneous"] else "no",
                ",".join(f"{m:.0f}" for m in summary["frequencies_mhz"]),
                summary["spec_digest"][:12],
                summary["description"],
            ]
        )
    print(
        format_rows(
            [
                "platform",
                "nodes",
                "hetero",
                "common f [MHz]",
                "digest",
                "description",
            ],
            rows,
            title="registered platforms (select with --platform or "
            "REPRO_PLATFORM)",
        )
    )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.governor import PowerCap, power_cap_scenarios
    from repro.optimizer import optimize
    from repro.reporting.tables import format_rows

    _configure_runtime(args)
    counts = (
        tuple(int(c) for c in args.counts.split(","))
        if args.counts
        else None
    )
    platforms = (
        tuple(p.strip() for p in args.platforms.split(","))
        if args.platforms
        else None
    )
    try:
        if args.scenario:
            ranks = max(counts) if counts else None
            from repro.experiments.platform import PAPER_COUNTS

            scenarios = power_cap_scenarios(ranks or max(PAPER_COUNTS))
            if args.scenario not in scenarios:
                print(
                    f"unknown cap scenario {args.scenario!r}; available: "
                    f"{sorted(scenarios)}",
                    file=sys.stderr,
                )
                return 2
            cap = scenarios[args.scenario]
        elif args.cluster_cap_w or args.node_cap_w:
            cap = PowerCap(
                label="custom",
                cluster_w=args.cluster_cap_w,
                node_w=args.node_cap_w,
            )
        else:
            cap = PowerCap()
        result = optimize(
            args.benchmark,
            args.problem_class or "A",
            objective=args.objective,
            platforms=platforms,
            counts=counts,
            cap=cap,
            confirm=not args.no_confirm,
        )
    except ReproError as exc:
        print(f"optimize failed: {exc}", file=sys.stderr)
        return 2

    shown = result.feasible_candidates()[: args.top]
    rows = [
        [
            c.platform,
            str(c.n),
            f"{c.frequency_hz / 1e6:.0f}",
            f"{c.time_s:.3f}",
            f"{c.energy_j:.1f}",
            f"{c.edp_j_s:.1f}",
            f"{c.mean_power_w:.1f}",
        ]
        for c in shown
    ]
    n_feasible = len(result.feasible_candidates())
    print(
        format_rows(
            [
                "platform",
                "N",
                "f [MHz]",
                "time [s]",
                "energy [J]",
                "EDP [J*s]",
                "mean [W]",
            ],
            rows,
            title=(
                f"{result.benchmark.upper()} class {result.problem_class}: "
                f"top {len(shown)} of {n_feasible} feasible configs by "
                f"{result.objective}, cap '{result.cap.label}'"
            ),
        )
    )
    winner = result.winner
    print(
        f"\nwinner: {winner.platform} at N={winner.n}, "
        f"f={winner.frequency_hz / 1e6:.0f} MHz "
        f"({result.objective} = "
        f"{winner.objective_value(result.objective):.1f})"
    )
    infeasible = len(result.candidates) - n_feasible
    if infeasible or result.skipped:
        print(
            f"[{infeasible} candidates over cap, "
            f"{len(result.skipped)} cells skipped]"
        )
    if result.confirmation is not None:
        print(
            "DES confirmation: time err "
            f"{result.confirmation['time_rel_err']:.3%}, energy err "
            f"{result.confirmation['energy_rel_err']:.3%}"
        )
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(result.as_dict(), indent=2)
        )
        print(f"[optimizer result written to {args.json}]")
    _print_runtime_stats()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve_from_args

    return serve_from_args(args)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.fabric.worker import FabricWorker, resolve_worker_procs

    worker = FabricWorker(
        args.host,
        args.port,
        name=args.name,
        max_idle_s=args.max_idle_s,
        procs=resolve_worker_procs(args.procs),
        stall_timeout_s=args.stall_timeout_s,
    )
    try:
        done = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        done = worker.cells_done
    print(
        f"repro-worker {worker.name}: {done} cells completed "
        f"({worker.leases_taken} leases, {worker.procs} procs, "
        f"{worker.reconnects} reconnects)"
    )
    return 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Power-Aware "
        "Speedup' (Ge & Cameron, IPDPS 2007) on the simulated platform.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runtime_opts = argparse.ArgumentParser(add_help=False)
    runtime_opts.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per campaign (default: auto)",
    )
    runtime_opts.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the on-disk campaign cache (.repro_cache/)",
    )
    runtime_opts.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts per failing campaign cell (default: 2)",
    )
    runtime_opts.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="terminate and retry cells after this stall time "
        "(default: disabled; needs --jobs > 1)",
    )
    runtime_opts.add_argument(
        "--allow-partial",
        action="store_true",
        help="on exhausted retries, keep surviving cells and print a "
        "failure report instead of aborting",
    )
    runtime_opts.add_argument(
        "--backend",
        choices=("des", "analytic", "auto"),
        default=None,
        help="campaign execution backend: 'des' simulates every cell, "
        "'analytic' evaluates the closed forms in one vectorized "
        "pass, 'auto' uses the analytic path where validated and "
        "falls back to the simulator (default: des, or REPRO_BACKEND)",
    )
    runtime_opts.add_argument(
        "--platform",
        default=None,
        metavar="NAME",
        help="registered platform for this command's campaigns "
        "(see 'platforms'; default: paper, or REPRO_PLATFORM)",
    )
    runtime_opts.add_argument(
        "--fabric",
        action="store_true",
        help="offer DES cells to the distributed worker fleet when a "
        "coordinator is installed in this process (default: off, or "
        "REPRO_FABRIC; no live fleet falls back to the local pool)",
    )
    runtime_opts.add_argument(
        "--profile",
        action="store_true",
        help="profile the command with cProfile and print the top 20 "
        "functions by cumulative time (implies --jobs 1 unless --jobs "
        "is given, so the simulation runs in-process)",
    )

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser(
        "run", help="run one experiment", parents=[runtime_opts]
    )
    p_run.add_argument("experiment", help="experiment id (see 'list')")
    p_run.add_argument(
        "--class",
        dest="problem_class",
        default="",
        help="NPB problem class (default: each experiment's default, A)",
    )
    p_run.add_argument("--json", default=None, help="write data to JSON file")
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser(
        "run-all", help="run every experiment", parents=[runtime_opts]
    )
    p_all.add_argument("--class", dest="problem_class", default="")
    p_all.add_argument(
        "--outdir", default=None, help="directory for per-experiment JSON"
    )
    p_all.add_argument(
        "--json",
        default=None,
        help="write all experiments to one combined JSON file",
    )
    p_all.add_argument(
        "--plan-json",
        dest="plan_json",
        default=None,
        help="write the campaign plan, artifact-store provenance and "
        "runtime metrics to a JSON file",
    )
    p_all.set_defaults(func=_cmd_run_all)

    p_camp = sub.add_parser(
        "campaign",
        help="measure a benchmark over a custom (N, f) grid",
        parents=[runtime_opts],
    )
    p_camp.add_argument(
        "benchmark", help="benchmark name (ep, ft, lu, cg, mg, is, bt, sp)"
    )
    p_camp.add_argument("--class", dest="problem_class", default="A")
    p_camp.add_argument(
        "--counts", default="", help="comma-separated processor counts"
    )
    p_camp.add_argument(
        "--frequencies", default="", help="comma-separated frequencies (MHz)"
    )
    p_camp.add_argument(
        "--csv", default=None, help="CSV path for times (+ _energy sibling)"
    )
    p_camp.add_argument(
        "--json",
        default=None,
        help="write times/energies/speedups to a JSON file",
    )
    p_camp.set_defaults(func=_cmd_campaign)

    p_gov = sub.add_parser(
        "govern",
        help="run a benchmark under the closed-loop DVFS governor",
    )
    p_gov.add_argument(
        "benchmark", help="benchmark name (ep, ft, lu, cg, mg, is, bt, sp)"
    )
    p_gov.add_argument("--class", dest="problem_class", default="A")
    p_gov.add_argument(
        "--ranks", type=int, default=4, help="rank count (default: 4)"
    )
    p_gov.add_argument(
        "--policy",
        default=None,
        help="governor policy: static, static_optimal, reactive, "
        "model_predictive (default: REPRO_GOVERNOR_POLICY or "
        "model_predictive)",
    )
    p_gov.add_argument(
        "--scenario",
        default=None,
        help="named power-cap scenario: uncapped, cluster_cap, node_cap",
    )
    p_gov.add_argument(
        "--cluster-cap-w",
        dest="cluster_cap_w",
        type=float,
        default=None,
        help="explicit cluster-wide power budget in watts",
    )
    p_gov.add_argument(
        "--node-cap-w",
        dest="node_cap_w",
        type=float,
        default=None,
        help="explicit per-node power ceiling in watts",
    )
    p_gov.add_argument(
        "--platform",
        default=None,
        metavar="NAME",
        help="registered platform to govern on (see 'platforms'; "
        "default: paper, or REPRO_PLATFORM)",
    )
    p_gov.add_argument(
        "--epoch-phases",
        dest="epoch_phases",
        type=int,
        default=None,
        help="phases per governor epoch (default: REPRO_GOVERNOR_EPOCH or 4)",
    )
    p_gov.add_argument(
        "--safety",
        type=float,
        default=None,
        help="slack-reclamation safety in [0,1] "
        "(default: REPRO_GOVERNOR_SAFETY or 0.9)",
    )
    p_gov.add_argument(
        "--seed", type=int, default=0, help="trace provenance seed"
    )
    p_gov.add_argument(
        "--json",
        default=None,
        help="write the decision trace + baseline comparison to JSON",
    )
    p_gov.set_defaults(func=_cmd_govern)

    p_platforms = sub.add_parser(
        "platforms",
        help="list the registered platforms",
    )
    p_platforms.set_defaults(func=_cmd_platforms)

    p_opt = sub.add_parser(
        "optimize",
        help="search (platform, N, f) for the energy/EDP-optimal "
        "configuration under a power budget",
        parents=[runtime_opts],
    )
    p_opt.add_argument(
        "benchmark", help="benchmark name (ep, ft, lu, cg, mg, is, bt, sp)"
    )
    p_opt.add_argument("--class", dest="problem_class", default="A")
    p_opt.add_argument(
        "--objective",
        choices=("energy", "edp", "time"),
        default="energy",
        help="optimization objective (default: energy)",
    )
    p_opt.add_argument(
        "--platforms",
        default="",
        help="comma-separated platform names to search "
        "(default: every registered platform)",
    )
    p_opt.add_argument(
        "--counts", default="", help="comma-separated processor counts"
    )
    p_opt.add_argument(
        "--scenario",
        default=None,
        help="named power-cap scenario: uncapped, cluster_cap, node_cap",
    )
    p_opt.add_argument(
        "--cluster-cap-w",
        dest="cluster_cap_w",
        type=float,
        default=None,
        help="explicit cluster-wide power budget in watts",
    )
    p_opt.add_argument(
        "--node-cap-w",
        dest="node_cap_w",
        type=float,
        default=None,
        help="explicit per-node power ceiling in watts",
    )
    p_opt.add_argument(
        "--top",
        type=int,
        default=8,
        help="feasible candidates to print (default: 8)",
    )
    p_opt.add_argument(
        "--no-confirm",
        action="store_true",
        help="skip the DES confirmation of the winning cell",
    )
    p_opt.add_argument(
        "--json",
        default=None,
        help="write the full candidate ranking to a JSON file",
    )
    p_opt.set_defaults(func=_cmd_optimize)

    p_serve = sub.add_parser(
        "serve",
        help="start the long-running prediction & campaign service",
    )
    from repro.service.server import add_serve_arguments

    add_serve_arguments(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="join a running service's campaign fabric as a worker",
    )
    p_worker.add_argument("--host", default="127.0.0.1")
    p_worker.add_argument("--port", type=int, default=8642)
    p_worker.add_argument(
        "--name", default="", help="worker name shown in /metrics"
    )
    p_worker.add_argument(
        "--max-idle-s",
        type=float,
        default=None,
        help="exit after this long with no leasable work "
        "(default: run until drained)",
    )
    p_worker.add_argument(
        "--procs",
        type=int,
        default=None,
        help="local simulation processes (default: "
        "REPRO_WORKER_PROCS or os.cpu_count())",
    )
    p_worker.add_argument(
        "--stall-timeout-s",
        type=float,
        default=None,
        help="declare a pool round hung after this long without a "
        "completion (default: disabled)",
    )
    p_worker.set_defaults(func=_cmd_worker)

    args = parser.parse_args(argv)
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        status = profiler.runcall(args.func, args)
        print("\n[profile] top 20 functions by cumulative time:")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats(
            "cumulative"
        ).print_stats(20)
        return status
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
