"""Experiment drivers: one per table/figure of the paper.

Each module reproduces one published artifact on the simulated
platform:

==============  ============================================================
Module          Paper artifact
==============  ============================================================
``table1``      Table 1 — generalized-Amdahl (Eq. 3) prediction errors, FT
``figure1``     Figure 1a/1b — EP execution times and 2-D speedup surface
``figure2``     Figure 2a/2b — FT execution times and 2-D speedup surface
``table3``      Table 3 — power-aware speedup (SP) prediction errors, FT
``table5``      Table 5 — LU workload decomposition via hardware counters
``table6``      Table 6 — per-level CPI/f and per-message times
``table7``      Table 7 — LU prediction errors, FP vs SP
``edp``         Abstract — performance & energy-delay predicted within 7 %
``dvfs_savings``Abstract context — energy savings via DVS scheduling
``ablations``   Design-choice ablations (ON/OFF split, Assumption 2, ...)
==============  ============================================================

All experiments return an :class:`~repro.experiments.registry.
ExperimentResult`; the registry (:mod:`repro.experiments.registry`)
lists them for the CLI (``repro-experiments``) and the benchmark
harness (``benchmarks/``).
"""

from repro.experiments.platform import (
    PAPER_COUNTS,
    PAPER_FREQUENCIES,
    measure_campaign,
)
from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "PAPER_COUNTS",
    "PAPER_FREQUENCIES",
    "measure_campaign",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
