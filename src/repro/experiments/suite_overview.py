"""Suite overview — every modelled NPB code through the power-aware lens.

A capstone sweep across all eight benchmark models at class A: the
corner configurations of the (N, f) grid, the two speedup axes, and
how much frequency leverage survives at scale.  This is the table a
cluster operator would consult to decide, per application, whether to
buy nodes or megahertz — the decision the paper's model exists to
inform.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.registry import ExperimentResult, register_spec
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_rows
from repro.units import mhz

__all__ = ["SPEC", "DEFAULT_SUITE"]

TITLE = "Suite overview: all eight codes through the power-aware lens"

DEFAULT_SUITE = ("ep", "bt", "sp", "lu", "mg", "cg", "ft", "is")


def _suite(params: dict) -> tuple[str, ...]:
    return tuple(params.get("benchmarks") or DEFAULT_SUITE)


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    problem_class = params.get("problem_class") or "A"
    n_max = int(params.get("n_max") or 16)
    return tuple(
        CampaignRequest(
            name, problem_class, (1, n_max), (mhz(600), mhz(1400))
        )
        for name in _suite(params)
    )


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    f0, f1 = mhz(600), mhz(1400)
    n_max = int(ctx.param("n_max", 16))
    rows = []
    data: dict[str, dict[str, float]] = {}
    for index, name in enumerate(_suite(ctx.params)):
        campaign = ctx.campaign(index)
        t = campaign.times
        s_parallel = t[(1, f0)] / t[(n_max, f0)]
        s_combined = t[(1, f0)] / t[(n_max, f1)]
        gain_1 = t[(1, f0)] / t[(1, f1)]
        gain_n = t[(n_max, f0)] / t[(n_max, f1)]
        data[name] = {
            "t1_600_s": t[(1, f0)],
            "parallel_speedup": s_parallel,
            "combined_speedup": s_combined,
            "frequency_gain_seq": gain_1,
            "frequency_gain_at_scale": gain_n,
            "leverage_retained": gain_n / gain_1,
        }
        rows.append(
            [
                name.upper(),
                f"{t[(1, f0)]:.0f}s",
                f"{s_parallel:.2f}",
                f"{s_combined:.2f}",
                f"{gain_1:.2f}",
                f"{gain_n:.2f}",
                f"{gain_n / gain_1:.0%}",
            ]
        )
    rows.sort(key=lambda r: -float(r[3]))
    return {"rows": rows, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    n_max = int(ctx.param("n_max", 16))
    problem_class = ctx.param("problem_class", "A")
    text = "\n\n".join(
        [
            format_rows(
                [
                    "code",
                    "T(1,600)",
                    f"S({n_max},600)",
                    f"S({n_max},1400)",
                    "f-gain @1",
                    f"f-gain @{n_max}",
                    "leverage kept",
                ],
                ctx.state["analyze"]["rows"],
                title=(
                    f"NPB suite, class {problem_class}, on the "
                    f"{n_max}-node power-aware cluster"
                ),
            ),
            "Reading guide: 'leverage kept' is the fraction of the "
            "sequential frequency gain still available at scale — the "
            "paper's interdependence in one number.  EP keeps ~100%; "
            "the communication-bound codes keep the least, which is "
            "exactly where communication-phase DVFS pays instead.",
        ]
    )
    return ExperimentResult(
        "suite_overview",
        TITLE,
        text,
        {"suite": ctx.state["analyze"]["data"]},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="suite_overview",
        title=TITLE,
        description="Corner-grid sweep of every benchmark model at class A",
        requires=_requires,
        stages=(
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
