"""Model-guided DVS decisions — closing the paper's motivating loop.

The paper's pitch (§1): energy savings were being achieved "using a
priori knowledge of application performance" (profiling); an accurate
prediction model would let a scheduler make those decisions *without*
profiling every configuration.

This experiment plays that scenario out end to end:

1. fit the SP model from its cheap measurement subset
   (base-frequency column + sequential row: 9 runs instead of 25);
2. for every (N, f-pair) configuration, *predict* the energy saved by
   throttling the overhead portion of the run to the base frequency:
   the model supplies the overhead share ``T_PO/T`` and the energy
   model prices both alternatives;
3. let the predictions pick the configuration where scheduling pays
   most;
4. validate: run the actual profile-driven scheduler there and compare
   predicted vs achieved savings.

The experiment reports the decision table and the prediction error on
the chosen cell — the "identification of sweet spots in system
configurations" the abstract promises, applied to scheduling.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import paper_spec
from repro.core.energy import EnergyModel
from repro.core.params_sp import SimplifiedParameterization
from repro.experiments.platform import (
    PAPER_COUNTS,
    PAPER_FREQUENCIES,
    measure_campaign,
)
from repro.experiments.registry import ExperimentResult, register
from repro.npb import BENCHMARKS, ProblemClass
from repro.proftools.profiler import profile_benchmark
from repro.reporting.tables import format_rows
from repro.sched import CommBoundPolicy, evaluate_policy

__all__ = ["run", "predict_schedule_savings"]


def predict_schedule_savings(
    sp: SimplifiedParameterization,
    energy_model: EnergyModel,
    n: int,
    high_hz: float,
    low_hz: float,
) -> dict[str, float]:
    """Model-predicted effect of throttling overhead to ``low_hz``.

    Baseline: the whole run at ``high_hz``; busy share at COMPUTE
    power, overhead share at the overhead blend.  Scheduled: the same
    time split, with the overhead share priced at ``low_hz`` (the
    overhead itself is frequency-insensitive under Assumption 2, so
    its *duration* is unchanged — only its power drops).
    """
    total = sp.predict_time(n, high_hz)
    overhead = min(max(sp.overhead(n), 0.0), total)
    busy = total - overhead
    base_energy = n * (
        energy_model.busy_power_w(high_hz) * busy
        + energy_model.overhead_power_w(high_hz) * overhead
    )
    sched_energy = n * (
        energy_model.busy_power_w(high_hz) * busy
        + energy_model.overhead_power_w(low_hz) * overhead
    )
    return {
        "predicted_time_s": total,
        "overhead_share": overhead / total if total > 0 else 0.0,
        "predicted_savings": 1.0 - sched_energy / base_energy,
    }


@register(
    "predictive_scheduling",
    "Motivation closed: the model decides where DVS scheduling pays",
    "SP-predicted throttling benefit per config, validated by real runs",
)
def run(
    benchmark: str = "ft",
    problem_class: str = "A",
    counts: _t.Sequence[int] = (2, 4, 8, 16),
) -> ExperimentResult:
    """Predict scheduling benefit from the SP fit; validate the pick."""
    spec = paper_spec()
    ops = spec.cpu.operating_points
    high, low = ops.peak.frequency_hz, ops.base.frequency_hz
    bench = BENCHMARKS[benchmark](ProblemClass.parse(problem_class))

    campaign = measure_campaign(bench, PAPER_COUNTS, PAPER_FREQUENCIES)
    sp = SimplifiedParameterization(campaign)
    energy_model = EnergyModel(spec.power, ops)

    predictions = {
        n: predict_schedule_savings(sp, energy_model, n, high, low)
        for n in counts
    }
    rows = [
        [
            n,
            f"{p['overhead_share']:.0%}",
            f"{p['predicted_savings']:.1%}",
        ]
        for n, p in predictions.items()
    ]

    # The model's pick: largest predicted savings.
    best_n = max(counts, key=lambda n: predictions[n]["predicted_savings"])

    # Validate with a real scheduled run at the picked configuration.
    profile = profile_benchmark(bench, best_n, frequency_hz=high)
    policy = CommBoundPolicy(profile, ops)
    actual = evaluate_policy(bench, best_n, policy)
    predicted = predictions[best_n]["predicted_savings"]
    error = abs(predicted - actual.energy_savings)

    text = "\n\n".join(
        [
            format_rows(
                ["N", "predicted overhead share", "predicted energy savings"],
                rows,
                title=(
                    f"Model-predicted benefit of throttling "
                    f"{benchmark.upper()}'s overhead to "
                    f"{low / 1e6:.0f} MHz (no profiling runs used)"
                ),
            ),
            f"model's pick: N={best_n} "
            f"(predicted {predicted:.1%} savings)\n"
            f"validation run: achieved {actual.energy_savings:.1%} savings "
            f"at {actual.slowdown:.2%} slowdown\n"
            f"prediction error on savings: {error:.1%} absolute",
        ]
    )
    data = {
        "predictions": predictions,
        "best_n": best_n,
        "predicted_savings": predicted,
        "achieved_savings": actual.energy_savings,
        "achieved_slowdown": actual.slowdown,
        "absolute_error": error,
    }
    return ExperimentResult(
        "predictive_scheduling",
        "Motivation closed: the model decides where DVS scheduling pays",
        text,
        data,
    )
