"""Model-guided DVS decisions — closing the paper's motivating loop.

The paper's pitch (§1): energy savings were being achieved "using a
priori knowledge of application performance" (profiling); an accurate
prediction model would let a scheduler make those decisions *without*
profiling every configuration.

This experiment plays that scenario out end to end:

1. fit the SP model from its cheap measurement subset
   (base-frequency column + sequential row: 9 runs instead of 25);
2. for every (N, f-pair) configuration, *predict* the energy saved by
   throttling the overhead portion of the run to the base frequency:
   the model supplies the overhead share ``T_PO/T`` and the energy
   model prices both alternatives;
3. let the predictions pick the configuration where scheduling pays
   most;
4. validate: run the actual profile-driven scheduler there and compare
   predicted vs achieved savings.

The experiment reports the decision table and the prediction error on
the chosen cell — the "identification of sweet spots in system
configurations" the abstract promises, applied to scheduling.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import paper_spec
from repro.core.energy import EnergyModel
from repro.core.params_sp import SimplifiedParameterization
from repro.experiments.platform import PAPER_COUNTS, PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.npb import BENCHMARKS, ProblemClass
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.proftools.profiler import profile_benchmark
from repro.reporting.tables import format_rows
from repro.sched import CommBoundPolicy, evaluate_policy

__all__ = ["SPEC", "predict_schedule_savings"]

TITLE = "Motivation closed: the model decides where DVS scheduling pays"


def predict_schedule_savings(
    sp: SimplifiedParameterization,
    energy_model: EnergyModel,
    n: int,
    high_hz: float,
    low_hz: float,
) -> dict[str, float]:
    """Model-predicted effect of throttling overhead to ``low_hz``.

    Baseline: the whole run at ``high_hz``; busy share at COMPUTE
    power, overhead share at the overhead blend.  Scheduled: the same
    time split, with the overhead share priced at ``low_hz`` (the
    overhead itself is frequency-insensitive under Assumption 2, so
    its *duration* is unchanged — only its power drops).
    """
    total = sp.predict_time(n, high_hz)
    overhead = min(max(sp.overhead(n), 0.0), total)
    busy = total - overhead
    base_energy = n * (
        energy_model.busy_power_w(high_hz) * busy
        + energy_model.overhead_power_w(high_hz) * overhead
    )
    sched_energy = n * (
        energy_model.busy_power_w(high_hz) * busy
        + energy_model.overhead_power_w(low_hz) * overhead
    )
    return {
        "predicted_time_s": total,
        "overhead_share": overhead / total if total > 0 else 0.0,
        "predicted_savings": 1.0 - sched_energy / base_energy,
    }


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            params.get("benchmark") or "ft",
            params.get("problem_class") or "A",
            PAPER_COUNTS,
            PAPER_FREQUENCIES,
        ),
    )


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    spec = paper_spec()
    ops = spec.cpu.operating_points
    sp = SimplifiedParameterization(ctx.campaign(0))
    return {
        "ops": ops,
        "sp": sp,
        "energy_model": EnergyModel(spec.power, ops),
    }


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    fit = ctx.state["fit"]
    ops = fit["ops"]
    high, low = ops.peak.frequency_hz, ops.base.frequency_hz
    benchmark = ctx.param("benchmark", "ft")
    counts = tuple(ctx.param("counts", (2, 4, 8, 16)))
    bench = BENCHMARKS[benchmark](
        ProblemClass.parse(ctx.param("problem_class", "A"))
    )

    predictions = {
        n: predict_schedule_savings(
            fit["sp"], fit["energy_model"], n, high, low
        )
        for n in counts
    }

    # The model's pick: largest predicted savings.
    best_n = max(counts, key=lambda n: predictions[n]["predicted_savings"])

    # Validate with a real scheduled run at the picked configuration.
    profile = profile_benchmark(bench, best_n, frequency_hz=high)
    policy = CommBoundPolicy(profile, ops)
    actual = evaluate_policy(bench, best_n, policy)
    predicted = predictions[best_n]["predicted_savings"]
    return {
        "benchmark": benchmark,
        "low": low,
        "predictions": predictions,
        "best_n": best_n,
        "predicted": predicted,
        "actual": actual,
        "error": abs(predicted - actual.energy_savings),
    }


def _render(ctx: StageContext) -> ExperimentResult:
    analysis = ctx.state["analyze"]
    predictions = analysis["predictions"]
    actual = analysis["actual"]
    predicted = analysis["predicted"]
    rows = [
        [
            n,
            f"{p['overhead_share']:.0%}",
            f"{p['predicted_savings']:.1%}",
        ]
        for n, p in predictions.items()
    ]
    text = "\n\n".join(
        [
            format_rows(
                ["N", "predicted overhead share", "predicted energy savings"],
                rows,
                title=(
                    f"Model-predicted benefit of throttling "
                    f"{analysis['benchmark'].upper()}'s overhead to "
                    f"{analysis['low'] / 1e6:.0f} MHz (no profiling runs used)"
                ),
            ),
            f"model's pick: N={analysis['best_n']} "
            f"(predicted {predicted:.1%} savings)\n"
            f"validation run: achieved {actual.energy_savings:.1%} savings "
            f"at {actual.slowdown:.2%} slowdown\n"
            f"prediction error on savings: {analysis['error']:.1%} absolute",
        ]
    )
    data = {
        "predictions": predictions,
        "best_n": analysis["best_n"],
        "predicted_savings": predicted,
        "achieved_savings": actual.energy_savings,
        "achieved_slowdown": actual.slowdown,
        "absolute_error": analysis["error"],
    }
    return ExperimentResult("predictive_scheduling", TITLE, text, data)


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="predictive_scheduling",
        title=TITLE,
        description="SP-predicted throttling benefit per config, validated by real runs",
        requires=_requires,
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
