"""Table 5 — LU workload measurement and decomposition.

The fine-grain parameterization's step 1: read the five PAPI events on
a sequential LU run (multiple runs, two events at a time — the PMU
width limit) and derive the per-memory-level instruction split.  The
paper's class-A numbers: 145 / 175 / 4.71 / 3.97 billion instructions
(CPU/register, L1, L2, memory) — 98.8 % ON-chip.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.counters import HardwareCounters
from repro.experiments.registry import ExperimentResult, register_spec
from repro.npb import LUBenchmark, ProblemClass
from repro.pipeline import ExperimentSpec, Stage, StageContext
from repro.proftools.papi import counter_campaign
from repro.reporting.tables import format_rows

__all__ = ["SPEC"]

TITLE = "Table 5: LU workload measurement and decomposition"


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    lu = LUBenchmark(ProblemClass.parse(ctx.param("problem_class", "A")))
    counters = counter_campaign(lu)
    hc = HardwareCounters()
    for event, value in counters.items():
        hc._events[event] = value
    return {"counters": counters, "mix": hc.derive_mix()}


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    counters = ctx.state["fit"]["counters"]
    mix = ctx.state["fit"]["mix"]
    rows = [
        (
            "ON-chip",
            "CPU/Register",
            "PAPI_TOT_INS - PAPI_L1_DCA",
            f"{mix.cpu / 1e9:.2f}",
        ),
        (
            "ON-chip",
            "L1 Cache",
            "PAPI_L1_DCA - PAPI_L1_DCM",
            f"{mix.l1 / 1e9:.2f}",
        ),
        (
            "ON-chip",
            "L2 Cache",
            "PAPI_L2_TCA - PAPI_L2_TCM",
            f"{mix.l2 / 1e9:.2f}",
        ),
        (
            "OFF-chip",
            "Main Memory",
            "PAPI_L2_TCM",
            f"{mix.mem / 1e9:.2f}",
        ),
    ]
    weights = mix.on_chip_weights()
    data = {
        "counters": counters,
        "mix": mix.as_dict(),
        "on_chip_fraction": mix.on_chip_fraction,
        "on_chip_weights": weights,
    }
    return {"rows": rows, "weights": weights, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    mix = ctx.state["fit"]["mix"]
    rows = ctx.state["analyze"]["rows"]
    weights = ctx.state["analyze"]["weights"]
    text = "\n\n".join(
        [
            format_rows(
                ["Workload", "Memory level", "Derivation", "#ins (x10^9)"],
                rows,
                title="Table 5: LU workload measurement and decomposition",
            ),
            f"ON-chip fraction: {mix.on_chip_fraction:.1%}  (paper: 98.8%)\n"
            f"ON-chip weights: CPU/Register {weights['cpu']:.2%}, "
            f"L1 {weights['l1']:.2%}, L2 {weights['l2']:.2%}"
            f"  (paper: 44.66% / 53.89% / 1.45%)",
        ]
    )
    return ExperimentResult(
        "table5", TITLE, text, ctx.state["analyze"]["data"]
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="table5",
        title=TITLE,
        description="PAPI counter campaign on sequential LU + Table 5 derivation",
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
