"""Table 1 — generalized Amdahl's law mispredicts FT.

The paper's motivating example: predict FT's combined (N, f) speedup
as the product of the two measured single-enhancement speedups
(Eq. 3 with e = 2) and tabulate the relative error against the
measured speedup.  The published table shows 0 % in the 600 MHz base
column and errors growing into the tens of percent with frequency —
up to 78 %, 45 % on average over the non-base cells — because the two
enhancements are interdependent through parallel overhead.
"""

from __future__ import annotations

import typing as _t

from repro.core.amdahl import product_of_speedups_prediction
from repro.core.analysis import ErrorTable
from repro.core.speedup import measured_speedup_table
from repro.experiments.platform import PAPER_COUNTS, PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_error_table

__all__ = ["SPEC"]

TITLE = "Table 1: generalized-Amdahl speedup prediction errors for FT"


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            "ft",
            params.get("problem_class") or "A",
            tuple(params.get("counts") or PAPER_COUNTS),
            tuple(params.get("frequencies") or PAPER_FREQUENCIES),
        ),
    )


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    measured = measured_speedup_table(
        campaign.times, campaign.base_frequency_hz
    )
    predicted = product_of_speedups_prediction(
        campaign.times, campaign.base_frequency_hz
    )
    return {"measured": measured, "predicted": predicted}


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    measured = ctx.state["fit"]["measured"]
    predicted = ctx.state["fit"]["predicted"]
    # The paper tabulates N >= 2 only (N = 1 is the baseline row).
    keys = [k for k in predicted if k[0] > 1]
    table = ErrorTable(
        {k: abs(predicted[k] - measured[k]) / measured[k] for k in keys},
        label="Table 1 (Eq. 3 errors, FT)",
    )
    off_base = [
        e
        for (n, f), e in table.cells().items()
        if f != campaign.base_frequency_hz
    ]
    data = {
        "errors": table.cells(),
        "measured_speedups": measured,
        "predicted_speedups": predicted,
        "max_error": table.max_error,
        "mean_error_off_base": sum(off_base) / len(off_base),
    }
    return {"table": table, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    table = ctx.state["analyze"]["table"]
    data = ctx.state["analyze"]["data"]
    text = format_error_table(table) + (
        f"\nmean off-base-column error: {data['mean_error_off_base']:.1%}"
        f"  (paper: up to 78%, 45% average)"
    )
    return ExperimentResult("table1", TITLE, text, data)


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="table1",
        title=TITLE,
        description=(
            "Product-of-speedups (Eq. 3) predictions vs measured FT "
            "speedups"
        ),
        requires=_requires,
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
