"""Extrapolation to a larger cluster — the paper's footnote-3 wish.

"Admittedly, it would be nice to confirm this result on a larger
power-aware cluster.  However, ours is one of only a few power-aware
clusters in the US and there are few (if any) larger than 16 or 32
nodes."  (Paper, footnote 3.)

Our platform is simulated, so we *can* build the larger machine.  This
experiment:

1. fits the FP parameterization to LU using only measurements
   obtainable on small configurations (sequential counters,
   microbenchmarks, a 2-node message probe);
2. predicts execution times at 16 and 32 nodes — configurations whose
   parallel runs were never used in the fit;
3. simulates real 16- and 32-node jobs and scores the predictions.

It also tests the paper's §4.3 empirical claim that FT's speedup
"does not change significantly from 16 to 32 nodes".
"""

from __future__ import annotations

from repro.core.prediction import Predictor
from repro.experiments.platform import PAPER_FREQUENCIES, measure_campaign
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.table7 import fit_lu_fp
from repro.npb import FTBenchmark, LUBenchmark, ProblemClass
from repro.reporting.tables import format_error_table, format_rows

__all__ = ["run"]

#: The configurations the fit never sees as parallel measurements.
EXTRAPOLATED_COUNTS = (16, 32)


@register(
    "extrapolation",
    "Footnote 3: predict the larger cluster the authors could not build",
    "FP fitted on small-config measurements, validated at 16/32 nodes",
)
def run(problem_class: str = "A") -> ExperimentResult:
    """Extrapolate LU to 16/32 nodes; check FT's 16→32 flattening."""
    # -- LU: FP extrapolation ------------------------------------------------
    lu = LUBenchmark(ProblemClass.parse(problem_class))
    fp = fit_lu_fp(lu)  # sequential counters + probes only
    fp_dop = fit_lu_fp(lu, workload=lu.workload(max_dop=1 << 20))

    # The sequential baseline is measurable on any machine; only the
    # 16/32-node *parallel* cells are extrapolated.
    campaign = measure_campaign(
        lu, (1,) + EXTRAPOLATED_COUNTS, PAPER_FREQUENCIES
    )
    table = Predictor(campaign, fp).speedup_error_table(
        label="LU extrapolation errors (FP)"
    )
    table_dop = Predictor(campaign, fp_dop).speedup_error_table(
        label="LU extrapolation errors (FP + DOP)"
    )

    # -- FT: the 16 -> 32 flattening claim --------------------------------------
    ft = FTBenchmark(ProblemClass.parse(problem_class))
    f0 = min(PAPER_FREQUENCIES)
    ft_times = measure_campaign(ft, (1, 16, 32), (f0,))
    s16 = ft_times.time(1, f0) / ft_times.time(16, f0)
    s32 = ft_times.time(1, f0) / ft_times.time(32, f0)
    rel_change = (s32 - s16) / s16

    text = "\n\n".join(
        [
            format_error_table(
                table,
                title="LU at 16/32 nodes: FP (Assumption 1) predictions vs "
                "simulated measurements (no parallel runs used in the fit)",
            ),
            format_error_table(
                table_dop,
                title="Same, with the DOP-decomposed workload: the pipeline "
                "limit is modelled and extrapolation holds up at scale",
            ),
            format_rows(
                ["config", "speedup @ 600 MHz"],
                [["16 nodes", f"{s16:.2f}"], ["32 nodes", f"{s32:.2f}"]],
                title="FT speedup, 16 vs 32 nodes",
            ),
            f"FT speedup changes {rel_change:+.1%} from 16 to 32 nodes — "
            "sub-linear (ideal doubling would be +100%) but not the full "
            "saturation the authors observed on the Argus prototype [10]; "
            "our TCP-congestion surrogate keeps a modest gain beyond 16 "
            "nodes (documented in EXPERIMENTS.md).",
        ]
    )
    data = {
        "lu_errors": table.cells(),
        "lu_max_error": table.max_error,
        "lu_dop_errors": table_dop.cells(),
        "lu_dop_max_error": table_dop.max_error,
        "ft_speedup_16": s16,
        "ft_speedup_32": s32,
        "ft_relative_change": rel_change,
    }
    return ExperimentResult(
        "extrapolation",
        "Footnote 3: predict the larger cluster the authors could not build",
        text,
        data,
    )
