"""Extrapolation to a larger cluster — the paper's footnote-3 wish.

"Admittedly, it would be nice to confirm this result on a larger
power-aware cluster.  However, ours is one of only a few power-aware
clusters in the US and there are few (if any) larger than 16 or 32
nodes."  (Paper, footnote 3.)

Our platform is simulated, so we *can* build the larger machine.  This
experiment:

1. fits the FP parameterization to LU using only measurements
   obtainable on small configurations (sequential counters,
   microbenchmarks, a 2-node message probe);
2. predicts execution times at 16 and 32 nodes — configurations whose
   parallel runs were never used in the fit;
3. simulates real 16- and 32-node jobs and scores the predictions.

It also tests the paper's §4.3 empirical claim that FT's speedup
"does not change significantly from 16 to 32 nodes".
"""

from __future__ import annotations

import typing as _t

from repro.core.prediction import Predictor
from repro.experiments.platform import PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.experiments.table7 import fit_lu_fp
from repro.npb import LUBenchmark, ProblemClass
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_error_table, format_rows

__all__ = ["SPEC", "EXTRAPOLATED_COUNTS"]

TITLE = "Footnote 3: predict the larger cluster the authors could not build"

#: The configurations the fit never sees as parallel measurements.
EXTRAPOLATED_COUNTS = (16, 32)


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    problem_class = params.get("problem_class") or "A"
    return (
        # The sequential baseline is measurable on any machine; only
        # the 16/32-node *parallel* cells are extrapolated.
        CampaignRequest(
            "lu",
            problem_class,
            (1,) + EXTRAPOLATED_COUNTS,
            PAPER_FREQUENCIES,
        ),
        CampaignRequest(
            "ft", problem_class, (1, 16, 32), (min(PAPER_FREQUENCIES),)
        ),
    )


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    # -- LU: FP extrapolation, small-config measurements only -----------
    lu = LUBenchmark(ProblemClass.parse(ctx.param("problem_class", "A")))
    fp = fit_lu_fp(lu)  # sequential counters + probes only
    fp_dop = fit_lu_fp(lu, workload=lu.workload(max_dop=1 << 20))
    campaign = ctx.campaign(0)
    return {
        "table": Predictor(campaign, fp).speedup_error_table(
            label="LU extrapolation errors (FP)"
        ),
        "table_dop": Predictor(campaign, fp_dop).speedup_error_table(
            label="LU extrapolation errors (FP + DOP)"
        ),
    }


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    # -- FT: the 16 -> 32 flattening claim -------------------------------
    table = ctx.state["fit"]["table"]
    table_dop = ctx.state["fit"]["table_dop"]
    f0 = min(PAPER_FREQUENCIES)
    ft_times = ctx.campaign(1)
    s16 = ft_times.time(1, f0) / ft_times.time(16, f0)
    s32 = ft_times.time(1, f0) / ft_times.time(32, f0)
    rel_change = (s32 - s16) / s16
    data = {
        "lu_errors": table.cells(),
        "lu_max_error": table.max_error,
        "lu_dop_errors": table_dop.cells(),
        "lu_dop_max_error": table_dop.max_error,
        "ft_speedup_16": s16,
        "ft_speedup_32": s32,
        "ft_relative_change": rel_change,
    }
    return {"s16": s16, "s32": s32, "rel_change": rel_change, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    table = ctx.state["fit"]["table"]
    table_dop = ctx.state["fit"]["table_dop"]
    analysis = ctx.state["analyze"]
    s16, s32 = analysis["s16"], analysis["s32"]
    text = "\n\n".join(
        [
            format_error_table(
                table,
                title="LU at 16/32 nodes: FP (Assumption 1) predictions vs "
                "simulated measurements (no parallel runs used in the fit)",
            ),
            format_error_table(
                table_dop,
                title="Same, with the DOP-decomposed workload: the pipeline "
                "limit is modelled and extrapolation holds up at scale",
            ),
            format_rows(
                ["config", "speedup @ 600 MHz"],
                [["16 nodes", f"{s16:.2f}"], ["32 nodes", f"{s32:.2f}"]],
                title="FT speedup, 16 vs 32 nodes",
            ),
            f"FT speedup changes {analysis['rel_change']:+.1%} from 16 to "
            "32 nodes — "
            "sub-linear (ideal doubling would be +100%) but not the full "
            "saturation the authors observed on the Argus prototype [10]; "
            "our TCP-congestion surrogate keeps a modest gain beyond 16 "
            "nodes (documented in EXPERIMENTS.md).",
        ]
    )
    return ExperimentResult("extrapolation", TITLE, text, analysis["data"])


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="extrapolation",
        title=TITLE,
        description="FP fitted on small-config measurements, validated at 16/32 nodes",
        requires=_requires,
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
