"""Table 6 — seconds per instruction and per message.

The fine-grain parameterization's step 2, both halves:

* LMBENCH-style probes give seconds/instruction per memory level per
  frequency.  Expected shape: ON-chip rows fall as 1/f (constant
  ``CPI_ON``); the memory row is flat except for the bus-downshift
  rise at the two lowest frequencies (140 ns vs 110 ns).
* MPPTEST-style probes give per-message times for LU's two message
  sizes (310 doubles at 2 nodes, 155 at 4).  Expected shape: the small
  message is frequency-insensitive; the large one is slower at
  600 MHz.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.workmix import InstructionMix
from repro.core.cpi import WorkloadRates
from repro.experiments.platform import PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.npb import LUBenchmark, ProblemClass
from repro.pipeline import ExperimentSpec, Stage, StageContext
from repro.proftools.lmbench import LevelLatencyProbe
from repro.proftools.mpptest import MppTest
from repro.reporting.tables import format_rows
from repro.units import doubles

__all__ = ["SPEC"]

TITLE = "Table 6: seconds per instruction (CPI/f) and per message"

_SIZES = {
    "155 doubles": doubles(155),
    "310 doubles": doubles(310),
}


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    freqs = list(PAPER_FREQUENCIES)
    # -- upper half: per-level latencies and the weighted CPI_ON ---------
    probe = LevelLatencyProbe()
    level_table = probe.measure(freqs)
    lu = LUBenchmark(ProblemClass.parse(ctx.param("problem_class", "A")))
    mix: InstructionMix = lu.total_mix()
    rates = WorkloadRates.from_level_latencies(mix, level_table)
    # -- lower half: per-message times for LU's two sizes -----------------
    mpp = MppTest()
    message_table = mpp.measure(
        list(_SIZES.values()),
        freqs,
        repetitions=int(ctx.param("repetitions", 10)),
    )
    return {
        "freqs": freqs,
        "level_table": level_table,
        "rates": rates,
        "message_table": message_table,
    }


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    fit = ctx.state["fit"]
    freqs, rates = fit["freqs"], fit["rates"]
    on_chip_row = [
        f"{rates.on_chip_seconds_per_instruction(f) * 1e9:.2f}"
        for f in freqs
    ]
    off_chip_row = [
        f"{rates.off_chip_seconds_per_instruction(f) * 1e9:.0f}"
        for f in freqs
    ]
    message_rows = [
        [label]
        + [
            f"{fit['message_table'].time(nbytes, f) * 1e6:.0f}"
            for f in freqs
        ]
        for label, nbytes in _SIZES.items()
    ]
    data = {
        "cpi_on": rates.cpi_on,
        "level_latencies": {
            f: dict(levels) for f, levels in fit["level_table"].items()
        },
        "message_times": fit["message_table"].as_dict(),
    }
    return {
        "on_chip_row": on_chip_row,
        "off_chip_row": off_chip_row,
        "message_rows": message_rows,
        "data": data,
    }


def _render(ctx: StageContext) -> ExperimentResult:
    fit = ctx.state["fit"]
    analysis = ctx.state["analyze"]
    freqs, rates = fit["freqs"], fit["rates"]
    mhz_labels = [f"{f / 1e6:.0f}MHz" for f in freqs]
    text = "\n\n".join(
        [
            format_rows(
                ["quantity"] + mhz_labels,
                [
                    [f"CPI_ON (cycles, weighted)"]
                    + [f"{rates.cpi_on:.2f}"] * len(freqs),
                    ["CPI_ON/f_ON (ns/ins)"] + analysis["on_chip_row"],
                    ["CPI_OFF/f_OFF (ns/ins)"] + analysis["off_chip_row"],
                ],
                title="Table 6 (upper): seconds per instruction",
            ),
            format_rows(
                ["message"] + mhz_labels,
                analysis["message_rows"],
                title="Table 6 (lower): per-message time (microseconds)",
            ),
            f"weighted CPI_ON = {rates.cpi_on:.2f}  (paper: 2.19)",
        ]
    )
    return ExperimentResult("table6", TITLE, text, analysis["data"])


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="table6",
        title=TITLE,
        description="LMBENCH-style level latencies + MPPTEST-style message times",
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
