"""Table 6 — seconds per instruction and per message.

The fine-grain parameterization's step 2, both halves:

* LMBENCH-style probes give seconds/instruction per memory level per
  frequency.  Expected shape: ON-chip rows fall as 1/f (constant
  ``CPI_ON``); the memory row is flat except for the bus-downshift
  rise at the two lowest frequencies (140 ns vs 110 ns).
* MPPTEST-style probes give per-message times for LU's two message
  sizes (310 doubles at 2 nodes, 155 at 4).  Expected shape: the small
  message is frequency-insensitive; the large one is slower at
  600 MHz.
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.cpi import WorkloadRates
from repro.experiments.platform import PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register
from repro.npb import LUBenchmark, ProblemClass
from repro.proftools.lmbench import LevelLatencyProbe
from repro.proftools.mpptest import MppTest
from repro.reporting.tables import format_rows
from repro.units import doubles

__all__ = ["run"]


@register(
    "table6",
    "Table 6: seconds per instruction (CPI/f) and per message",
    "LMBENCH-style level latencies + MPPTEST-style message times",
)
def run(problem_class: str = "A", repetitions: int = 10) -> ExperimentResult:
    """Reproduce Table 6."""
    freqs = list(PAPER_FREQUENCIES)
    mhz_labels = [f"{f / 1e6:.0f}MHz" for f in freqs]

    # -- upper half: per-level latencies and the weighted CPI_ON ---------
    probe = LevelLatencyProbe()
    level_table = probe.measure(freqs)
    lu = LUBenchmark(ProblemClass.parse(problem_class))
    mix: InstructionMix = lu.total_mix()
    rates = WorkloadRates.from_level_latencies(mix, level_table)

    on_chip_row = [
        f"{rates.on_chip_seconds_per_instruction(f) * 1e9:.2f}"
        for f in freqs
    ]
    off_chip_row = [
        f"{rates.off_chip_seconds_per_instruction(f) * 1e9:.0f}"
        for f in freqs
    ]

    # -- lower half: per-message times for LU's two sizes -----------------
    sizes = {
        "155 doubles": doubles(155),
        "310 doubles": doubles(310),
    }
    mpp = MppTest()
    message_table = mpp.measure(
        list(sizes.values()), freqs, repetitions=repetitions
    )
    message_rows = [
        [label]
        + [
            f"{message_table.time(nbytes, f) * 1e6:.0f}"
            for f in freqs
        ]
        for label, nbytes in sizes.items()
    ]

    text = "\n\n".join(
        [
            format_rows(
                ["quantity"] + mhz_labels,
                [
                    [f"CPI_ON (cycles, weighted)"]
                    + [f"{rates.cpi_on:.2f}"] * len(freqs),
                    ["CPI_ON/f_ON (ns/ins)"] + on_chip_row,
                    ["CPI_OFF/f_OFF (ns/ins)"] + off_chip_row,
                ],
                title="Table 6 (upper): seconds per instruction",
            ),
            format_rows(
                ["message"] + mhz_labels,
                message_rows,
                title="Table 6 (lower): per-message time (microseconds)",
            ),
            f"weighted CPI_ON = {rates.cpi_on:.2f}  (paper: 2.19)",
        ]
    )
    data = {
        "cpi_on": rates.cpi_on,
        "level_latencies": {
            f: dict(levels) for f, levels in level_table.items()
        },
        "message_times": message_table.as_dict(),
    }
    return ExperimentResult(
        "table6",
        "Table 6: seconds per instruction (CPI/f) and per message",
        text,
        data,
    )
