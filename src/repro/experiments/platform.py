"""The paper's measurement grid and campaign runner.

The experiments all share one measurement protocol: run a benchmark at
every (processor count, frequency) combination on the simulated
platform, recording execution time and energy.  This module provides
the paper's grid constants and a cached campaign runner — simulation is
deterministic, so re-measuring the same (benchmark, grid) is wasted
work within a process.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import Cluster, paper_spec
from repro.core.measurements import TimingCampaign
from repro.npb.base import BenchmarkModel
from repro.units import mhz

__all__ = [
    "PAPER_COUNTS",
    "PAPER_FREQUENCIES",
    "measure_campaign",
    "clear_campaign_cache",
]

#: The processor counts of the paper's tables (powers of two to 16).
PAPER_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16)

#: The five SpeedStep frequencies of Table 2, in hertz.
PAPER_FREQUENCIES: tuple[float, ...] = tuple(
    mhz(m) for m in (600, 800, 1000, 1200, 1400)
)

_CACHE: dict[tuple, TimingCampaign] = {}


def _cache_key(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int],
    frequencies: _t.Sequence[float],
) -> tuple:
    return (
        benchmark.name,
        benchmark.problem_class.value,
        tuple(counts),
        tuple(frequencies),
    )


def measure_campaign(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int] = PAPER_COUNTS,
    frequencies: _t.Sequence[float] = PAPER_FREQUENCIES,
    use_cache: bool = True,
    spec=None,
) -> TimingCampaign:
    """Measure a benchmark over a (counts × frequencies) grid.

    Each cell is one fresh simulated job: a cluster of exactly ``n``
    nodes pinned at frequency ``f`` running the benchmark to
    completion.  Returns a :class:`~repro.core.measurements.
    TimingCampaign` with both times and energies.

    ``spec`` overrides the platform (ablations measure on modified
    hardware); custom-spec campaigns bypass the cache.
    """
    if spec is not None:
        use_cache = False
    key = _cache_key(benchmark, counts, frequencies)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    times: dict[tuple[int, float], float] = {}
    energies: dict[tuple[int, float], float] = {}
    for n in counts:
        for f in frequencies:
            node_spec = (
                spec.with_nodes(n) if spec is not None else paper_spec(n)
            )
            cluster = Cluster(node_spec, frequency_hz=f)
            result = benchmark.run(cluster)
            times[(n, f)] = result.elapsed_s
            energies[(n, f)] = result.energy_j
    campaign = TimingCampaign(
        times=times,
        base_frequency_hz=min(frequencies),
        energies=energies,
        label=f"{benchmark.name}.{benchmark.problem_class.value}",
    )
    if use_cache:
        _CACHE[key] = campaign
    return campaign


def clear_campaign_cache() -> None:
    """Drop all cached campaigns (tests use this for isolation)."""
    _CACHE.clear()
