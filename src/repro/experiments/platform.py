"""The paper's measurement grid and campaign runner.

The experiments all share one measurement protocol: run a benchmark at
every (processor count, frequency) combination on the simulated
platform, recording execution time and energy.  This module provides
the paper's grid constants and a cached campaign runner — simulation
is deterministic, so re-measuring the same (benchmark, grid, platform)
is wasted work.

Execution is delegated to :mod:`repro.runtime`: cells fan out across a
process pool when it pays off, and results are cached in two tiers —
a per-process dict plus a content-addressed on-disk cache under
``.repro_cache/`` that survives process restarts.  Campaigns measured
on ``spec``-overridden platforms are cached too (the key includes a
digest of every spec field), so ablations only ever simulate once.
"""

from __future__ import annotations

import time
import typing as _t

from repro import runtime
from repro.cluster.machine import ClusterSpec, paper_spec
from repro.errors import CampaignExecutionError, ConfigurationError
from repro.core.measurements import TimingCampaign
from repro.npb.base import BenchmarkModel
from repro.units import mhz

__all__ = [
    "PAPER_COUNTS",
    "PAPER_FREQUENCIES",
    "measure_campaign",
    "peek_campaign",
    "adopt_campaign",
    "clear_campaign_cache",
]

#: The processor counts of the paper's tables (powers of two to 16).
PAPER_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16)

#: The five SpeedStep frequencies of Table 2, in hertz.
PAPER_FREQUENCIES: tuple[float, ...] = tuple(
    mhz(m) for m in (600, 800, 1000, 1200, 1400)
)

_CACHE: dict[tuple, TimingCampaign] = {}

_DEFAULT_SPEC_DIGEST: str | None = None


def _default_spec_digest() -> str:
    """Digest of the paper platform (memoized — it never changes)."""
    global _DEFAULT_SPEC_DIGEST
    if _DEFAULT_SPEC_DIGEST is None:
        _DEFAULT_SPEC_DIGEST = runtime.spec_digest(paper_spec())
    return _DEFAULT_SPEC_DIGEST


def _resolve_spec(
    spec: ClusterSpec | None, platform: str | None
) -> ClusterSpec | None:
    """Resolve the (spec, platform) pair every entry point accepts.

    An explicit ``spec`` wins (and excludes ``platform``); otherwise
    the named platform resolves through the runtime ladder (explicit →
    :func:`repro.runtime.configure` → ``REPRO_PLATFORM`` → paper).
    The paper platform resolves to ``None`` so its campaigns keep
    their pre-registry cache keys.
    """
    if spec is not None:
        if platform is not None:
            raise ConfigurationError(
                f"pass either spec= or platform={platform!r}, not both"
            )
        return spec
    from repro.platforms import DEFAULT_PLATFORM, get_platform

    name = runtime.resolve_platform(platform)
    if name == DEFAULT_PLATFORM:
        return None
    return get_platform(name)


def _cache_key(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int],
    frequencies: _t.Sequence[float],
    spec: ClusterSpec | None = None,
    backend: str | None = None,
) -> tuple:
    """Campaign identity, including platform and benchmark digests.

    ``spec=None`` (the paper platform) and an explicitly-passed
    ``paper_spec()`` hash identically, so they share cache entries.
    The benchmark digest covers configuration beyond (name, class) —
    e.g. FT's ``decomposition`` option.  The resolved backend is part
    of the identity: analytic and DES results agree only to documented
    tolerances, so their campaigns never share cache entries.
    """
    return (
        benchmark.name,
        benchmark.problem_class.value,
        tuple(int(n) for n in counts),
        tuple(float(f) for f in frequencies),
        (
            runtime.spec_digest(spec)
            if spec is not None
            else _default_spec_digest()
        ),
        runtime.benchmark_digest(benchmark),
        runtime.resolve_backend(backend),
    )


def measure_campaign(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int] = PAPER_COUNTS,
    frequencies: _t.Sequence[float] = PAPER_FREQUENCIES,
    use_cache: bool = True,
    spec: ClusterSpec | None = None,
    *,
    jobs: int | None = None,
    disk_cache: bool | None = None,
    retries: int | None = None,
    cell_timeout: float | None = None,
    allow_partial: bool | None = None,
    backend: str | None = None,
    fabric: bool | None = None,
    platform: str | None = None,
) -> TimingCampaign:
    """Measure a benchmark over a (counts × frequencies) grid.

    Each cell is one fresh simulated job: a cluster of exactly ``n``
    nodes pinned at frequency ``f`` running the benchmark to
    completion.  Returns a :class:`~repro.core.measurements.
    TimingCampaign` with both times and energies.

    ``spec`` overrides the platform (ablations measure on modified
    hardware); such campaigns are cached under a spec-digest key.
    ``jobs`` sets the worker-process count (default: auto — see
    :func:`repro.runtime.resolve_jobs`); parallel runs are
    bit-identical to serial ones.  ``disk_cache`` overrides the
    on-disk tier for this call; ``use_cache=False`` bypasses (and
    does not populate) both tiers.

    Execution is fault tolerant: cells that raise or hang are retried
    (``retries`` extra attempts each, default 2) with exponential
    backoff, ``cell_timeout`` seconds of stall marks running cells
    hung (workers are terminated and the cells re-run), and a worker
    crash re-simulates only the unfinished cells.  When a cell
    exhausts its budget the campaign raises :class:`~repro.errors.
    CampaignExecutionError` — unless ``allow_partial`` is set, in
    which case the surviving cells are returned and a structured
    failure report lands in the campaign's metrics record.  Partial
    campaigns are never written to either cache tier.

    ``backend`` selects the execution path (``"des"``, ``"analytic"``
    or ``"auto"``; ``None`` resolves the configured default).  The
    resolved backend is part of the cache identity, so a DES-measured
    grid is never served for an analytic request or vice versa.

    ``fabric`` offers the DES cells to the distributed worker fleet
    (:mod:`repro.fabric`) when one is installed, falling back to the
    local pool otherwise.  Fabric is *not* part of the cache identity:
    it changes where cells run, never what they compute — fleet
    results are bit-identical to local ones.

    ``platform`` names a registered platform (:mod:`repro.platforms`)
    as an alternative to ``spec``; ``None`` resolves the configured
    default (``REPRO_PLATFORM`` or the paper cluster).
    """
    start = time.perf_counter()
    spec = _resolve_spec(spec, platform)
    key = _cache_key(benchmark, counts, frequencies, spec, backend)
    label = f"{benchmark.name}.{benchmark.problem_class.value}"
    n_cells = len(key[2]) * len(key[3])

    if use_cache and key in _CACHE:
        campaign = _CACHE[key]
        runtime.METRICS.record(
            runtime.CampaignRecord(
                label=label,
                source="memory",
                cells=n_cells,
                wall_s=time.perf_counter() - start,
            )
        )
        return campaign

    store = (
        runtime.disk_cache()
        if use_cache and runtime.disk_cache_enabled(disk_cache)
        else None
    )
    digest = runtime.campaign_digest(*key) if store is not None else ""
    if store is not None:
        campaign = store.get(digest)
        if campaign is not None:
            _CACHE[key] = campaign
            runtime.METRICS.record(
                runtime.CampaignRecord(
                    label=label,
                    source="disk",
                    cells=n_cells,
                    wall_s=time.perf_counter() - start,
                )
            )
            return campaign

    node_spec = spec if spec is not None else paper_spec()
    try:
        execution = runtime.execute_campaign(
            benchmark,
            key[2],
            key[3],
            node_spec,
            jobs=runtime.resolve_jobs(jobs, n_cells),
            retries=runtime.resolve_retries(retries),
            cell_timeout=runtime.resolve_cell_timeout(cell_timeout),
            backoff_s=runtime.resolve_retry_backoff(),
            allow_partial=runtime.resolve_allow_partial(allow_partial),
            backend=key[6],
            fabric=fabric,
        )
    except CampaignExecutionError as error:
        runtime.METRICS.record(
            runtime.CampaignRecord(
                label=label,
                source="failed",
                cells=n_cells,
                wall_s=time.perf_counter() - start,
                failed_cells=len(error.failures),
                failures=tuple(
                    {"cell": list(err.cell), "error": str(err)}
                    for err in error.failures
                ),
            )
        )
        raise
    campaign = TimingCampaign(
        times=execution.times,
        base_frequency_hz=min(key[3]),
        energies=execution.energies,
        label=label,
    )
    if use_cache and not execution.failures:
        _CACHE[key] = campaign
        if store is not None:
            store.put(digest, campaign)
    cell_attempts = execution.cell_attempts()
    runtime.METRICS.record(
        runtime.CampaignRecord(
            label=label,
            source="simulated",
            cells=n_cells,
            wall_s=time.perf_counter() - start,
            jobs=execution.jobs,
            analytic_cells=execution.analytic_cells,
            fabric_cells=execution.fabric_cells,
            fabric_workers=execution.fabric_workers,
            fabric_reassignments=execution.fabric_reassignments,
            cell_wall_s=execution.cell_wall_s,
            attempts=len(execution.attempts),
            retries=execution.retry_count,
            timeouts=execution.timeout_count,
            crash_recoveries=execution.crash_recoveries,
            failed_cells=len(execution.failures),
            cell_attempts=tuple(
                (n, f, count)
                for (n, f), count in cell_attempts.items()
            ),
            failures=tuple(execution.failure_report()),
            events_processed=execution.events_processed,
            processes_spawned=execution.processes_spawned,
            peak_queue_len=execution.peak_queue_len,
        )
    )
    return campaign


def peek_campaign(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int] = PAPER_COUNTS,
    frequencies: _t.Sequence[float] = PAPER_FREQUENCIES,
    spec: ClusterSpec | None = None,
    *,
    disk_cache: bool | None = None,
    record: bool = True,
    backend: str | None = None,
    platform: str | None = None,
) -> TimingCampaign | None:
    """Cache-only campaign lookup — never simulates.

    Checks the per-process tier, then the on-disk tier (promoting a
    disk hit into memory), and returns ``None`` on a full miss.  The
    cross-experiment planner (:mod:`repro.pipeline`) peeks before
    batching so cached campaigns never re-enter the execution union.
    ``record=True`` reports hits to the runtime metrics exactly like
    :func:`measure_campaign`'s cache-hit path.
    """
    start = time.perf_counter()
    spec = _resolve_spec(spec, platform)
    key = _cache_key(benchmark, counts, frequencies, spec, backend)
    label = f"{benchmark.name}.{benchmark.problem_class.value}"
    n_cells = len(key[2]) * len(key[3])
    if key in _CACHE:
        campaign = _CACHE[key]
        if record:
            runtime.METRICS.record(
                runtime.CampaignRecord(
                    label=label,
                    source="memory",
                    cells=n_cells,
                    wall_s=time.perf_counter() - start,
                )
            )
        return campaign
    if runtime.disk_cache_enabled(disk_cache):
        digest = runtime.campaign_digest(*key)
        campaign = runtime.disk_cache().get(digest)
        if campaign is not None:
            _CACHE[key] = campaign
            if record:
                runtime.METRICS.record(
                    runtime.CampaignRecord(
                        label=label,
                        source="disk",
                        cells=n_cells,
                        wall_s=time.perf_counter() - start,
                    )
                )
            return campaign
    return None


def adopt_campaign(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int],
    frequencies: _t.Sequence[float],
    campaign: TimingCampaign,
    spec: ClusterSpec | None = None,
    *,
    disk_cache: bool | None = None,
    backend: str | None = None,
    platform: str | None = None,
) -> None:
    """Insert an externally-assembled campaign into both cache tiers.

    The planner assembles per-experiment campaigns from the shared
    batch's cells; adopting them here keeps the cache tiers exactly
    as warm as if each campaign had gone through
    :func:`measure_campaign`, so later direct calls (and warm-start
    processes) hit instead of re-simulating.  Only complete campaigns
    may be adopted — partial grids would poison the cache.
    """
    spec = _resolve_spec(spec, platform)
    key = _cache_key(benchmark, counts, frequencies, spec, backend)
    expected = len(key[2]) * len(key[3])
    if len(campaign.times) != expected:
        raise ValueError(
            f"refusing to adopt partial campaign {campaign.label!r}: "
            f"{len(campaign.times)} of {expected} cells"
        )
    _CACHE[key] = campaign
    if runtime.disk_cache_enabled(disk_cache):
        runtime.disk_cache().put(runtime.campaign_digest(*key), campaign)


def clear_campaign_cache() -> None:
    """Drop all cached campaigns, memory *and* disk tiers.

    Tests use this for isolation, so it must leave no tier behind.
    The disk tier is only touched when it is enabled or its directory
    already exists — clearing the cache must not *create*
    ``.repro_cache/`` on a machine that has the disk cache switched
    off.
    """
    _CACHE.clear()
    if runtime.disk_cache_enabled(None) or runtime.cache_dir().exists():
        runtime.disk_cache().clear()
