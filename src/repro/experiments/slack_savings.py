"""Slack-reclamation DVFS — the other related-work scheduling family.

The paper's §6 cites Chen et al. and Kappiah et al.: "scaling down the
CPU speed on nodes that are not in the critical path to save energy
without performance penalty".  This experiment reproduces that result
on a statically load-imbalanced iterative workload:

1. run once at peak frequency and measure each rank's idle fraction
   (its slack at the per-iteration synchronization);
2. assign each rank the lowest operating point whose compute inflation
   fits inside its own slack (:meth:`~repro.sched.policies.SlackPolicy.
   from_idle_fractions`);
3. compare energy and time against the static-peak baseline.

Unlike the comm-bound policy (which trades a little time for energy),
slack reclamation should be nearly free: the critical-path rank never
slows down.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import Cluster, paper_spec
from repro.cluster.power import PowerState
from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent
from repro.experiments.registry import ExperimentResult, register_spec
from repro.npb.base import BenchmarkModel
from repro.npb.phases import AllreducePhase, ComputePhase, Phase
from repro.pipeline import ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_rows
from repro.sched import SlackPolicy, evaluate_policy

__all__ = ["ImbalancedStencil", "SPEC"]

TITLE = "Related work: slack reclamation on imbalanced loads (Chen/Kappiah)"


class ImbalancedStencil(BenchmarkModel):
    """An iterative workload with static per-rank load imbalance.

    Rank ``r`` of ``N`` computes ``1 + imbalance · r/(N−1)`` units per
    iteration, then all ranks synchronize on an 8-byte allreduce — the
    archetypal pattern slack reclamation exploits.  (Rank N−1 is the
    critical path; rank 0 has the most slack.)
    """

    name = "imbalanced-stencil"

    ITERATIONS = 40
    BASE_INSTRUCTIONS_PER_RANK_ITER = 2.5e8
    MIX_FRACTIONS = dict(cpu=0.45, l1=0.45, l2=0.08, mem=0.02)

    def __init__(self, problem_class="A", imbalance: float = 0.6) -> None:
        super().__init__(problem_class)
        if imbalance < 0:
            raise ValueError(f"imbalance must be >= 0: {imbalance}")
        self.imbalance = float(imbalance)

    def _unit_mix(self) -> InstructionMix:
        return InstructionMix.from_fractions(
            self.BASE_INSTRUCTIONS_PER_RANK_ITER, **self.MIX_FRACTIONS
        )

    def _rank_factor(self, rank: int, size: int) -> float:
        if size == 1:
            return 1.0
        return 1.0 + self.imbalance * rank / (size - 1)

    def total_mix(self) -> InstructionMix:
        # Averaged over a nominal 16-rank layout for the model side.
        n = 16
        total_units = sum(self._rank_factor(r, n) for r in range(n))
        return self._unit_mix().scaled(self.ITERATIONS * total_units / n)

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        return (DopComponent(max_dop, self.total_mix()),)

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_ranks(n_ranks)
        unit = self._unit_mix()
        phase_list: list[Phase] = []
        for it in range(self.ITERATIONS):
            phase_list.append(
                ComputePhase(
                    f"stencil[{it}]",
                    lambda rank, size, _u=unit: _u.scaled(
                        self._rank_factor(rank, size)
                    ),
                )
            )
            phase_list.append(AllreducePhase(f"sync[{it}]", 8.0))
        return phase_list


def measure_idle_fractions(
    benchmark: BenchmarkModel, n_ranks: int, frequency_hz: float
) -> dict[int, float]:
    """Per-rank idle fraction from one baseline run."""
    cluster = Cluster(paper_spec(n_ranks), frequency_hz=frequency_hz)
    result = benchmark.run(cluster)
    fractions = {}
    for rank in range(n_ranks):
        seconds = cluster.node(rank).energy.seconds_by_state()
        fractions[rank] = (
            seconds[PowerState.IDLE] / result.elapsed_s
            if result.elapsed_s > 0
            else 0.0
        )
    return fractions


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    spec = paper_spec()
    ops = spec.cpu.operating_points
    n_ranks = int(ctx.param("n_ranks", 8))
    imbalance = float(ctx.param("imbalance", 0.6))
    bench = ImbalancedStencil(
        ctx.param("problem_class", "A"), imbalance=imbalance
    )

    idle = measure_idle_fractions(bench, n_ranks, ops.peak.frequency_hz)
    policy = SlackPolicy.from_idle_fractions(
        idle, ops, safety=float(ctx.param("safety", 0.9))
    )
    evaluation = evaluate_policy(bench, n_ranks, policy)
    return {
        "n_ranks": n_ranks,
        "imbalance": imbalance,
        "idle": idle,
        "policy": policy,
        "evaluation": evaluation,
    }


def _render(ctx: StageContext) -> ExperimentResult:
    analysis = ctx.state["analyze"]
    n_ranks = analysis["n_ranks"]
    idle = analysis["idle"]
    policy = analysis["policy"]
    evaluation = analysis["evaluation"]
    rows = [
        [
            rank,
            f"{idle[rank]:.0%}",
            f"{policy.frequency_for_rank(rank, '') / 1e6:.0f}",
        ]
        for rank in range(n_ranks)
    ]
    text = "\n\n".join(
        [
            format_rows(
                ["rank", "idle fraction", "assigned MHz"],
                rows,
                title=(
                    f"Slack reclamation on a {analysis['imbalance']:.0%}"
                    f"-imbalanced "
                    f"{n_ranks}-rank stencil"
                ),
            ),
            f"energy saved: {evaluation.energy_savings:.1%}   "
            f"slowdown: {evaluation.slowdown:.2%}   "
            f"EDP gain: {evaluation.edp_improvement:.1%}",
        ]
    )
    data = {
        "idle_fractions": idle,
        "assigned_mhz": {
            r: policy.frequency_for_rank(r, "") / 1e6 for r in range(n_ranks)
        },
        "energy_savings": evaluation.energy_savings,
        "slowdown": evaluation.slowdown,
        "edp_improvement": evaluation.edp_improvement,
    }
    return ExperimentResult("slack_savings", TITLE, text, data)


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="slack_savings",
        title=TITLE,
        description="Per-rank DVFS sized to measured slack vs static peak",
        stages=(
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
