"""Energy-optimal configuration search as a declarative experiment.

The optimizer's planner-integrated face: the paper-platform grid is
requested through the **DES** exactly like the table experiments
request it (same request digest, so the planner dedups the cells with
``table1``/``edp``/ ``figure1`` in a ``run-all`` batch), while the
alternative platforms' grids go through the analytic backend.  The
analyze stage then picks the energy/EDP-optimal ``(platform, N, f)``
under a named power-cap scenario and confirms the winner's cell in
the DES when it came from an analytic grid.

Parameters: ``benchmark`` (default ``ep``), ``problem_class``
(default ``A``), ``objective`` (``energy``/``edp``/``time``) and
``scenario`` (``uncapped``/``cluster_cap``/``node_cap`` — the budget
in watts is derived from the *paper* platform's power curve at the
largest count, then applied identically to every platform).
"""

from __future__ import annotations

import typing as _t

from repro.experiments.platform import (
    PAPER_COUNTS,
    measure_campaign,
)
from repro.experiments.registry import ExperimentResult, register_spec
from repro.npb import BENCHMARKS, ProblemClass
from repro.pipeline import (
    CampaignRequest,
    ExperimentSpec,
    Stage,
    StageContext,
)
from repro.reporting.tables import format_rows

__all__ = ["SPEC", "SEARCH_PLATFORMS"]

TITLE = "Energy-optimal (platform, N, f) under a power budget"

#: Platforms the search enumerates, reference platform first.  The
#: paper grid runs through the DES (dedups with the table
#: experiments); the rest are priced analytically.
SEARCH_PLATFORMS: tuple[str, ...] = (
    "paper",
    "paper-memwall",
    "hetero-2gen",
)


def _params(params: dict) -> tuple[str, str, str, str]:
    benchmark = str(params.get("benchmark") or "ep").lower()
    problem_class = str(params.get("problem_class") or "A")
    objective = str(params.get("objective") or "energy").lower()
    scenario = str(params.get("scenario") or "cluster_cap").lower()
    return benchmark, problem_class, objective, scenario


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    from repro.platforms import get_platform

    benchmark, problem_class, _objective, _scenario = _params(params)
    requests = []
    for platform in SEARCH_PLATFORMS:
        spec = get_platform(platform)
        counts = tuple(n for n in PAPER_COUNTS if n <= spec.n_nodes)
        requests.append(
            CampaignRequest(
                benchmark,
                problem_class,
                counts,
                spec.common_frequencies(),
                platform=None if platform == "paper" else platform,
                # The reference grid is a DES campaign with the same
                # digest as the table experiments' requests; the
                # alternatives are cheap analytic sweeps.
                backend=None if platform == "paper" else "analytic",
            )
        )
    return tuple(requests)


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    from repro.governor import power_cap_scenarios
    from repro.optimizer.search import check_objective
    from repro.platforms import get_platform

    benchmark, problem_class, objective, scenario = _params(ctx.params)
    objective = check_objective(objective)
    scenarios = power_cap_scenarios(max(PAPER_COUNTS))
    if scenario not in scenarios:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown cap scenario {scenario!r}: valid choices are "
            + ", ".join(repr(s) for s in sorted(scenarios))
        )
    cap = scenarios[scenario]

    def score(time_s: float, energy_j: float) -> float:
        if objective == "energy":
            return energy_j
        if objective == "edp":
            return energy_j * time_s
        return time_s

    per_platform: dict[str, dict[str, _t.Any]] = {}
    best = None
    for index, platform in enumerate(SEARCH_PLATFORMS):
        campaign = ctx.campaign(index)
        spec = get_platform(platform)
        feasible = []
        for cell, time_s in campaign.times.items():
            n, f = cell
            if not cap.admits_spec(f, spec, n):
                continue
            energy_j = campaign.energies[cell]
            feasible.append(
                (
                    score(time_s, energy_j),
                    time_s,
                    n,
                    f,
                    platform,
                    energy_j,
                )
            )
        if not feasible:
            per_platform[platform] = {"feasible_cells": 0}
            continue
        feasible.sort()
        value, time_s, n, f, _platform, energy_j = feasible[0]
        entry = {
            "n": n,
            "frequency_mhz": f / 1e6,
            "time_s": time_s,
            "energy_j": energy_j,
            "edp_j_s": energy_j * time_s,
            "objective_value": value,
            "feasible_cells": len(feasible),
        }
        per_platform[platform] = entry
        if best is None or (value, time_s, n, f, platform) < best[0]:
            best = ((value, time_s, n, f, platform), entry, platform)

    assert best is not None, "cap admitted no cell on any platform"
    _key, winner_entry, winner_platform = best

    # Confirm analytic winners in the DES (the paper grid already *is*
    # DES data).  A single cell, served from the planner-warmed cache
    # when possible.
    confirmation: dict[str, float] | None = None
    if winner_platform != "paper":
        bench = BENCHMARKS[benchmark](ProblemClass.parse(problem_class))
        f_hz = winner_entry["frequency_mhz"] * 1e6
        des = measure_campaign(
            bench,
            [winner_entry["n"]],
            [f_hz],
            spec=get_platform(winner_platform),
            backend="des",
        )
        cell = (winner_entry["n"], f_hz)
        des_time = des.times[cell]
        des_energy = des.energies[cell]
        confirmation = {
            "des_time_s": des_time,
            "des_energy_j": des_energy,
            "time_rel_err": abs(winner_entry["time_s"] - des_time)
            / des_time,
            "energy_rel_err": abs(winner_entry["energy_j"] - des_energy)
            / des_energy,
        }

    return {
        "benchmark": benchmark,
        "class": problem_class,
        "objective": objective,
        "scenario": scenario,
        "cap": cap.as_dict(),
        "per_platform": per_platform,
        "winner": {**winner_entry, "platform": winner_platform},
        "confirmation": confirmation,
    }


def _render(ctx: StageContext) -> ExperimentResult:
    analysis = ctx.state["analyze"]
    rows = []
    for platform, entry in analysis["per_platform"].items():
        if not entry.get("feasible_cells"):
            rows.append([platform, "-", "-", "-", "-", "-", "0"])
            continue
        rows.append(
            [
                platform,
                str(entry["n"]),
                f"{entry['frequency_mhz']:.0f}",
                f"{entry['time_s']:.3f}",
                f"{entry['energy_j']:.1f}",
                f"{entry['edp_j_s']:.1f}",
                str(entry["feasible_cells"]),
            ]
        )
    winner = analysis["winner"]
    lines = [
        format_rows(
            [
                "platform",
                "N*",
                "f* [MHz]",
                "time [s]",
                "energy [J]",
                "EDP [J*s]",
                "legal cells",
            ],
            rows,
            title=(
                f"{analysis['benchmark'].upper()} class "
                f"{analysis['class']}: {analysis['objective']}-optimal "
                f"config per platform, cap '{analysis['scenario']}'"
            ),
        ),
        f"winner: {winner['platform']} at N={winner['n']}, "
        f"f={winner['frequency_mhz']:.0f} MHz "
        f"({analysis['objective']} = {winner['objective_value']:.1f})",
    ]
    confirmation = analysis["confirmation"]
    if confirmation is not None:
        lines.append(
            "DES confirmation: time err "
            f"{confirmation['time_rel_err']:.3%}, energy err "
            f"{confirmation['energy_rel_err']:.3%}"
        )
    return ExperimentResult(
        "optimizer_search",
        TITLE,
        "\n\n".join(lines),
        analysis,
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="optimizer_search",
        title=TITLE,
        description=(
            "exhaustive (platform, N, f) search for the energy/EDP-"
            "optimal configuration under a power-cap scenario; paper "
            "grid via DES (planner-deduped), alternatives analytic"
        ),
        requires=_requires,
        stages=(
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
