"""Table 7 — LU prediction errors: fine-grain vs simplified.

The paper's closing validation: fit *both* parameterizations to LU and
tabulate speedup-prediction errors side by side over (N, f).

Published signatures this reproduction must show:

* SP errors are zero in the base column and "increase steadily with
  both number of nodes and frequency" — Assumption 2 treats the
  derived overhead (which for LU is mostly pipeline imbalance, i.e.
  *compute*) as frequency-insensitive.
* FP errors "increase with number of nodes but appear to be leveling
  off with frequency" — FP models the frequency dependence but
  Assumption 1 misses the pipeline's limited DOP.
* Both stay within ~13 %.

The FP pipeline here is measurement-driven end to end: counters →
mix (Table 5), LMBENCH/MPPTEST probes → rates and message times
(Table 6), application profile → message counts.
"""

from __future__ import annotations

import typing as _t

from repro.core.cpi import WorkloadRates
from repro.core.params_fp import FineGrainParameterization
from repro.core.params_sp import SimplifiedParameterization
from repro.core.prediction import Predictor
from repro.cluster.counters import HardwareCounters
from repro.experiments.platform import PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.npb import LUBenchmark, ProblemClass
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.proftools.lmbench import LevelLatencyProbe
from repro.proftools.mpptest import MppTest
from repro.proftools.papi import counter_campaign
from repro.reporting.tables import format_rows
from repro.units import doubles

__all__ = ["SPEC", "fit_lu_fp", "TABLE7_COUNTS"]

TITLE = "Table 7: LU prediction errors, fine-grain (FP) vs simplified (SP)"

#: The paper's Table 7 uses N = 1..8.
TABLE7_COUNTS: tuple[int, ...] = (1, 2, 4, 8)


def fit_lu_fp(
    lu: LUBenchmark, repetitions: int = 10, workload=None
) -> FineGrainParameterization:
    """The full measurement-driven FP pipeline for LU (§5.2 steps 1–2)."""
    # Step 1: workload distribution from hardware counters.
    counters = counter_campaign(lu)
    hc = HardwareCounters()
    for event, value in counters.items():
        hc._events[event] = value
    mix = hc.derive_mix()

    # Step 2a: per-level latencies (LMBENCH-style) -> rates.
    level_table = LevelLatencyProbe().measure(PAPER_FREQUENCIES)
    rates = WorkloadRates.from_level_latencies(mix, level_table)

    # Step 2b: per-message times (MPPTEST-style) over LU's sizes.
    sizes = sorted(
        {lu.exchange_bytes(n) for n in (2, 4, 8, 16)} | {doubles(310)}
    )
    message_table = MppTest().measure(
        sizes, PAPER_FREQUENCIES, repetitions=repetitions
    )

    # Step 3 inputs: message profile from the application model.
    return FineGrainParameterization(
        mix=mix,
        rates=rates,
        message_time=message_table.time,
        message_profile_for=lu.message_profile,
        workload=workload,
    )


def _counts(params: dict) -> tuple[int, ...]:
    return tuple(params.get("counts") or TABLE7_COUNTS)


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            "lu",
            params.get("problem_class") or "A",
            _counts(params),
            PAPER_FREQUENCIES,
        ),
    )


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    lu = LUBenchmark(ProblemClass.parse(ctx.param("problem_class", "A")))
    sp = SimplifiedParameterization(campaign)
    fp = fit_lu_fp(lu)
    return {
        "fp": fp,
        "sp_table": Predictor(campaign, sp).speedup_error_table(label="SP"),
        "fp_table": Predictor(campaign, fp).speedup_error_table(label="FP"),
    }


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    fit = ctx.state["fit"]
    fp_table, sp_table = fit["fp_table"], fit["sp_table"]
    counts = _counts(ctx.params)
    # Interleave like the paper's Table 7: per (N, f), FP and SP cells.
    headers = ["N"] + [
        f"{f / 1e6:.0f} {m}"
        for f in PAPER_FREQUENCIES
        for m in ("FP", "SP")
    ]
    rows = []
    for n in counts:
        row: list[str] = [str(n)]
        for f in PAPER_FREQUENCIES:
            row.append(f"{fp_table.error(n, f):.1%}")
            row.append(f"{sp_table.error(n, f):.1%}")
        rows.append(row)
    data = {
        "fp_errors": fp_table.cells(),
        "sp_errors": sp_table.cells(),
        "fp_max_error": fp_table.max_error,
        "sp_max_error": sp_table.max_error,
        "fp_parameters": fit["fp"].parameter_summary(),
    }
    return {"headers": headers, "rows": rows, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    fit = ctx.state["fit"]
    analysis = ctx.state["analyze"]
    fp_table, sp_table = fit["fp_table"], fit["sp_table"]
    text = "\n\n".join(
        [
            format_rows(
                analysis["headers"],
                analysis["rows"],
                title="Table 7: LU power-aware speedup errors",
            ),
            f"FP max {fp_table.max_error:.1%} / mean {fp_table.mean_error:.1%}"
            f"   SP max {sp_table.max_error:.1%} / mean "
            f"{sp_table.mean_error:.1%}   (paper: both <= ~13%)",
        ]
    )
    return ExperimentResult("table7", TITLE, text, analysis["data"])


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="table7",
        title=TITLE,
        description="Both parameterizations fitted to LU, error tables side by side",
        requires=_requires,
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
