"""Figure 1 — EP execution times and the 2-D power-aware speedup surface.

Figure 1a plots EP's measured execution time against processor count,
one series per frequency; Figure 1b the speedup surface over (N, f).
The paper's observations this experiment regenerates:

1. time falls with N at fixed f;  2. time falls with f at fixed N;
3. speedup is linear in N at the base frequency (15.9 at 16);
4. linear in f at N = 1 (2.34 at 1400 MHz);
5. the combined speedup ≈ the product (36.5 ≈ 15.9 × 2.34), and the
   analytical Eq. 12 prediction ``S = N·f/f0`` lands within ~2 %.
"""

from __future__ import annotations

import typing as _t

from repro.core.analysis import ErrorTable
from repro.core.speedup import measured_speedup_table
from repro.experiments.platform import PAPER_COUNTS, PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_grid

__all__ = ["SPEC"]

TITLE = "Figure 1: EP execution time and two-dimensional speedup"


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    return (
        CampaignRequest(
            "ep",
            params.get("problem_class") or "A",
            tuple(params.get("counts") or PAPER_COUNTS),
            tuple(params.get("frequencies") or PAPER_FREQUENCIES),
        ),
    )


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    speedups = measured_speedup_table(
        campaign.times, campaign.base_frequency_hz
    )
    # Eq. 12: S = N · f / f0 (the EP analytical prediction).
    f0 = campaign.base_frequency_hz
    eq12 = {(n, f): n * f / f0 for (n, f) in speedups}
    return {"speedups": speedups, "eq12": eq12}


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    campaign = ctx.campaign(0)
    speedups = ctx.state["fit"]["speedups"]
    eq12 = ctx.state["fit"]["eq12"]
    eq12_errors = ErrorTable.compare(
        eq12, speedups, label="Eq. 12 vs measured"
    )
    data = {
        "times": dict(campaign.times),
        "energies": dict(campaign.energies),
        "speedups": speedups,
        "eq12_predictions": eq12,
        "eq12_max_error": eq12_errors.max_error,
    }
    return {"eq12_errors": eq12_errors, "data": data}


def _render(ctx: StageContext) -> ExperimentResult:
    campaign = ctx.campaign(0)
    speedups = ctx.state["fit"]["speedups"]
    eq12_errors = ctx.state["analyze"]["eq12_errors"]
    text = "\n\n".join(
        [
            format_grid(
                campaign.times,
                title="Figure 1a: EP execution time (seconds)",
                value_style="time",
            ),
            format_grid(
                speedups,
                title="Figure 1b: EP power-aware speedup surface",
                value_style="speedup",
            ),
            f"Eq. 12 (S = N·f/f0) max error: {eq12_errors.max_error:.1%}"
            f"  (paper: 2.3% max)",
        ]
    )
    return ExperimentResult(
        "figure1", TITLE, text, ctx.state["analyze"]["data"]
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="figure1",
        title=TITLE,
        description=(
            "EP time series per frequency + (N, f) speedup surface + "
            "Eq. 12 check"
        ),
        requires=_requires,
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
