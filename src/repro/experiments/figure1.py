"""Figure 1 — EP execution times and the 2-D power-aware speedup surface.

Figure 1a plots EP's measured execution time against processor count,
one series per frequency; Figure 1b the speedup surface over (N, f).
The paper's observations this experiment regenerates:

1. time falls with N at fixed f;  2. time falls with f at fixed N;
3. speedup is linear in N at the base frequency (15.9 at 16);
4. linear in f at N = 1 (2.34 at 1400 MHz);
5. the combined speedup ≈ the product (36.5 ≈ 15.9 × 2.34), and the
   analytical Eq. 12 prediction ``S = N·f/f0`` lands within ~2 %.
"""

from __future__ import annotations

import typing as _t

from repro.core.analysis import ErrorTable
from repro.core.speedup import measured_speedup_table
from repro.experiments.platform import (
    PAPER_COUNTS,
    PAPER_FREQUENCIES,
    measure_campaign,
)
from repro.experiments.registry import ExperimentResult, register
from repro.npb import EPBenchmark, ProblemClass
from repro.reporting.tables import format_grid

__all__ = ["run"]


@register(
    "figure1",
    "Figure 1: EP execution time and two-dimensional speedup",
    "EP time series per frequency + (N, f) speedup surface + Eq. 12 check",
)
def run(
    problem_class: str = "A",
    counts: _t.Sequence[int] = PAPER_COUNTS,
    frequencies: _t.Sequence[float] = PAPER_FREQUENCIES,
) -> ExperimentResult:
    """Reproduce Figure 1 (and the §4.2 Eq. 12 accuracy claim)."""
    ep = EPBenchmark(ProblemClass.parse(problem_class))
    campaign = measure_campaign(ep, counts, frequencies)
    speedups = measured_speedup_table(
        campaign.times, campaign.base_frequency_hz
    )

    # Eq. 12: S = N · f / f0 (the EP analytical prediction).
    f0 = campaign.base_frequency_hz
    eq12 = {(n, f): n * f / f0 for (n, f) in speedups}
    eq12_errors = ErrorTable.compare(eq12, speedups, label="Eq. 12 vs measured")

    text = "\n\n".join(
        [
            format_grid(
                campaign.times,
                title="Figure 1a: EP execution time (seconds)",
                value_style="time",
            ),
            format_grid(
                speedups,
                title="Figure 1b: EP power-aware speedup surface",
                value_style="speedup",
            ),
            f"Eq. 12 (S = N·f/f0) max error: {eq12_errors.max_error:.1%}"
            f"  (paper: 2.3% max)",
        ]
    )
    data = {
        "times": dict(campaign.times),
        "energies": dict(campaign.energies),
        "speedups": speedups,
        "eq12_predictions": eq12,
        "eq12_max_error": eq12_errors.max_error,
    }
    return ExperimentResult(
        "figure1",
        "Figure 1: EP execution time and two-dimensional speedup",
        text,
        data,
    )
