"""Closed-loop governor shoot-out: online policies under power caps.

ROADMAP item 2 asks for the generalization the paper only gestures at
(§6): use power-aware speedup not as an offline predictor but as an
*online controller*.  This experiment runs EP/FT/LU through the
governed harness (:func:`repro.governor.govern_run`) under two
operator power budgets — a cluster-wide watt cap and a per-node cap —
and compares four policies on energy-delay product:

* ``static`` — hold the cap-legal peak (the fair baseline);
* ``static_optimal`` — the offline oracle from an analytic grid sweep;
* ``reactive`` — per-rank slack reclamation from last epoch's idle;
* ``model_predictive`` — refit the SP model from telemetry each epoch
  and actuate its argmin-EDP frequency.

Beyond the comparison table, the analyze stage audits every decision
trace against its cap (worst-case compute power per actuation) and
records each trace's SHA-256 digest — the digests are pinned by the
golden-result suite, so any nondeterminism in the governor shows up as
a test failure, not a silent drift.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import paper_spec
from repro.cluster.power import PowerState
from repro.experiments.registry import ExperimentResult, register_spec
from repro.governor import govern_run, power_cap_scenarios
from repro.governor.trace import DecisionTrace
from repro.npb import BENCHMARKS, ProblemClass
from repro.pipeline import ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_rows

__all__ = ["SPEC", "DEFAULT_BENCHMARKS", "DEFAULT_SCENARIOS", "POLICY_ORDER"]

TITLE = "Closed-loop DVFS governor: online policies vs static under power caps"

#: Benchmarks governed by default (the analytically validated trio).
DEFAULT_BENCHMARKS = ("ep", "ft", "lu")

#: Cap scenarios exercised by default (both budget axes).
DEFAULT_SCENARIOS = ("cluster_cap", "node_cap")

#: Column order of the comparison table.
POLICY_ORDER = ("static", "static_optimal", "reactive", "model_predictive")


def count_cap_violations(trace: DecisionTrace, spec=None) -> int:
    """Decisions whose worst-case power would exceed the trace's cap.

    Audits the *trace*, not the run: every actuated frequency is
    priced at flat-out COMPUTE power and checked against the per-node
    and cluster budgets.  A correct governor always returns 0.
    """
    spec = spec or paper_spec(n_nodes=trace.n_ranks)
    points = spec.cpu.operating_points
    cap = trace.cap
    violations = 0
    for decision in trace.decisions:
        worst = [
            spec.power.node_power_w(points.lookup(f), PowerState.COMPUTE)
            for f in decision.frequencies
        ]
        if cap.node_w is not None and max(worst) > cap.node_w:
            violations += 1
        elif cap.cluster_w is not None and sum(worst) > cap.cluster_w:
            violations += 1
    return violations


def _fit(ctx: StageContext) -> dict[str, _t.Any]:
    n_ranks = int(ctx.param("n_ranks", 4))
    scenarios = power_cap_scenarios(n_ranks)
    wanted = tuple(ctx.param("scenarios", DEFAULT_SCENARIOS))
    return {
        "n_ranks": n_ranks,
        "problem_class": str(ctx.param("problem_class", "A")),
        "benchmarks": tuple(ctx.param("benchmarks", DEFAULT_BENCHMARKS)),
        "epoch_phases": int(ctx.param("epoch_phases", 4)),
        "safety": float(ctx.param("safety", 0.9)),
        "seed": int(ctx.param("seed", 0)),
        "caps": {label: scenarios[label] for label in wanted},
    }


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    fit = ctx.state["fit"]
    n_ranks = fit["n_ranks"]
    problem_class = ProblemClass.parse(fit["problem_class"])
    results: dict[str, dict[str, dict[str, _t.Any]]] = {}
    traces: dict[str, dict[str, _t.Any]] = {}
    total_violations = 0
    for name in fit["benchmarks"]:
        bench = BENCHMARKS[name](problem_class)
        results[name] = {}
        for label, cap in fit["caps"].items():
            per_policy: dict[str, _t.Any] = {}
            for policy in POLICY_ORDER:
                governed = govern_run(
                    bench,
                    n_ranks,
                    policy,
                    cap,
                    epoch_phases=fit["epoch_phases"],
                    safety=fit["safety"],
                    seed=fit["seed"],
                )
                violations = count_cap_violations(governed.trace)
                total_violations += violations
                per_policy[policy] = {
                    "elapsed_s": governed.elapsed_s,
                    "energy_j": governed.energy_j,
                    "edp_j_s": governed.edp,
                    "transitions": governed.trace.transitions,
                    "epochs": governed.trace.n_epochs,
                    "cap_violations": violations,
                    "trace_digest": governed.trace.digest(),
                }
                traces.setdefault(name, {})[
                    f"{label}/{policy}"
                ] = governed.trace.to_document()
            results[name][label] = per_policy
    checks = []
    for name, by_scenario in results.items():
        for label, per_policy in by_scenario.items():
            mp = per_policy["model_predictive"]["edp_j_s"]
            checks.append(
                {
                    "benchmark": name,
                    "scenario": label,
                    "mp_le_reactive": mp
                    <= per_policy["reactive"]["edp_j_s"] * (1 + 1e-12),
                    "mp_vs_oracle": mp
                    / per_policy["static_optimal"]["edp_j_s"],
                }
            )
    return {
        "results": results,
        "checks": checks,
        "cap_violations": total_violations,
        "traces": traces,
        "caps": {
            label: cap.as_dict() for label, cap in fit["caps"].items()
        },
    }


def _render(ctx: StageContext) -> ExperimentResult:
    fit = ctx.state["fit"]
    analysis = ctx.state["analyze"]
    results = analysis["results"]
    rows = []
    for name, by_scenario in results.items():
        for label, per_policy in by_scenario.items():
            static_edp = per_policy["static"]["edp_j_s"]
            for policy in POLICY_ORDER:
                row = per_policy[policy]
                rows.append(
                    [
                        name.upper(),
                        label,
                        policy,
                        f"{row['elapsed_s']:.2f}",
                        f"{row['energy_j']:.0f}",
                        f"{row['edp_j_s']:.0f}",
                        f"{row['edp_j_s'] / static_edp:.3f}",
                        row["transitions"],
                    ]
                )
    worst_oracle = max(c["mp_vs_oracle"] for c in analysis["checks"])
    all_le = all(c["mp_le_reactive"] for c in analysis["checks"])
    text = "\n\n".join(
        [
            format_rows(
                [
                    "bench",
                    "scenario",
                    "policy",
                    "time [s]",
                    "energy [J]",
                    "EDP [J*s]",
                    "vs static",
                    "transitions",
                ],
                rows,
                title=(
                    f"Governed runs at N={fit['n_ranks']} "
                    f"(class {fit['problem_class']}, "
                    f"{fit['epoch_phases']} phases/epoch)"
                ),
            ),
            f"model-predictive <= reactive on every scenario: {all_le}\n"
            f"worst model-predictive/oracle EDP ratio: {worst_oracle:.3f}\n"
            f"cap violations across all decision traces: "
            f"{analysis['cap_violations']}",
        ]
    )
    data = {
        "n_ranks": fit["n_ranks"],
        "problem_class": fit["problem_class"],
        "epoch_phases": fit["epoch_phases"],
        "caps": analysis["caps"],
        "results": results,
        "checks": analysis["checks"],
        "cap_violations": analysis["cap_violations"],
        "mp_le_reactive_everywhere": all_le,
        "worst_mp_vs_oracle": worst_oracle,
    }
    return ExperimentResult("governor_comparison", TITLE, text, data)


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="governor_comparison",
        title=TITLE,
        description=(
            "Closed-loop governed runs: static, oracle, reactive and "
            "model-predictive policies compared on EDP under power caps"
        ),
        stages=(
            Stage("fit", _fit),
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
