"""Energy-delay prediction — the abstract's "within 7 %" claim.

The paper: power-aware speedup "predicts (within 7%) the power-aware
performance and energy-delay products for various system
configurations (i.e. processor counts and frequencies) on NAS Parallel
benchmark codes."

This experiment closes that loop on the simulator: fit the SP
parameterization to a benchmark's campaign, couple it with the
:class:`~repro.core.energy.EnergyModel`, and compare predicted
execution times, energies and EDPs against the measured (simulated)
values over the whole grid.
"""

from __future__ import annotations

import typing as _t

from repro.core.energy import EnergyModel
from repro.core.params_sp import SimplifiedParameterization
from repro.core.prediction import Predictor
from repro.cluster.machine import paper_spec
from repro.experiments.platform import PAPER_COUNTS, PAPER_FREQUENCIES
from repro.experiments.registry import ExperimentResult, register_spec
from repro.pipeline import CampaignRequest, ExperimentSpec, Stage, StageContext
from repro.reporting.tables import format_rows

__all__ = ["SPEC", "DEFAULT_BENCHMARKS"]

TITLE = "Abstract claim: performance and energy-delay predicted within 7%"

#: Benchmarks the claim is evaluated on (the paper's three).
DEFAULT_BENCHMARKS = ("ep", "ft", "lu")

#: Grids per benchmark (LU follows the paper's N <= 8).
_COUNTS = {"lu": (1, 2, 4, 8)}


def _benchmarks(params: dict) -> tuple[str, ...]:
    return tuple(params.get("benchmarks") or DEFAULT_BENCHMARKS)


def _requires(params: dict) -> tuple[CampaignRequest, ...]:
    problem_class = params.get("problem_class") or "A"
    return tuple(
        CampaignRequest(
            name,
            problem_class,
            _COUNTS.get(name, PAPER_COUNTS),
            PAPER_FREQUENCIES,
        )
        for name in _benchmarks(params)
    )


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    spec = paper_spec()
    energy_model = EnergyModel(spec.power, spec.cpu.operating_points)

    rows = []
    per_benchmark: dict[str, dict[str, float]] = {}
    for index, name in enumerate(_benchmarks(ctx.params)):
        campaign = ctx.campaign(index)
        sp = SimplifiedParameterization(campaign)
        predictor = Predictor(
            campaign,
            sp,
            energy_model=energy_model,
            overhead_for=lambda n, f, _sp=sp: (
                max(_sp.overhead(n), 0.0) if n > 1 else 0.0
            ),
        )
        time_errors = predictor.time_error_table(label=f"{name} time")
        energy_errors = predictor.energy_error_table(label=f"{name} energy")
        edp_errors = predictor.edp_error_table(label=f"{name} EDP")
        per_benchmark[name] = {
            "time_max_error": time_errors.max_error,
            "time_mean_error": time_errors.mean_error,
            "energy_max_error": energy_errors.max_error,
            "edp_max_error": edp_errors.max_error,
            "edp_mean_error": edp_errors.mean_error,
        }
        rows.append(
            [
                name.upper(),
                f"{time_errors.max_error:.1%}",
                f"{energy_errors.max_error:.1%}",
                f"{edp_errors.max_error:.1%}",
                f"{edp_errors.mean_error:.1%}",
            ]
        )
    worst_edp = max(v["edp_max_error"] for v in per_benchmark.values())
    return {
        "rows": rows,
        "per_benchmark": per_benchmark,
        "worst_edp": worst_edp,
    }


def _render(ctx: StageContext) -> ExperimentResult:
    analysis = ctx.state["analyze"]
    worst_edp = analysis["worst_edp"]
    text = "\n\n".join(
        [
            format_rows(
                [
                    "benchmark",
                    "time max err",
                    "energy max err",
                    "EDP max err",
                    "EDP mean err",
                ],
                analysis["rows"],
                title="Power-aware performance and energy-delay prediction",
            ),
            f"worst EDP error across benchmarks: {worst_edp:.1%}"
            f"  (paper abstract: within 7%)",
        ]
    )
    return ExperimentResult(
        "edp",
        TITLE,
        text,
        {
            "per_benchmark": analysis["per_benchmark"],
            "worst_edp_error": worst_edp,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="edp",
        title=TITLE,
        description="SP + energy model vs simulated times/energies/EDPs per benchmark",
        requires=_requires,
        stages=(
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
