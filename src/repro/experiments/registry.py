"""Experiment registry and result container.

Experiment modules register an :class:`~repro.pipeline.experiment.
ExperimentSpec` with :func:`register_spec`; the CLI, the service and
the benchmark harness discover them through :func:`list_experiments` /
:func:`run_experiment`.  Modules are auto-discovered: every module in
:mod:`repro.experiments` (minus the infrastructure modules) is
imported for its registration side effects, so a new experiment file
can never be silently unregistered by a stale import list.

:func:`register` remains as a legacy adapter wrapping an imperative
runner function into a single-stage spec.
"""

from __future__ import annotations

import dataclasses
import importlib
import pkgutil
import typing as _t

from repro.errors import UnknownExperimentError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.experiment import ExperimentSpec

__all__ = [
    "ExperimentResult",
    "register",
    "register_spec",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Registry id (e.g. ``"table3"``).
    title:
        Human-readable title naming the paper artifact.
    text:
        The rendered report (tables in the paper's layout).
    data:
        Machine-readable results: grids, rows, scalar summaries.
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, _t.Any]

    def __str__(self) -> str:
        return f"== {self.title} ==\n{self.text}"

    def document(self) -> dict[str, _t.Any]:
        """The JSON-ready export of this result.

        One shared schema path for every machine-readable surface —
        CLI exports, the service API and the golden snapshots — via
        :func:`repro.reporting.jsonify`: tuple grid keys render as
        ``"N@fMHz"`` strings and floats round-trip bit-exactly.
        """
        from repro.reporting import jsonify

        return {
            "experiment": self.experiment_id,
            "title": self.title,
            "data": jsonify(self.data),
        }


_REGISTRY: dict[str, "ExperimentSpec"] = {}

#: Infrastructure modules in this package that are not experiments.
_NON_EXPERIMENT_MODULES = {"cli", "platform", "registry"}

_loaded = False


def register_spec(spec: "ExperimentSpec") -> "ExperimentSpec":
    """Register a declarative experiment spec under its id."""
    _REGISTRY[spec.experiment_id] = spec
    return spec


def register(
    experiment_id: str, title: str, description: str = ""
) -> _t.Callable:
    """Legacy decorator: wrap an imperative runner into a spec.

    The wrapped function keeps its old contract — called with the
    run's keyword parameters, returns an :class:`ExperimentResult` —
    and appears in the registry as a single-``render``-stage spec
    with no declared campaign requests (its campaigns still hit the
    platform caches, which the planner keeps warm).
    """

    def wrap(fn: _t.Callable[..., ExperimentResult]):
        from repro.pipeline.experiment import ExperimentSpec, Stage

        register_spec(
            ExperimentSpec(
                experiment_id=experiment_id,
                title=title,
                stages=(
                    Stage("render", lambda ctx: fn(**ctx.params)),
                ),
                description=description or fn.__doc__ or "",
            )
        )
        return fn

    return wrap


def _ensure_loaded() -> None:
    """Import every experiment module for its registration effects.

    Discovery is ``pkgutil``-based: any non-underscore module in
    :mod:`repro.experiments` other than the known infrastructure
    modules is treated as an experiment module.
    """
    global _loaded
    if _loaded:
        return
    import repro.experiments as package

    for info in pkgutil.iter_modules(package.__path__):
        name = info.name
        if name.startswith("_") or name in _NON_EXPERIMENT_MODULES:
            continue
        importlib.import_module(f"repro.experiments.{name}")
    _loaded = True


def get_experiment(experiment_id: str) -> "ExperimentSpec":
    """Look up a registered experiment spec."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> list[tuple[str, str, str]]:
    """(id, title, description) of every registered experiment."""
    _ensure_loaded()
    return [
        (spec.experiment_id, spec.title, spec.description)
        for spec in sorted(
            _REGISTRY.values(), key=lambda spec: spec.experiment_id
        )
    ]


def run_experiment(experiment_id: str, **kwargs: _t.Any) -> ExperimentResult:
    """Run one experiment by id through the pipeline."""
    from repro.pipeline.experiment import run_single

    return run_single(get_experiment(experiment_id), kwargs)
