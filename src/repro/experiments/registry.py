"""Experiment registry and result container.

Experiments register themselves with :func:`register`; the CLI and the
benchmark harness discover them through :func:`list_experiments` /
:func:`run_experiment`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import UnknownExperimentError

__all__ = [
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Registry id (e.g. ``"table3"``).
    title:
        Human-readable title naming the paper artifact.
    text:
        The rendered report (tables in the paper's layout).
    data:
        Machine-readable results: grids, rows, scalar summaries.
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, _t.Any]

    def __str__(self) -> str:
        return f"== {self.title} ==\n{self.text}"


@dataclasses.dataclass(frozen=True)
class _Entry:
    experiment_id: str
    title: str
    runner: _t.Callable[..., ExperimentResult]
    description: str


_REGISTRY: dict[str, _Entry] = {}


def register(
    experiment_id: str, title: str, description: str = ""
) -> _t.Callable:
    """Decorator registering an experiment runner under an id."""

    def wrap(fn: _t.Callable[..., ExperimentResult]):
        _REGISTRY[experiment_id] = _Entry(
            experiment_id, title, fn, description or fn.__doc__ or ""
        )
        return fn

    return wrap


def _ensure_loaded() -> None:
    # Import experiment modules for their registration side effects.
    from repro.experiments import (  # noqa: F401
        ablations,
        dvfs_savings,
        edp,
        extrapolation,
        figure1,
        figure2,
        predictive_scheduling,
        slack_savings,
        suite_overview,
        table1,
        table3,
        table5,
        table6,
        table7,
    )


def get_experiment(experiment_id: str) -> _Entry:
    """Look up a registered experiment."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> list[tuple[str, str, str]]:
    """(id, title, description) of every registered experiment."""
    _ensure_loaded()
    return [
        (e.experiment_id, e.title, e.description)
        for e in sorted(_REGISTRY.values(), key=lambda e: e.experiment_id)
    ]


def run_experiment(experiment_id: str, **kwargs: _t.Any) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id).runner(**kwargs)
