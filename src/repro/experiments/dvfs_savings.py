"""DVS-scheduling energy savings — the abstract's context claim.

"Recent work has shown power-aware clusters can conserve significant
energy (>30%) with minimal performance loss (<1%) running parallel
scientific workloads … using a priori knowledge of application
performance."

This experiment reproduces that prior-work result on the simulated
platform: profile a communication-bound benchmark, build the
profile-driven :class:`~repro.sched.policies.CommBoundPolicy`
(throttle communication-bound phases to the base frequency) and
evaluate it against the static-peak baseline.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import paper_spec
from repro.experiments.registry import ExperimentResult, register_spec
from repro.npb import BENCHMARKS, ProblemClass
from repro.pipeline import ExperimentSpec, Stage, StageContext
from repro.proftools.profiler import profile_benchmark
from repro.reporting.tables import format_rows
from repro.sched import CommBoundPolicy, evaluate_policy

__all__ = ["SPEC"]

TITLE = "Context claim: DVS scheduling saves >30% energy at small slowdown"


def _analyze(ctx: StageContext) -> dict[str, _t.Any]:
    spec = paper_spec()
    ops = spec.cpu.operating_points
    benchmark = ctx.param("benchmark", "ft")
    threshold = float(ctx.param("threshold", 0.5))
    bench = BENCHMARKS[benchmark](
        ProblemClass.parse(ctx.param("problem_class", "A"))
    )

    rows = []
    evaluations = {}
    for n in tuple(ctx.param("counts", (4, 8, 16))):
        profile = profile_benchmark(
            bench, n, frequency_hz=ops.peak.frequency_hz
        )
        policy = CommBoundPolicy(profile, ops, threshold=threshold)
        evaluation = evaluate_policy(bench, n, policy)
        evaluations[n] = {
            "energy_savings": evaluation.energy_savings,
            "slowdown": evaluation.slowdown,
            "edp_improvement": evaluation.edp_improvement,
            "throttled_phases": list(policy.throttled_phases),
        }
        rows.append(
            [
                n,
                ", ".join(policy.throttled_phases),
                f"{evaluation.energy_savings:.1%}",
                f"{evaluation.slowdown:.2%}",
                f"{evaluation.edp_improvement:.1%}",
            ]
        )
    best = max(v["energy_savings"] for v in evaluations.values())
    return {
        "ops": ops,
        "benchmark": benchmark,
        "rows": rows,
        "evaluations": evaluations,
        "best": best,
    }


def _render(ctx: StageContext) -> ExperimentResult:
    analysis = ctx.state["analyze"]
    ops = analysis["ops"]
    benchmark = analysis["benchmark"]
    best = analysis["best"]
    text = "\n\n".join(
        [
            format_rows(
                ["N", "throttled phases", "energy saved", "slowdown", "EDP gain"],
                analysis["rows"],
                title=(
                    f"Profile-driven DVS scheduling of {benchmark.upper()} "
                    f"(low={ops.base.frequency_mhz:.0f} MHz on comm-bound "
                    f"phases, else {ops.peak.frequency_mhz:.0f} MHz)"
                ),
            ),
            f"best energy savings: {best:.1%}"
            f"  (literature/abstract: >30% with <1% slowdown)",
        ]
    )
    return ExperimentResult(
        "dvfs_savings",
        TITLE,
        text,
        {"evaluations": analysis["evaluations"], "best_savings": best},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="dvfs_savings",
        title=TITLE,
        description="Profile-driven per-phase DVFS on comm-bound codes vs static peak",
        stages=(
            Stage("analyze", _analyze),
            Stage("render", _render),
        ),
    )
)
