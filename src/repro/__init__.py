"""repro — Power-Aware Speedup, reproduced.

A library-quality reproduction of *Power-Aware Speedup* (Rong Ge &
Kirk W. Cameron, IPDPS 2007): an analytical model of the combined
effect of processor count and DVFS frequency on parallel execution
time, validated on a simulated 16-node power-aware cluster running
NAS-Parallel-Benchmark workload models.

The package splits into:

* the paper's contribution — :mod:`repro.core` (the model, both
  parameterizations, energy/EDP prediction, sweet-spot search);
* the substrates it needs — :mod:`repro.sim` (discrete-event engine),
  :mod:`repro.cluster` (DVFS cluster hardware models),
  :mod:`repro.mpi` (simulated message passing), :mod:`repro.npb`
  (benchmark workload models), :mod:`repro.proftools`
  (PAPI/LMBENCH/MPPTEST-style measurement), :mod:`repro.sched`
  (DVS scheduling policies);
* the evaluation — :mod:`repro.experiments` (one driver per paper
  table/figure) and :mod:`repro.reporting`.

Quickstart
----------
>>> from repro import FTBenchmark, paper_cluster
>>> from repro.units import mhz
>>> ft = FTBenchmark()
>>> result = ft.run(paper_cluster(16, frequency_hz=mhz(1400)))
>>> result.elapsed_s > 0 and result.energy_j > 0
True

See ``examples/`` for complete walk-throughs and
``repro-experiments run-all`` for every reproduced table and figure.
"""

from repro.cluster import (
    PENTIUM_M_OPERATING_POINTS,
    Cluster,
    ClusterSpec,
    InstructionMix,
    OperatingPoint,
    OperatingPointTable,
    paper_cluster,
    paper_spec,
)
from repro.core import (
    EnergyModel,
    ErrorTable,
    ExecutionTimeModel,
    FineGrainParameterization,
    PowerAwareSpeedupModel,
    Predictor,
    SimplifiedParameterization,
    SweetSpotFinder,
    Workload,
    WorkloadRates,
    amdahl_speedup,
    generalized_amdahl_speedup,
    gustafson_speedup,
)
from repro.core.measurements import TimingCampaign
from repro.errors import (
    CampaignExecutionError,
    CellExecutionError,
    CellTimeoutError,
    ReproError,
)
from repro.experiments import measure_campaign, run_experiment
from repro.runtime import (
    FaultPlan,
    campaign_metrics,
    install_fault_plan,
    parse_fault_plan,
    reset_campaign_metrics,
)
from repro.runtime import configure as configure_runtime
from repro.mpi import RunResult, run_program
from repro.npb import (
    BENCHMARKS,
    BenchmarkModel,
    CGBenchmark,
    EPBenchmark,
    FTBenchmark,
    ISBenchmark,
    LUBenchmark,
    MGBenchmark,
    ProblemClass,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cluster / platform
    "Cluster",
    "ClusterSpec",
    "paper_cluster",
    "paper_spec",
    "OperatingPoint",
    "OperatingPointTable",
    "PENTIUM_M_OPERATING_POINTS",
    "InstructionMix",
    # runtime
    "run_program",
    "RunResult",
    # benchmarks
    "ProblemClass",
    "BenchmarkModel",
    "EPBenchmark",
    "FTBenchmark",
    "LUBenchmark",
    "CGBenchmark",
    "MGBenchmark",
    "ISBenchmark",
    "BENCHMARKS",
    # the model
    "Workload",
    "WorkloadRates",
    "ExecutionTimeModel",
    "PowerAwareSpeedupModel",
    "SimplifiedParameterization",
    "FineGrainParameterization",
    "EnergyModel",
    "Predictor",
    "SweetSpotFinder",
    "ErrorTable",
    "TimingCampaign",
    "amdahl_speedup",
    "generalized_amdahl_speedup",
    "gustafson_speedup",
    # evaluation
    "measure_campaign",
    "run_experiment",
    # campaign runtime
    "configure_runtime",
    "campaign_metrics",
    "reset_campaign_metrics",
    # fault tolerance
    "ReproError",
    "CampaignExecutionError",
    "CellExecutionError",
    "CellTimeoutError",
    "FaultPlan",
    "install_fault_plan",
    "parse_fault_plan",
]
