"""LU — the SSOR regular-sparse solver (paper §5.2's case study).

LU applies symmetric successive over-relaxation to a block lower/upper
triangular system.  The paper picks it for the fine-grain
parameterization case study because it is "an iterative solver with a
limited amount of parallelism and a memory footprint comparable to
FFT", exhibiting "a regular communication pattern".

The defining structural feature is the *wavefront*: the lower (blts)
and upper (buts) triangular solves sweep dependency-ordered planes
through the rank pipeline, so parallelism ramps up over the pipeline
fill and down over the drain.  A sweep of ``K`` dependent blocks is
equivalent, in Amdahl terms, to a serial fraction of ``1/K`` of the
sweep's work — the limited DOP the paper attributes to LU.

CALIBRATION (class A)
---------------------
* The counter-measured workload decomposition is Table 5, verbatim:
  145e9 CPU/register + 175e9 L1 + 4.71e9 L2 + 3.97e9 memory
  instructions — 98.8 % ON-chip, weighted ``CPI_ON ≈ 2.19`` with our
  per-level CPIs.
* Boundary exchanges carry ``620/N`` doubles per message (Table 6:
  310 doubles at 2 nodes, 155 at 4).
* 250 SSOR iterations (class A), each: RHS computation (data
  parallel), a lower sweep, an upper sweep, and a small residual-norm
  allreduce.  The simulator batches iterations
  (``_SIM_BATCH`` real iterations per simulated one) to bound event
  counts; per-message sizes are preserved and message *counts* are
  scaled accordingly in the profile.
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllreducePhase,
    ComputePhase,
    Phase,
    PipelinedSweepPhase,
    SerialComputePhase,
)
from repro.units import doubles

__all__ = ["LUBenchmark"]

#: Table 5's measured class-A workload decomposition (instructions).
_CLASS_A_MIX = InstructionMix(
    cpu=145e9, l1=175e9, l2=4.71e9, mem=3.97e9
)

#: Wavefront blocks per triangular sweep (the nz = 64 planes of class
#: A, one block per plane).  The 1/K equivalent-serial-fraction of a
#: sweep follows from this.
_SWEEP_BLOCKS = 64

#: Real iterations folded into one simulated iteration (event-count
#: control; work totals and per-message sizes are preserved).
_SIM_BATCH = 10

#: Fraction of per-iteration work in the two triangular sweeps (the
#: rest is the Jacobian/RHS computation, which is data parallel).
_SWEEP_FRACTION = 0.55

#: Serial fraction (setup, coefficient initialization).
_SERIAL_FRACTION = 0.001

#: Boundary-exchange payload: 620/N doubles (Table 6's 310 @ N=2).
_EXCHANGE_DOUBLES_TOTAL = 620.0

#: Residual-norm allreduce payload (five doubles).
_NORM_BYTES = 40.0


class LUBenchmark(BenchmarkModel):
    """Workload model of NPB LU."""

    name = "lu"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        super().__init__(problem_class)
        pc = self.problem_class
        scale = pc.lu_scale() * (
            pc.lu_iterations / ProblemClass.A.lu_iterations
        )
        self._total_mix = _CLASS_A_MIX.scaled(scale)
        self.iterations = pc.lu_iterations
        #: Simulated (batched) iteration count.
        self.sim_iterations = max(self.iterations // _SIM_BATCH, 1)
        self.sweep_blocks = _SWEEP_BLOCKS

    # -- model-side description ---------------------------------------------

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    @property
    def serial_mix(self) -> InstructionMix:
        """DOP = 1 setup work."""
        return self._total_mix.scaled(_SERIAL_FRACTION)

    @property
    def sweep_mix(self) -> InstructionMix:
        """Work inside the two triangular sweeps (pipeline-limited)."""
        return self._total_mix.scaled(
            (1.0 - _SERIAL_FRACTION) * _SWEEP_FRACTION
        )

    @property
    def rhs_mix(self) -> InstructionMix:
        """Data-parallel RHS/Jacobian work."""
        return self._total_mix.scaled(
            (1.0 - _SERIAL_FRACTION) * (1.0 - _SWEEP_FRACTION)
        )

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        """Serial setup + pipeline-limited sweeps + parallel RHS.

        A K-block pipeline is Amdahl-equivalent to a ``1/K`` serial
        fraction of the sweep work, so the sweep splits into a DOP = 1
        sliver and a fully parallel remainder.
        """
        sweep = self.sweep_mix
        pipeline_serial = sweep.scaled(1.0 / self.sweep_blocks)
        pipeline_parallel = sweep.scaled(1.0 - 1.0 / self.sweep_blocks)
        return (
            DopComponent(1, self.serial_mix + pipeline_serial),
            DopComponent(max_dop, pipeline_parallel + self.rhs_mix),
        )

    def exchange_bytes(self, n_ranks: int) -> float:
        """Boundary-message payload at ``n_ranks`` (Table 6's sizes)."""
        n = self.check_ranks(n_ranks)
        if n == 1:
            return 0.0
        return doubles(_EXCHANGE_DOUBLES_TOTAL / n)

    def message_profile(self, n_ranks: int) -> MessageProfile:
        """Per-rank boundary messages: one per block per sweep."""
        n = self.check_ranks(n_ranks)
        if n == 1:
            return MessageProfile(0.0, 0.0)
        per_iteration = 2.0 * self.sweep_blocks
        return MessageProfile(
            critical_messages=self.iterations * per_iteration,
            nbytes=self.exchange_bytes(n),
        )

    def concurrent_flows(self, n_ranks: int) -> float:
        """Steady-state wavefront: the whole neighbour chain streams."""
        n = self.check_ranks(n_ranks)
        return float(n - 1) if n > 1 else 1.0

    # -- executable phases ------------------------------------------------------

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_ranks(n_ranks)
        sim_iters = self.sim_iterations
        # Per simulated iteration, per rank.
        rhs_per_iter = self.rhs_mix.scaled(1.0 / (sim_iters * n))
        sweep_per_iter = self.sweep_mix.scaled(1.0 / (2 * sim_iters))
        block_mix = sweep_per_iter.scaled(1.0 / (self.sweep_blocks * n))
        nbytes = self.exchange_bytes(n)

        phase_list: list[Phase] = [
            SerialComputePhase("setup", self.serial_mix)
        ]
        for it in range(sim_iters):
            phase_list.append(ComputePhase(f"rhs[{it}]", rhs_per_iter))
            phase_list.append(
                PipelinedSweepPhase(
                    f"blts[{it}]",
                    block_mix,
                    self.sweep_blocks,
                    nbytes,
                    reverse=False,
                )
            )
            phase_list.append(
                PipelinedSweepPhase(
                    f"buts[{it}]",
                    block_mix,
                    self.sweep_blocks,
                    nbytes,
                    reverse=True,
                )
            )
            phase_list.append(AllreducePhase(f"norm[{it}]", _NORM_BYTES))
        return phase_list
