"""NAS Parallel Benchmark workload models.

The paper evaluates power-aware speedup on NPB codes: **EP**
(embarrassingly parallel, computation-bound), **FT** (3-D FFT,
communication-bound) and **LU** (SSOR solver, memory-heavy with limited
parallelism).  We cannot run the Fortran+MPI originals, so each
benchmark is reproduced as a *workload model*: its phase structure,
per-phase instruction mix by memory level, degree-of-parallelism
profile and communication pattern, executed on the simulated cluster
through :mod:`repro.mpi`.

The models are calibrated to the paper's published observables (Figures
1–2, Tables 5–6) — see each module's CALIBRATION notes — and each is
paired with a small *reference kernel* in :mod:`repro.npb.kernels` that
actually computes the benchmark's mathematics in numpy at toy scale,
used to validate the phase structure and to demonstrate what is being
modelled.

Extensions beyond the paper's three codes: **CG**, **MG** and **IS**
models are provided for the sweet-spot and scheduling examples.
"""

from repro.npb.base import BenchmarkModel
from repro.npb.bt import BTBenchmark
from repro.npb.cg import CGBenchmark
from repro.npb.classes import ProblemClass
from repro.npb.ep import EPBenchmark
from repro.npb.ft import FTBenchmark
from repro.npb.is_ import ISBenchmark
from repro.npb.lu import LUBenchmark
from repro.npb.mg import MGBenchmark
from repro.npb.sp_ import SPBenchmark

__all__ = [
    "ProblemClass",
    "BenchmarkModel",
    "EPBenchmark",
    "FTBenchmark",
    "LUBenchmark",
    "CGBenchmark",
    "MGBenchmark",
    "ISBenchmark",
    "BTBenchmark",
    "SPBenchmark",
    "BENCHMARKS",
]

#: Registry of benchmark model classes by (lower-case) name.
BENCHMARKS = {
    "ep": EPBenchmark,
    "ft": FTBenchmark,
    "lu": LUBenchmark,
    "cg": CGBenchmark,
    "mg": MGBenchmark,
    "is": ISBenchmark,
    "bt": BTBenchmark,
    "sp": SPBenchmark,
}
