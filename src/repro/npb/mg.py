"""MG — multigrid V-cycles (extension beyond the paper's three codes).

NPB MG solves a 3-D Poisson problem with V-cycles over a grid
hierarchy.  Its power-aware personality:

* fine grids stream large arrays — a solid OFF-chip share;
* every level exchanges face halos with neighbours: message sizes
  shrink 4× per level, so coarse levels are pure-latency traffic —
  overhead that neither frequency nor bandwidth helps;
* the coarsest levels have fewer points than ranks — genuine DOP
  starvation, modelled with DOP-limited components.

Loosely calibrated (class A ≈ 55 s sequential at 600 MHz); provided
for the examples, not validated against the paper.
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllreducePhase,
    ComputePhase,
    NeighborExchangePhase,
    Phase,
    PipelinedSweepPhase,
    SerialComputePhase,
)

__all__ = ["MGBenchmark"]

#: Class-A total instruction count (≈55 s at 600 MHz).
_CLASS_A_INSTRUCTIONS = 1.15e10

#: Stencil streaming: large working sets, real memory traffic.
_MIX_FRACTIONS = {"cpu": 0.42, "l1": 0.46, "l2": 0.09, "mem": 0.03}

_SERIAL_FRACTION = 0.001

#: Work shrinks 8x per level downward (3-D coarsening).
_LEVEL_WORK_RATIO = 0.125


class MGBenchmark(BenchmarkModel):
    """Workload model of NPB MG."""

    name = "mg"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        super().__init__(problem_class)
        pc = self.problem_class
        mine = pc.mg_grid
        ref = ProblemClass.A.mg_grid
        scale = (
            (mine[0] * mine[1] * mine[2]) / (ref[0] * ref[1] * ref[2])
        ) * (pc.mg_iterations / ProblemClass.A.mg_iterations)
        self._total_mix = InstructionMix.from_fractions(
            _CLASS_A_INSTRUCTIONS * scale, **_MIX_FRACTIONS
        )
        self.iterations = pc.mg_iterations
        #: Number of grid levels (finest included).
        self.levels = max(int(mine[0]).bit_length() - 2, 3)
        nx, ny, _nz = mine
        #: Finest-level halo face, in bytes (one double per face point).
        self.finest_halo_bytes = float(nx * ny) * 8.0

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    @property
    def serial_mix(self) -> InstructionMix:
        """DOP = 1 setup work."""
        return self._total_mix.scaled(_SERIAL_FRACTION)

    def _level_shares(self) -> list[float]:
        """Work share of each level (geometric, normalized)."""
        raw = [_LEVEL_WORK_RATIO**k for k in range(self.levels)]
        total = sum(raw)
        return [r / total for r in raw]

    def level_points(self, level: int) -> int:
        """Grid points on one level (finest is level 0)."""
        nx, ny, nz = self.problem_class.mg_grid
        shrink = 2**level
        return max(
            (nx // shrink) * (ny // shrink) * (nz // shrink), 1
        )

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        """Each level's DOP is capped by its point count."""
        parallel = self._total_mix.scaled(1.0 - _SERIAL_FRACTION)
        comps = [DopComponent(1, self.serial_mix)]
        for level, share in enumerate(self._level_shares()):
            dop = max(min(max_dop, self.level_points(level)), 1)
            comps.append(DopComponent(dop, parallel.scaled(share)))
        return tuple(comps)

    def halo_bytes(self, level: int, n_ranks: int) -> float:
        """Halo payload per neighbour exchange at one level."""
        n = self.check_ranks(n_ranks)
        if n == 1:
            return 0.0
        return self.finest_halo_bytes / (4.0**level)

    def message_profile(self, n_ranks: int) -> MessageProfile:
        """Halo exchanges at every level of every cycle; sizes vary per
        level, so the profile reports the work-weighted mean size."""
        n = self.check_ranks(n_ranks)
        if n == 1:
            return MessageProfile(0.0, 0.0)
        count = float(self.iterations * self.levels * 2)
        sizes = [self.halo_bytes(k, n) for k in range(self.levels)]
        mean_size = sum(sizes) / len(sizes)
        return MessageProfile(critical_messages=count, nbytes=mean_size)

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_ranks(n_ranks)
        parallel = self._total_mix.scaled(1.0 - _SERIAL_FRACTION)
        shares = self._level_shares()
        phase_list: list[Phase] = [
            SerialComputePhase("setup", self.serial_mix)
        ]
        for it in range(self.iterations):
            for level, share in enumerate(shares):
                mix = parallel.scaled(share / (self.iterations * n))
                label = f"level{level}[{it}]"
                if self.level_points(level) < n:
                    # Coarse-level starvation: fewer points than ranks.
                    # Run it as a 1-block pipeline on rank 0's share.
                    phase_list.append(
                        PipelinedSweepPhase(
                            label,
                            mix.scaled(float(n)),
                            n_blocks=1,
                            nbytes=self.halo_bytes(level, n),
                        )
                    )
                else:
                    phase_list.append(ComputePhase(label, mix))
                    if n > 1:
                        phase_list.append(
                            NeighborExchangePhase(
                                f"halo-{label}",
                                self.halo_bytes(level, n),
                            )
                        )
            phase_list.append(AllreducePhase(f"residual[{it}]", 8.0))
        return phase_list
