"""BT — block-tridiagonal solver (extension beyond the paper's codes).

NPB BT solves three sets of block-tridiagonal systems, one per grid
dimension, each iteration.  Its power-aware personality:

* heavy per-point computation (5×5 block operations) — a high
  CPU/register share and decent frequency scaling;
* three *directional sweeps* per iteration, each pipelined along the
  rank dimension like LU's but with much larger per-boundary payloads
  (whole 5×5 block faces);
* a moderate serial fraction from the pipeline fill/drain of each
  sweep.

Loosely calibrated (class A ≈ 700 s sequential at 600 MHz); provided
for suite coverage and the examples, not validated against the paper.
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllreducePhase,
    ComputePhase,
    Phase,
    PipelinedSweepPhase,
    SerialComputePhase,
)

__all__ = ["BTBenchmark"]

#: Class-A grid (official NPB value).
_GRIDS = {
    "S": (12, 12, 12),
    "W": (24, 24, 24),
    "A": (64, 64, 64),
    "B": (102, 102, 102),
}
_ITERATIONS = {"S": 60, "W": 200, "A": 200, "B": 200}

#: Class-A total instruction count (≈700 s at 600 MHz).
_CLASS_A_INSTRUCTIONS = 1.5e11

#: Dense 5x5 block math: register-heavy, modest memory traffic.
_MIX_FRACTIONS = {"cpu": 0.52, "l1": 0.42, "l2": 0.05, "mem": 0.01}

_SERIAL_FRACTION = 0.001

#: Share of per-iteration work inside the three sweeps (vs RHS).
_SWEEP_FRACTION = 0.60

#: Wavefront blocks per directional sweep.
_SWEEP_BLOCKS = 16

#: Simulated-iteration batching (event-count control).
_SIM_BATCH = 20

#: Boundary payload: a face of 5 doubles per point, split per rank.
_FACE_DOUBLES_TOTAL = 64 * 64 * 5.0


class BTBenchmark(BenchmarkModel):
    """Workload model of NPB BT."""

    name = "bt"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        super().__init__(problem_class)
        pc = self.problem_class
        grid = _GRIDS[pc.value]
        ref = _GRIDS["A"]
        scale = (
            (grid[0] * grid[1] * grid[2]) / (ref[0] * ref[1] * ref[2])
        ) * (_ITERATIONS[pc.value] / _ITERATIONS["A"])
        self._total_mix = InstructionMix.from_fractions(
            _CLASS_A_INSTRUCTIONS * scale, **_MIX_FRACTIONS
        )
        self.iterations = _ITERATIONS[pc.value]
        self.sim_iterations = max(self.iterations // _SIM_BATCH, 1)
        self.sweep_blocks = _SWEEP_BLOCKS
        face_scale = (grid[0] * grid[1]) / (ref[0] * ref[1])
        self.face_bytes_total = _FACE_DOUBLES_TOTAL * 8.0 * face_scale

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    @property
    def serial_mix(self) -> InstructionMix:
        """DOP = 1 setup work."""
        return self._total_mix.scaled(_SERIAL_FRACTION)

    @property
    def sweep_mix(self) -> InstructionMix:
        """Work inside the three directional sweeps."""
        return self._total_mix.scaled(
            (1.0 - _SERIAL_FRACTION) * _SWEEP_FRACTION
        )

    @property
    def rhs_mix(self) -> InstructionMix:
        """Data-parallel RHS computation."""
        return self._total_mix.scaled(
            (1.0 - _SERIAL_FRACTION) * (1.0 - _SWEEP_FRACTION)
        )

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        """Sweeps are 1/K-serial (pipeline equivalence, as for LU)."""
        sweep = self.sweep_mix
        pipeline_serial = sweep.scaled(1.0 / self.sweep_blocks)
        pipeline_parallel = sweep.scaled(1.0 - 1.0 / self.sweep_blocks)
        return (
            DopComponent(1, self.serial_mix + pipeline_serial),
            DopComponent(max_dop, pipeline_parallel + self.rhs_mix),
        )

    def boundary_bytes(self, n_ranks: int) -> float:
        """Per-message boundary payload at ``n_ranks``."""
        n = self.check_ranks(n_ranks)
        if n == 1:
            return 0.0
        return self.face_bytes_total / n

    def message_profile(self, n_ranks: int) -> MessageProfile:
        n = self.check_ranks(n_ranks)
        if n == 1:
            return MessageProfile(0.0, 0.0)
        per_iteration = 3.0 * self.sweep_blocks
        return MessageProfile(
            critical_messages=self.iterations * per_iteration,
            nbytes=self.boundary_bytes(n),
        )

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_ranks(n_ranks)
        sim_iters = self.sim_iterations
        rhs_per_iter = self.rhs_mix.scaled(1.0 / (sim_iters * n))
        sweep_per_iter = self.sweep_mix.scaled(1.0 / (3 * sim_iters))
        block_mix = sweep_per_iter.scaled(1.0 / (self.sweep_blocks * n))
        nbytes = self.boundary_bytes(n)

        phase_list: list[Phase] = [
            SerialComputePhase("setup", self.serial_mix)
        ]
        for it in range(sim_iters):
            phase_list.append(ComputePhase(f"rhs[{it}]", rhs_per_iter))
            for axis, reverse in (("x", False), ("y", True), ("z", False)):
                phase_list.append(
                    PipelinedSweepPhase(
                        f"{axis}solve[{it}]",
                        block_mix,
                        self.sweep_blocks,
                        nbytes,
                        reverse=reverse,
                    )
                )
            phase_list.append(AllreducePhase(f"norm[{it}]", 40.0))
        return phase_list
