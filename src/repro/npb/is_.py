"""IS — integer sort (extension beyond the paper's three codes).

NPB IS ranks a large array of small integers by bucket sort.  Its
power-aware personality is the most communication-extreme of the
suite:

* the local ranking is cheap integer work with a streaming (OFF-chip
  heavy) access pattern;
* each iteration redistributes all keys with an all-to-all-v — like
  FT's transpose but with *less* compute to amortize it, so speedup
  saturates even earlier and frequency scaling buys almost nothing at
  scale.

Loosely calibrated (class A ≈ 12 s sequential at 600 MHz).  Provided
for the examples, not validated against the paper.
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllreducePhase,
    AlltoallPhase,
    ComputePhase,
    Phase,
)

__all__ = ["ISBenchmark"]

#: Class-A total instruction count (≈12 s at 600 MHz).
_CLASS_A_INSTRUCTIONS = 2.4e9

#: Counting/bucketing: streaming integer work, strong memory component.
_MIX_FRACTIONS = {"cpu": 0.38, "l1": 0.47, "l2": 0.10, "mem": 0.05}

#: Bytes per key (one 32-bit integer).
_KEY_BYTES = 4.0


class ISBenchmark(BenchmarkModel):
    """Workload model of NPB IS."""

    name = "is"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        super().__init__(problem_class)
        pc = self.problem_class
        scale = 2.0 ** (
            pc.is_log2_keys - ProblemClass.A.is_log2_keys
        )
        self._total_mix = InstructionMix.from_fractions(
            _CLASS_A_INSTRUCTIONS * scale, **_MIX_FRACTIONS
        )
        self.iterations = pc.is_iterations
        #: Total key volume redistributed each iteration.
        self.keys_bytes = (2.0**pc.is_log2_keys) * _KEY_BYTES

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        return (DopComponent(max_dop, self._total_mix),)

    def redistribution_bytes_per_pair(self, n_ranks: int) -> float:
        """Keys each rank ships each peer per iteration (uniform keys)."""
        n = self.check_ranks(n_ranks)
        return self.keys_bytes / float(n * n)

    def message_profile(self, n_ranks: int) -> MessageProfile:
        n = self.check_ranks(n_ranks)
        if n == 1:
            return MessageProfile(0.0, 0.0)
        return MessageProfile(
            critical_messages=float(self.iterations * (n - 1)),
            nbytes=self.redistribution_bytes_per_pair(n),
        )

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_ranks(n_ranks)
        per_iter = self._total_mix.scaled(1.0 / (self.iterations * n))
        pair_bytes = self.redistribution_bytes_per_pair(n)
        phase_list: list[Phase] = []
        for it in range(self.iterations):
            phase_list.append(ComputePhase(f"rank-keys[{it}]", per_iter))
            if n > 1:
                phase_list.append(
                    AlltoallPhase(f"redistribute[{it}]", pair_bytes)
                )
            phase_list.append(AllreducePhase(f"verify[{it}]", 8.0))
        return phase_list
