"""FT — the 3-D FFT PDE benchmark (paper §4.3).

FT solves a 3-D partial differential equation with forward/inverse
FFTs.  Parallel FT iterates through four phases (paper §4.3):
*computation phase 1* (evolve + local FFTs), a *reduction phase*
(checksum), *computation phase 2* (remaining FFT dimension) and an
*all-to-all communication phase* (the distributed transpose).  Its
published signatures, all of which this model must reproduce:

* execution time *rises* from 1 to 2 processors — the transpose's
  network cost exceeds the halved computation;
* speedup at the base frequency recovers to ≈2.9 by 16 processors and
  flattens (sub-linear: the all-to-all does not shrink as fast as the
  compute);
* sequential frequency speedup is sub-linear (1.6 at 1400 MHz in
  Figure 2b's N = 1 row; ≈1.9 measured on times in §4.3 point 2)
  because of its sizable OFF-chip (memory) workload;
* frequency scaling's benefit *diminishes* as nodes are added, because
  the frequency-insensitive overhead ``T(w_PO^OFF, f_OFF)`` dominates
  (w_PO^ON ≈ 0).

CALIBRATION (class A)
---------------------
* Sequential time at 600 MHz ≈ 65 s (Figure 2a), of which ≈17.75 s is
  OFF-chip (memory) time — that ratio fixes the measured sequential
  frequency speedup at ≈1.9.
* The transpose moves the full 256×256×128 complex-double dataset
  (134 MB) every iteration: each rank sends ``dataset/N²`` bytes to
  every peer, through the congested 100 Mb switch.
* Six iterations (class A), each: compute1 (60 %), checksum reduction,
  compute2 (40 %), transpose all-to-all.
"""

from __future__ import annotations

import math
import typing as _t

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.errors import ConfigurationError
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllreducePhase,
    AlltoallPhase,
    ComputePhase,
    Phase,
    SerialComputePhase,
)

__all__ = ["FTBenchmark", "Transpose2DPhase"]

#: Bytes per grid point (one complex double).
_BYTES_PER_POINT = 16.0

#: Class-A ON-chip instruction count (calibrated: 47.25 s of ON-chip
#: time at 600 MHz with the weighted CPI below).
_CLASS_A_ON_CHIP = 1.0971e10

#: Class-A OFF-chip instruction count (calibrated: 17.75 s at the
#: 140 ns low-frequency bus latency).
_CLASS_A_OFF_CHIP = 1.2679e8

#: ON-chip level weights: FFT butterflies stream through L1 with a
#: noticeable L2 component (the "larger memory footprint than EP").
_ON_CHIP_WEIGHTS = {"cpu": 0.45, "l1": 0.48, "l2": 0.07}

#: Fraction of the workload that is serial seeding / index setup.
_SERIAL_FRACTION = 0.001

#: Fraction that is (parallel) one-time setup outside the iterations.
_SETUP_FRACTION = 0.02

#: Split of each iteration's compute between phase 1 and phase 2.
_COMPUTE1_SHARE = 0.6

#: The per-iteration checksum reduction combines a few complex values.
_CHECKSUM_BYTES = 32.0


class Transpose2DPhase(Phase):
    """The 2-D decomposition's transpose: row then column alltoalls.

    With ranks arranged in a √N × √N grid, the distributed transpose
    becomes two alltoalls over √N-rank sub-communicators (rows, then
    columns), each redistributing the rank's full slab within its
    group.  Sub-communicators are built once per rank via
    ``MPI_Comm_split`` and cached in the context's scratch space.
    """

    def __init__(self, label: str, dataset_bytes: float) -> None:
        super().__init__(label)
        self.dataset_bytes = float(dataset_bytes)

    def execute(self, ctx) -> _t.Generator:
        ctx.phase(self.label)
        if ctx.size == 1:
            return
        side = math.isqrt(ctx.size)
        row = ctx.scratch.get("ft2d_row")
        col = ctx.scratch.get("ft2d_col")
        if row is None:
            row = yield from ctx.split(color=ctx.rank // side)
            col = yield from ctx.split(color=ctx.rank % side)
            ctx.scratch["ft2d_row"] = row
            ctx.scratch["ft2d_col"] = col
        # Each stage redistributes this rank's slab across its group.
        per_pair = self.dataset_bytes / ctx.size / side
        yield from row.alltoall(per_pair)
        yield from col.alltoall(per_pair)


class FTBenchmark(BenchmarkModel):
    """Workload model of NPB FT.

    Parameters
    ----------
    problem_class:
        NPB class letter.
    decomposition:
        ``"1d"`` (slab decomposition with one global alltoall per
        transpose — the paper's configuration) or ``"2d"`` (pencil
        decomposition: row + column alltoalls over √N-rank
        sub-communicators; requires square rank counts).
    """

    name = "ft"

    def __init__(
        self,
        problem_class: ProblemClass | str = ProblemClass.A,
        decomposition: str = "1d",
    ) -> None:
        super().__init__(problem_class)
        if decomposition not in ("1d", "2d"):
            raise ConfigurationError(
                f"decomposition must be '1d' or '2d': {decomposition!r}"
            )
        self.decomposition = decomposition
        pc = self.problem_class
        # Per-iteration work scales with grid points; total with the
        # iteration count.
        per_iter_scale = pc.ft_scale()
        iter_ratio = pc.ft_iterations / ProblemClass.A.ft_iterations
        scale = per_iter_scale * iter_ratio
        on = _CLASS_A_ON_CHIP * scale
        off = _CLASS_A_OFF_CHIP * scale
        self._total_mix = InstructionMix(
            cpu=on * _ON_CHIP_WEIGHTS["cpu"],
            l1=on * _ON_CHIP_WEIGHTS["l1"],
            l2=on * _ON_CHIP_WEIGHTS["l2"],
            mem=off,
        )
        nx, ny, nz = pc.ft_grid
        #: Total dataset size moved by each transpose.
        self.dataset_bytes = float(nx * ny * nz) * _BYTES_PER_POINT
        self.iterations = pc.ft_iterations

    # -- model-side description ---------------------------------------------

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    @property
    def serial_mix(self) -> InstructionMix:
        """DOP = 1 seeding/setup work."""
        return self._total_mix.scaled(_SERIAL_FRACTION)

    @property
    def parallel_mix(self) -> InstructionMix:
        """Everything that scales with rank count."""
        return self._total_mix.scaled(1.0 - _SERIAL_FRACTION)

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        return (
            DopComponent(1, self.serial_mix),
            DopComponent(max_dop, self.parallel_mix),
        )

    def transpose_bytes_per_pair(self, n_ranks: int) -> float:
        """Bytes each rank sends each peer in one transpose."""
        n = self.check_ranks(n_ranks)
        return self.dataset_bytes / float(n * n)

    def check_decomposition_ranks(self, n_ranks: int) -> int:
        """Validate the rank count against the decomposition (2-D needs
        a perfect square)."""
        n = self.check_ranks(n_ranks)
        if self.decomposition == "2d" and math.isqrt(n) ** 2 != n:
            raise ConfigurationError(
                f"2-D FT needs a square rank count, got {n}"
            )
        return n

    def message_profile(self, n_ranks: int) -> MessageProfile:
        """Critical-path messages per transpose: (N−1) pairwise sends
        for 1-D; 2·(√N−1) group sends (of √N-fold larger payloads)
        for 2-D."""
        n = self.check_decomposition_ranks(n_ranks)
        if n == 1:
            return MessageProfile(0.0, 0.0)
        if self.decomposition == "2d":
            side = math.isqrt(n)
            return MessageProfile(
                critical_messages=float(
                    self.iterations * 2 * (side - 1)
                ),
                nbytes=self.dataset_bytes / n / side,
            )
        return MessageProfile(
            critical_messages=float(self.iterations * (n - 1)),
            nbytes=self.transpose_bytes_per_pair(n),
        )

    def concurrent_flows(self, n_ranks: int) -> float:
        """Every rank sends during the transpose: N concurrent flows."""
        n = self.check_decomposition_ranks(n_ranks)
        return float(n) if n > 1 else 1.0

    # -- executable phases ------------------------------------------------------

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_decomposition_ranks(n_ranks)
        setup_mix = self.parallel_mix.scaled(_SETUP_FRACTION / n)
        iter_budget = self.parallel_mix.scaled(
            (1.0 - _SETUP_FRACTION) / self.iterations / n
        )
        compute1 = iter_budget.scaled(_COMPUTE1_SHARE)
        compute2 = iter_budget.scaled(1.0 - _COMPUTE1_SHARE)
        pair_bytes = self.transpose_bytes_per_pair(n)

        phase_list: list[Phase] = [
            SerialComputePhase("seed", self.serial_mix),
            ComputePhase("setup", setup_mix),
        ]
        for it in range(self.iterations):
            phase_list.append(ComputePhase(f"compute1[{it}]", compute1))
            phase_list.append(
                AllreducePhase(f"checksum[{it}]", _CHECKSUM_BYTES)
            )
            phase_list.append(ComputePhase(f"compute2[{it}]", compute2))
            if n > 1:
                if self.decomposition == "2d":
                    phase_list.append(
                        Transpose2DPhase(
                            f"transpose[{it}]", self.dataset_bytes
                        )
                    )
                else:
                    phase_list.append(
                        AlltoallPhase(f"transpose[{it}]", pair_bytes)
                    )
        return phase_list
