"""Benchmark-model base class.

A :class:`BenchmarkModel` describes one NPB code well enough to (a) run
it on the simulated cluster and (b) feed the analytical model:

* :meth:`BenchmarkModel.phases` — the executable phase list for a rank
  count (drives the simulator).
* :meth:`BenchmarkModel.total_mix` — the global instruction mix (what
  hardware counters would read on a sequential run).
* :meth:`BenchmarkModel.dop_components` — the DOP spectrum for the
  Eq. 9/10 model.
* :meth:`BenchmarkModel.message_profile` — the communication profile
  the FP parameterization multiplies by per-message times.
"""

from __future__ import annotations

import abc
import typing as _t

from repro.cluster.machine import Cluster
from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile, Workload
from repro.errors import ConfigurationError
from repro.mpi.program import RankContext, RunResult, run_program
from repro.npb.classes import ProblemClass
from repro.npb.phases import Phase

__all__ = ["BenchmarkModel"]


class BenchmarkModel(abc.ABC):
    """One NPB code as a simulatable + modelable workload.

    Parameters
    ----------
    problem_class:
        NPB class letter; defaults to A (the paper's scale).
    """

    #: Short lower-case benchmark name ("ep", "ft", ...).
    name: str = "benchmark"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        self.problem_class = ProblemClass.parse(problem_class)

    # -- abstract surface ---------------------------------------------------

    @abc.abstractmethod
    def phases(self, n_ranks: int) -> list[Phase]:
        """The executable phase sequence for one rank count."""

    @abc.abstractmethod
    def total_mix(self) -> InstructionMix:
        """The global (all ranks, whole run) instruction mix."""

    @abc.abstractmethod
    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        """The DOP spectrum of :meth:`total_mix`, capped at ``max_dop``."""

    def message_profile(self, n_ranks: int) -> MessageProfile:
        """Critical-path communication profile at ``n_ranks``.

        Defaults to "no communication" (EP-style); communication-bound
        models override.
        """
        return MessageProfile(critical_messages=0.0, nbytes=0.0)

    def concurrent_flows(self, n_ranks: int) -> float:
        """Switch flows concurrently active at communication steady state.

        The analytic backend scales wire serialization by the
        network's congestion penalty at this concurrency, mirroring
        what the simulated switch charges a transfer that starts while
        others are active.  Defaults to 1 (uncontended); dense
        exchanges override — FT's transpose keeps every rank's port
        busy at once, LU's sweep keeps the whole neighbour chain
        streaming.
        """
        return 1.0

    # -- derived conveniences ----------------------------------------------------

    def check_ranks(self, n_ranks: int) -> int:
        """Validate a rank count and return it as an int."""
        if n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1: {n_ranks}")
        return int(n_ranks)

    def workload(self, max_dop: int) -> Workload:
        """The model-side :class:`~repro.core.workload.Workload`."""
        return Workload(
            f"{self.name}.{self.problem_class.value}",
            self.dop_components(max_dop),
        )

    def rank_program(
        self, n_ranks: int
    ) -> _t.Callable[[RankContext], _t.Generator]:
        """A rank program executing this benchmark's phases in order."""
        n_ranks = self.check_ranks(n_ranks)
        phase_list = self.phases(n_ranks)

        def program(ctx: RankContext) -> _t.Generator:
            if ctx.size != n_ranks:
                raise ConfigurationError(
                    f"program built for {n_ranks} ranks, run on {ctx.size}"
                )
            for phase in phase_list:
                yield from phase.execute(ctx)

        program.__name__ = f"{self.name}_{self.problem_class.value}"
        return program

    def run(
        self, cluster: Cluster, ranks: _t.Sequence[int] | None = None
    ) -> RunResult:
        """Execute this benchmark on a cluster and return the result."""
        n_ranks = len(ranks) if ranks is not None else cluster.n_nodes
        return run_program(cluster, self.rank_program(n_ranks), ranks=ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} class {self.problem_class.value}>"
