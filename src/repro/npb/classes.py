"""NPB problem classes.

NPB defines lettered problem classes of increasing size.  The paper
does not state the class it ran; the published execution times
(~300 s for EP and ~65 s for FT sequentially at 600 MHz) are consistent
with **class A**, which is therefore the default everywhere.

Class scaling here follows the official NPB definitions for the
quantities that matter to the models: EP doubles per class step, FT/LU
grid dimensions, iteration counts.  Workload instruction counts scale
with the per-class operation counts.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError

__all__ = ["ProblemClass"]


class ProblemClass(enum.Enum):
    """NPB problem classes, smallest to largest."""

    S = "S"
    W = "W"
    A = "A"
    B = "B"

    @classmethod
    def parse(cls, value: "ProblemClass | str") -> "ProblemClass":
        """Accept either an enum member or its letter."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).upper())
        except ValueError:
            raise ConfigurationError(
                f"unknown problem class {value!r}; choose from "
                f"{[c.value for c in cls]}"
            ) from None

    # ------------------------------------------------------------------
    # Per-benchmark size tables (official NPB values)
    # ------------------------------------------------------------------

    @property
    def ep_log2_pairs(self) -> int:
        """EP: log2 of the number of random pairs (NPB ``M``)."""
        return {"S": 24, "W": 25, "A": 28, "B": 30}[self.value]

    @property
    def ft_grid(self) -> tuple[int, int, int]:
        """FT: 3-D grid dimensions."""
        return {
            "S": (64, 64, 64),
            "W": (128, 128, 32),
            "A": (256, 256, 128),
            "B": (512, 256, 256),
        }[self.value]

    @property
    def ft_iterations(self) -> int:
        """FT: number of time-step iterations."""
        return {"S": 6, "W": 6, "A": 6, "B": 20}[self.value]

    @property
    def lu_grid(self) -> tuple[int, int, int]:
        """LU: 3-D grid dimensions."""
        return {
            "S": (12, 12, 12),
            "W": (33, 33, 33),
            "A": (64, 64, 64),
            "B": (102, 102, 102),
        }[self.value]

    @property
    def lu_iterations(self) -> int:
        """LU: SSOR iteration count (NPB ``itmax``)."""
        return {"S": 50, "W": 300, "A": 250, "B": 250}[self.value]

    @property
    def cg_size(self) -> int:
        """CG: matrix dimension (NPB ``NA``)."""
        return {"S": 1400, "W": 7000, "A": 14000, "B": 75000}[self.value]

    @property
    def cg_iterations(self) -> int:
        """CG: outer iterations (NPB ``NITER``)."""
        return {"S": 15, "W": 15, "A": 15, "B": 75}[self.value]

    @property
    def mg_grid(self) -> tuple[int, int, int]:
        """MG: finest grid dimensions."""
        return {
            "S": (32, 32, 32),
            "W": (128, 128, 128),
            "A": (256, 256, 256),
            "B": (256, 256, 256),
        }[self.value]

    @property
    def mg_iterations(self) -> int:
        """MG: V-cycle count."""
        return {"S": 4, "W": 4, "A": 4, "B": 20}[self.value]

    @property
    def is_log2_keys(self) -> int:
        """IS: log2 of the number of keys to sort."""
        return {"S": 16, "W": 20, "A": 23, "B": 25}[self.value]

    @property
    def is_iterations(self) -> int:
        """IS: ranking iterations."""
        return 10

    # ------------------------------------------------------------------
    # Generic scale factors relative to class A
    # ------------------------------------------------------------------

    def ep_scale(self) -> float:
        """EP workload relative to class A."""
        return 2.0 ** (self.ep_log2_pairs - ProblemClass.A.ep_log2_pairs)

    def ft_scale(self) -> float:
        """FT per-iteration workload relative to class A (grid points)."""
        mine = self.ft_grid
        ref = ProblemClass.A.ft_grid
        return (mine[0] * mine[1] * mine[2]) / (ref[0] * ref[1] * ref[2])

    def lu_scale(self) -> float:
        """LU per-iteration workload relative to class A (grid points)."""
        mine = self.lu_grid
        ref = ProblemClass.A.lu_grid
        return (mine[0] * mine[1] * mine[2]) / (ref[0] * ref[1] * ref[2])
