"""The NPB pseudorandom number generator (``randlc``/``vranlc``).

NPB benchmarks — EP above all — are specified in terms of one concrete
generator: the 48-bit linear congruential sequence

    x_{k+1} = a · x_k  (mod 2^46),      a = 5^13,

returning uniforms ``x_k · 2^-46`` in (0, 1).  Its defining feature for
parallel use is O(log k) *jump-ahead*: rank ``r`` can seed itself at
element ``r · chunk`` of the global sequence without generating the
prefix, which is how EP splits one well-defined random stream across
processors with no communication.

This implementation works in exact integer arithmetic (Python ints),
which reproduces the Fortran double-double trick bit-for-bit; numpy
vectorization generates batches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Randlc", "MULTIPLIER", "MODULUS", "DEFAULT_SEED"]

#: The NPB multiplier a = 5^13.
MULTIPLIER = 5**13
#: The modulus 2^46.
MODULUS = 1 << 46
#: EP's specified starting seed.
DEFAULT_SEED = 271828183


class Randlc:
    """The NPB 48-bit linear congruential generator.

    Parameters
    ----------
    seed:
        Starting value ``x_0`` (odd, < 2^46).  Defaults to EP's
        271828183.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        seed = int(seed)
        if not 0 < seed < MODULUS:
            raise ConfigurationError(
                f"seed must be in (0, 2^46): {seed}"
            )
        if seed % 2 == 0:
            raise ConfigurationError(
                f"seed must be odd for a maximal-period LCG: {seed}"
            )
        self._x = seed

    # -- scalar interface ----------------------------------------------------

    @property
    def state(self) -> int:
        """The current integer state ``x_k``."""
        return self._x

    def next(self) -> float:
        """The next uniform deviate in (0, 1) (Fortran ``randlc``)."""
        self._x = (MULTIPLIER * self._x) % MODULUS
        return self._x / MODULUS

    # -- batch interface ------------------------------------------------------

    def vranlc(self, n: int) -> np.ndarray:
        """The next ``n`` uniforms as a numpy array (Fortran ``vranlc``)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0: {n}")
        out = np.empty(n, dtype=np.float64)
        x = self._x
        for i in range(n):
            x = (MULTIPLIER * x) % MODULUS
            out[i] = x / MODULUS
        self._x = x
        return out

    # -- jump-ahead ------------------------------------------------------------

    @staticmethod
    def power_mod(exponent: int) -> int:
        """``a^exponent mod 2^46`` by binary exponentiation."""
        if exponent < 0:
            raise ConfigurationError(f"exponent must be >= 0: {exponent}")
        return pow(MULTIPLIER, exponent, MODULUS)

    def jump(self, k: int) -> "Randlc":
        """Advance the state by ``k`` steps in O(log k) time.

        ``g.jump(k)`` leaves ``g`` as if :meth:`next` had been called
        ``k`` times.  Returns ``self`` for chaining.
        """
        if k < 0:
            raise ConfigurationError(f"k must be >= 0: {k}")
        self._x = (self.power_mod(k) * self._x) % MODULUS
        return self

    @classmethod
    def for_chunk(
        cls, chunk_index: int, chunk_size: int, seed: int = DEFAULT_SEED
    ) -> "Randlc":
        """A generator positioned at the start of one chunk.

        The EP decomposition: rank ``r`` of the global stream uses
        ``for_chunk(r, pairs_per_rank * 2)`` and generates its share
        independently — the sequence concatenated over ranks is
        exactly the sequential stream.
        """
        if chunk_index < 0 or chunk_size < 0:
            raise ConfigurationError(
                f"invalid chunk: index={chunk_index}, size={chunk_size}"
            )
        gen = cls(seed)
        gen.jump(chunk_index * chunk_size)
        return gen
