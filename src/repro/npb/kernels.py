"""Reference numeric kernels for the NPB workload models.

Each modelled benchmark has a small numpy implementation of its actual
mathematics, runnable at class-S-like scale.  They serve three roles:

1. document precisely *what* each workload model abstracts;
2. let tests check the phase structure against real data flow (e.g.
   the FT kernel's transpose really moves the whole dataset);
3. act as runnable examples of the algorithms the simulated cluster
   executes.

The kernels do not feed timing — the models' instruction mixes are
calibrated to the paper's published counters and times (see each
model's CALIBRATION notes), exactly as the paper derives them from
PAPI measurements rather than from source inspection.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "EPResult",
    "ep_kernel",
    "FTResult",
    "ft_kernel",
    "LUResult",
    "lu_ssor_kernel",
    "cg_kernel",
]


# ---------------------------------------------------------------------------
# EP: Marsaglia polar Gaussian pairs with annular tallies
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class EPResult:
    """Tallies of one EP run."""

    sx: float
    sy: float
    counts: np.ndarray  # ten annular bin counts
    pairs_accepted: int


def ep_kernel(
    log2_pairs: int, seed: int = 271828183, generator: str = "numpy"
) -> EPResult:
    """The EP computation: uniform pairs → Gaussian deviates → tallies.

    Generates ``2^log2_pairs`` candidate pairs, applies the Marsaglia
    polar method (acceptance ≈ π/4) and accumulates the sums and the
    ten annular bin counts NPB EP reports.

    ``generator`` selects the uniform source: ``"numpy"`` (fast,
    default) or ``"randlc"`` — NPB's own 48-bit LCG
    (:class:`repro.npb.randlc.Randlc`), whose jump-ahead splitting is
    what makes real EP embarrassingly parallel.
    """
    if not 0 <= log2_pairs <= 30:
        raise ConfigurationError(
            f"log2_pairs out of sane range [0, 30]: {log2_pairs}"
        )
    if generator not in ("numpy", "randlc"):
        raise ConfigurationError(
            f"generator must be 'numpy' or 'randlc': {generator!r}"
        )
    n = 1 << log2_pairs
    if generator == "numpy":
        rng = np.random.default_rng(seed)
        draw = lambda m: rng.random(m)  # noqa: E731
    else:
        from repro.npb.randlc import Randlc

        lcg = Randlc(seed)
        draw = lambda m: lcg.vranlc(m)  # noqa: E731
    # Work in manageable chunks to bound memory.
    chunk = min(n, 1 << 20)
    sx = sy = 0.0
    counts = np.zeros(10, dtype=np.int64)
    accepted = 0
    remaining = n
    while remaining > 0:
        m = min(chunk, remaining)
        remaining -= m
        xj = 2.0 * draw(m) - 1.0
        yj = 2.0 * draw(m) - 1.0
        t = xj * xj + yj * yj
        mask = (t <= 1.0) & (t > 0.0)
        tm = t[mask]
        factor = np.sqrt(-2.0 * np.log(tm) / tm)
        gx = xj[mask] * factor
        gy = yj[mask] * factor
        sx += float(gx.sum())
        sy += float(gy.sum())
        bins = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
        bins = np.clip(bins, 0, 9)
        counts += np.bincount(bins, minlength=10)
        accepted += int(mask.sum())
    return EPResult(sx=sx, sy=sy, counts=counts, pairs_accepted=accepted)


# ---------------------------------------------------------------------------
# FT: 3-D PDE via FFT with per-iteration evolution and checksums
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FTResult:
    """Checksums of one FT run."""

    checksums: tuple[complex, ...]
    shape: tuple[int, int, int]


def ft_kernel(
    shape: tuple[int, int, int] = (32, 32, 32),
    iterations: int = 6,
    alpha: float = 1e-6,
    seed: int = 314159265,
) -> FTResult:
    """The FT computation: spectral solution of ∂u/∂t = α∇²u.

    Forward-FFT a random initial state once, then per iteration apply
    the spectral evolution factor, inverse-FFT and record the NPB-style
    checksum.  (The distributed version transposes the array between
    the FFT dimensions — the all-to-all the model charges.)
    """
    nx, ny, nz = shape
    if min(shape) < 2:
        raise ConfigurationError(f"degenerate FT grid: {shape}")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1: {iterations}")
    rng = np.random.default_rng(seed)
    u0 = rng.random(shape) + 1j * rng.random(shape)
    u_hat = np.fft.fftn(u0)

    kx = np.fft.fftfreq(nx) * nx
    ky = np.fft.fftfreq(ny) * ny
    kz = np.fft.fftfreq(nz) * nz
    ksq = (
        kx[:, None, None] ** 2
        + ky[None, :, None] ** 2
        + kz[None, None, :] ** 2
    )

    checksums = []
    total = nx * ny * nz
    for it in range(1, iterations + 1):
        factor = np.exp(-4.0 * alpha * np.pi**2 * ksq * it)
        u_t = np.fft.ifftn(u_hat * factor)
        # NPB checksum: a strided sample of 1024 entries.
        flat = u_t.reshape(-1)
        idx = (np.arange(1024) * 17) % total
        checksums.append(complex(flat[idx].sum()))
    return FTResult(checksums=tuple(checksums), shape=shape)


# ---------------------------------------------------------------------------
# LU: SSOR sweeps on a regular grid (scalar stand-in for the 5x5 blocks)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class LUResult:
    """Convergence record of one SSOR run."""

    residuals: tuple[float, ...]
    iterations: int


def lu_ssor_kernel(
    n: int = 24,
    iterations: int = 20,
    omega: float = 1.2,
    seed: int = 12345,
) -> LUResult:
    """SSOR iteration for a 3-D Poisson system.

    Performs the lower (forward) and upper (backward) wavefront sweeps
    of symmetric successive over-relaxation — the dependency structure
    that makes LU's parallelism pipeline-limited.  Returns the residual
    history, which must decrease monotonically for a diagonally
    dominant system.
    """
    if n < 3:
        raise ConfigurationError(f"grid too small: {n}")
    if not 0 < omega < 2:
        raise ConfigurationError(f"omega must be in (0, 2): {omega}")
    rng = np.random.default_rng(seed)
    b = rng.random((n, n, n))
    u = np.zeros((n, n, n))

    def residual_norm() -> float:
        r = b.copy()
        r[1:-1, 1:-1, 1:-1] -= (
            6.0 * u[1:-1, 1:-1, 1:-1]
            - u[:-2, 1:-1, 1:-1]
            - u[2:, 1:-1, 1:-1]
            - u[1:-1, :-2, 1:-1]
            - u[1:-1, 2:, 1:-1]
            - u[1:-1, 1:-1, :-2]
            - u[1:-1, 1:-1, 2:]
        )
        return float(np.sqrt((r[1:-1, 1:-1, 1:-1] ** 2).mean()))

    def sweep(reverse: bool) -> None:
        planes = range(n - 2, 0, -1) if reverse else range(1, n - 1)
        for i in planes:
            gs = (
                b[i, 1:-1, 1:-1]
                + u[i - 1, 1:-1, 1:-1]
                + u[i + 1, 1:-1, 1:-1]
                + u[i, :-2, 1:-1]
                + u[i, 2:, 1:-1]
                + u[i, 1:-1, :-2]
                + u[i, 1:-1, 2:]
            ) / 6.0
            u[i, 1:-1, 1:-1] += omega * (gs - u[i, 1:-1, 1:-1])

    residuals = [residual_norm()]
    for _ in range(iterations):
        sweep(reverse=False)  # blts
        sweep(reverse=True)  # buts
        residuals.append(residual_norm())
    return LUResult(residuals=tuple(residuals), iterations=iterations)


# ---------------------------------------------------------------------------
# CG: plain conjugate gradient (reference for the CG model)
# ---------------------------------------------------------------------------

def cg_kernel(
    n: int = 256, steps: int = 25, seed: int = 8675309
) -> tuple[float, int]:
    """Conjugate gradient on a random SPD system.

    Returns ``(final residual norm, steps run)``; the residual must
    shrink by orders of magnitude, validating the reference.
    """
    if n < 2:
        raise ConfigurationError(f"system too small: {n}")
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    a = m @ m.T + n * np.eye(n)  # SPD, well conditioned
    b = rng.random(n)
    x = np.zeros(n)
    r = b - a @ x
    p = r.copy()
    rs = float(r @ r)
    for step in range(1, steps + 1):
        ap = a @ p
        alpha = rs / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_next = float(r @ r)
        if rs_next < 1e-24:
            return (rs_next**0.5, step)
        p = r + (rs_next / rs) * p
        rs = rs_next
    return (rs**0.5, steps)
