"""EP — the Embarrassingly Parallel benchmark (paper §4.2).

EP evaluates an integral with pseudorandom trials (Marsaglia polar
Gaussian pairs) and tabulates the pairs into ten annular bins.  Its
relevant characteristics, straight from the paper:

* cluster-wide computation with "virtually no inter-processor
  communication";
* "the ratio of memory operations to computations on each node is very
  low" — the workload is essentially all ON-chip;
* speedup scales linearly in both N (15.9 at 16 nodes) and f (2.34 at
  1400 MHz), and the combined speedup is nearly the product (36.5
  measured vs 37.3 = 16 × 2.33 predicted by Eq. 12).

CALIBRATION (class A)
---------------------
* Sequential time at 600 MHz ≈ 300 s (Figure 1a) ⇒ total instruction
  count ``w ≈ 1.0e11`` with an instruction mix whose weighted
  ``CPI_ON ≈ 1.81`` (register-dominated, tiny L2/memory tail).
* The serial setup fraction is 0.05 % — enough to pull 16-node speedup
  from 16.0 down to the paper's ≈15.9.
* Communication: the final tabulation is three 80-byte allreduces
  (the ``sx/sy/q`` reductions of real EP).
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllreducePhase,
    ComputePhase,
    Phase,
    SerialComputePhase,
)
from repro.units import doubles

__all__ = ["EPBenchmark"]

#: Class-A total instruction count (calibrated to ~300 s at 600 MHz).
_CLASS_A_INSTRUCTIONS = 1.0e11

#: Per-level fractions of the EP workload: register-dominated with a
#: small L1 tail and negligible L2/memory traffic ("very low" memory
#: ratio per the paper).
_MIX_FRACTIONS = {"cpu": 0.62, "l1": 0.37949, "l2": 0.0005, "mem": 1e-5}

#: Fraction of the workload that is serial setup (seeding, constants).
_SERIAL_FRACTION = 5e-4

#: The three closing reductions each combine ten doubles of tallies.
_REDUCTION_DOUBLES = 10
_N_REDUCTIONS = 3


class EPBenchmark(BenchmarkModel):
    """Workload model of NPB EP."""

    name = "ep"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        super().__init__(problem_class)
        total = _CLASS_A_INSTRUCTIONS * self.problem_class.ep_scale()
        self._total_mix = InstructionMix.from_fractions(
            total, **_MIX_FRACTIONS
        )

    # -- model-side description -------------------------------------------------

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    @property
    def serial_mix(self) -> InstructionMix:
        """The DOP = 1 setup portion."""
        return self._total_mix.scaled(_SERIAL_FRACTION)

    @property
    def parallel_mix(self) -> InstructionMix:
        """The embarrassingly parallel main loop."""
        return self._total_mix.scaled(1.0 - _SERIAL_FRACTION)

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        return (
            DopComponent(1, self.serial_mix),
            DopComponent(max_dop, self.parallel_mix),
        )

    def message_profile(self, n_ranks: int) -> MessageProfile:
        """Three small allreduces: ⌈log₂N⌉ critical messages each."""
        self.check_ranks(n_ranks)
        if n_ranks == 1:
            return MessageProfile(0.0, 0.0)
        rounds = max((n_ranks - 1).bit_length(), 1)
        return MessageProfile(
            critical_messages=_N_REDUCTIONS * rounds,
            nbytes=doubles(_REDUCTION_DOUBLES),
        )

    # -- executable phases -----------------------------------------------------

    def phases(self, n_ranks: int) -> list[Phase]:
        n_ranks = self.check_ranks(n_ranks)
        per_rank = self.parallel_mix.scaled(1.0 / n_ranks)
        phase_list: list[Phase] = [
            SerialComputePhase("setup", self.serial_mix),
            ComputePhase("gaussian-pairs", per_rank),
        ]
        for i in range(_N_REDUCTIONS):
            phase_list.append(
                AllreducePhase(
                    f"tally-reduce-{i}", doubles(_REDUCTION_DOUBLES)
                )
            )
        return phase_list
