"""CG — conjugate gradient (extension beyond the paper's three codes).

NPB CG estimates the largest eigenvalue of a sparse symmetric matrix
with inverse power iteration; each outer iteration runs 25 inner CG
steps.  Its power-aware personality sits between EP and FT:

* the sparse matrix-vector product has irregular access — a noticeably
  larger OFF-chip share than EP (so sub-linear frequency speedup);
* every inner step performs two tiny allreduces (dot products) — a
  *latency*-bound overhead that grows with log N, unlike FT's
  bandwidth-bound all-to-all;
* partition exchanges ship vector segments (ring allgather here).

Calibrated loosely (class A ≈ 45 s sequential at 600 MHz); CG is not
validated against the paper — it exists for the sweet-spot and
scheduling examples, where a latency-bound code contrasts with FT.
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllgatherPhase,
    AllreducePhase,
    ComputePhase,
    Phase,
    SerialComputePhase,
)

__all__ = ["CGBenchmark"]

#: Class-A total instruction count (≈45 s at 600 MHz).
_CLASS_A_INSTRUCTIONS = 1.05e10

#: Sparse matvec: streaming with indirect access — significant L2 and
#: memory shares.
_MIX_FRACTIONS = {"cpu": 0.40, "l1": 0.47, "l2": 0.10, "mem": 0.03}

_SERIAL_FRACTION = 0.002
_INNER_STEPS = 25
_DOT_BYTES = 8.0


class CGBenchmark(BenchmarkModel):
    """Workload model of NPB CG."""

    name = "cg"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        super().__init__(problem_class)
        pc = self.problem_class
        scale = (pc.cg_size / ProblemClass.A.cg_size) * (
            pc.cg_iterations / ProblemClass.A.cg_iterations
        )
        self._total_mix = InstructionMix.from_fractions(
            _CLASS_A_INSTRUCTIONS * scale, **_MIX_FRACTIONS
        )
        self.outer_iterations = pc.cg_iterations
        self.vector_bytes = pc.cg_size * 8.0

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    @property
    def serial_mix(self) -> InstructionMix:
        """DOP = 1 matrix-generation work."""
        return self._total_mix.scaled(_SERIAL_FRACTION)

    @property
    def parallel_mix(self) -> InstructionMix:
        """The iterative solve."""
        return self._total_mix.scaled(1.0 - _SERIAL_FRACTION)

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        return (
            DopComponent(1, self.serial_mix),
            DopComponent(max_dop, self.parallel_mix),
        )

    def message_profile(self, n_ranks: int) -> MessageProfile:
        """Dominated by the per-step vector allgather blocks."""
        n = self.check_ranks(n_ranks)
        if n == 1:
            return MessageProfile(0.0, 0.0)
        steps = self.outer_iterations * _INNER_STEPS
        return MessageProfile(
            critical_messages=float(steps * (n - 1)),
            nbytes=self.vector_bytes / n,
        )

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_ranks(n_ranks)
        steps = self.outer_iterations * _INNER_STEPS
        per_step = self.parallel_mix.scaled(1.0 / (steps * n))
        phase_list: list[Phase] = [
            SerialComputePhase("makea", self.serial_mix)
        ]
        for outer in range(self.outer_iterations):
            for inner in range(_INNER_STEPS):
                tagname = f"[{outer}.{inner}]"
                phase_list.append(ComputePhase(f"matvec{tagname}", per_step))
                if n > 1:
                    phase_list.append(
                        AllgatherPhase(
                            f"exchange{tagname}", self.vector_bytes / n
                        )
                    )
                phase_list.append(
                    AllreducePhase(f"dot-rho{tagname}", _DOT_BYTES)
                )
                phase_list.append(
                    AllreducePhase(f"dot-alpha{tagname}", _DOT_BYTES)
                )
        return phase_list
