"""SP — scalar-pentadiagonal solver (extension beyond the paper's codes).

NPB SP is BT's sibling: the same three directional sweeps per
iteration, but with scalar pentadiagonal systems instead of 5×5
blocks — much less computation per point relative to its
communication, so SP scales worse than BT on slow interconnects and
its frequency benefit saturates earlier.  (SP also runs ~2× the
iterations of BT at class A.)

Loosely calibrated (class A ≈ 550 s sequential at 600 MHz); provided
for suite coverage and the examples, not validated against the paper.
"""

from __future__ import annotations

from repro.cluster.workmix import InstructionMix
from repro.core.workload import DopComponent, MessageProfile
from repro.npb.base import BenchmarkModel
from repro.npb.classes import ProblemClass
from repro.npb.phases import (
    AllreducePhase,
    ComputePhase,
    Phase,
    PipelinedSweepPhase,
    SerialComputePhase,
)

__all__ = ["SPBenchmark"]

_GRIDS = {
    "S": (12, 12, 12),
    "W": (36, 36, 36),
    "A": (64, 64, 64),
    "B": (102, 102, 102),
}
_ITERATIONS = {"S": 100, "W": 400, "A": 400, "B": 400}

#: Class-A total instruction count (≈550 s at 600 MHz).
_CLASS_A_INSTRUCTIONS = 1.1e11

#: Scalar streaming sweeps: more cache traffic than BT's dense blocks.
_MIX_FRACTIONS = {"cpu": 0.42, "l1": 0.48, "l2": 0.08, "mem": 0.02}

_SERIAL_FRACTION = 0.001
_SWEEP_FRACTION = 0.65
_SWEEP_BLOCKS = 16
_SIM_BATCH = 40

#: Boundary payload: scalar face (1 double per point + RHS terms).
_FACE_DOUBLES_TOTAL = 64 * 64 * 2.0


class SPBenchmark(BenchmarkModel):
    """Workload model of NPB SP."""

    name = "sp"

    def __init__(
        self, problem_class: ProblemClass | str = ProblemClass.A
    ) -> None:
        super().__init__(problem_class)
        pc = self.problem_class
        grid = _GRIDS[pc.value]
        ref = _GRIDS["A"]
        scale = (
            (grid[0] * grid[1] * grid[2]) / (ref[0] * ref[1] * ref[2])
        ) * (_ITERATIONS[pc.value] / _ITERATIONS["A"])
        self._total_mix = InstructionMix.from_fractions(
            _CLASS_A_INSTRUCTIONS * scale, **_MIX_FRACTIONS
        )
        self.iterations = _ITERATIONS[pc.value]
        self.sim_iterations = max(self.iterations // _SIM_BATCH, 1)
        self.sweep_blocks = _SWEEP_BLOCKS
        face_scale = (grid[0] * grid[1]) / (ref[0] * ref[1])
        self.face_bytes_total = _FACE_DOUBLES_TOTAL * 8.0 * face_scale

    def total_mix(self) -> InstructionMix:
        return self._total_mix

    @property
    def serial_mix(self) -> InstructionMix:
        """DOP = 1 setup work."""
        return self._total_mix.scaled(_SERIAL_FRACTION)

    @property
    def sweep_mix(self) -> InstructionMix:
        """Work inside the three directional sweeps."""
        return self._total_mix.scaled(
            (1.0 - _SERIAL_FRACTION) * _SWEEP_FRACTION
        )

    @property
    def rhs_mix(self) -> InstructionMix:
        """Data-parallel RHS computation."""
        return self._total_mix.scaled(
            (1.0 - _SERIAL_FRACTION) * (1.0 - _SWEEP_FRACTION)
        )

    def dop_components(self, max_dop: int) -> tuple[DopComponent, ...]:
        sweep = self.sweep_mix
        pipeline_serial = sweep.scaled(1.0 / self.sweep_blocks)
        pipeline_parallel = sweep.scaled(1.0 - 1.0 / self.sweep_blocks)
        return (
            DopComponent(1, self.serial_mix + pipeline_serial),
            DopComponent(max_dop, pipeline_parallel + self.rhs_mix),
        )

    def boundary_bytes(self, n_ranks: int) -> float:
        """Per-message boundary payload at ``n_ranks``."""
        n = self.check_ranks(n_ranks)
        if n == 1:
            return 0.0
        return self.face_bytes_total / n

    def message_profile(self, n_ranks: int) -> MessageProfile:
        n = self.check_ranks(n_ranks)
        if n == 1:
            return MessageProfile(0.0, 0.0)
        per_iteration = 3.0 * self.sweep_blocks
        return MessageProfile(
            critical_messages=self.iterations * per_iteration,
            nbytes=self.boundary_bytes(n),
        )

    def phases(self, n_ranks: int) -> list[Phase]:
        n = self.check_ranks(n_ranks)
        sim_iters = self.sim_iterations
        rhs_per_iter = self.rhs_mix.scaled(1.0 / (sim_iters * n))
        sweep_per_iter = self.sweep_mix.scaled(1.0 / (3 * sim_iters))
        block_mix = sweep_per_iter.scaled(1.0 / (self.sweep_blocks * n))
        nbytes = self.boundary_bytes(n)

        phase_list: list[Phase] = [
            SerialComputePhase("setup", self.serial_mix)
        ]
        for it in range(sim_iters):
            phase_list.append(ComputePhase(f"rhs[{it}]", rhs_per_iter))
            for axis, reverse in (("x", False), ("y", True), ("z", False)):
                phase_list.append(
                    PipelinedSweepPhase(
                        f"{axis}solve[{it}]",
                        block_mix,
                        self.sweep_blocks,
                        nbytes,
                        reverse=reverse,
                    )
                )
            phase_list.append(AllreducePhase(f"rnorm[{it}]", 40.0))
        return phase_list
