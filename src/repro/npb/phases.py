"""Phase primitives for benchmark workload models.

A benchmark model is a sequence of *phases*; each phase knows how to
execute itself on a :class:`~repro.mpi.program.RankContext`.  Phases
carry a label so the profiler can attribute time (the granularity at
which the paper's DVS scheduling operates).

Available phases:

* :class:`ComputePhase` — data-parallel computation (an instruction mix
  per rank).
* :class:`SerialComputePhase` — DOP = 1 work: the root computes while
  everyone else waits at the closing broadcast.
* :class:`PipelinedSweepPhase` — wavefront computation (LU's SSOR
  sweeps): blocks flow rank-to-rank, creating genuine pipeline
  fill/drain imbalance (DOP between 1 and N).
* Collective wrappers: :class:`AlltoallPhase`, :class:`AllreducePhase`,
  :class:`ReducePhase`, :class:`BcastPhase`, :class:`BarrierPhase`,
  :class:`AllgatherPhase`.
"""

from __future__ import annotations

import abc
import typing as _t

from repro.cluster.workmix import InstructionMix
from repro.errors import ConfigurationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.program import RankContext

__all__ = [
    "Phase",
    "ComputePhase",
    "SerialComputePhase",
    "PipelinedSweepPhase",
    "AlltoallPhase",
    "AllreducePhase",
    "ReducePhase",
    "BcastPhase",
    "BarrierPhase",
    "AllgatherPhase",
    "NeighborExchangePhase",
]


class Phase(abc.ABC):
    """One labelled step of a benchmark's execution."""

    def __init__(self, label: str) -> None:
        self.label = str(label)

    @abc.abstractmethod
    def execute(self, ctx: "RankContext") -> _t.Generator:
        """Run this phase on one rank (a simulated-process generator)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label!r}>"


class ComputePhase(Phase):
    """Data-parallel computation: every rank executes its mix.

    ``mix`` is either one *per-rank* instruction mix applied to every
    rank (the model builder divides the global workload by the rank
    count before constructing phases), or a callable
    ``(rank, size) -> InstructionMix`` for statically imbalanced
    workloads (the load-imbalance case slack-reclamation DVFS targets).
    """

    def __init__(
        self,
        label: str,
        mix: InstructionMix
        | _t.Callable[[int, int], InstructionMix],
    ) -> None:
        super().__init__(label)
        self.mix = mix

    def mix_for(self, rank: int, size: int) -> InstructionMix:
        """The instruction mix one rank executes."""
        if callable(self.mix):
            return self.mix(rank, size)
        return self.mix

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        yield from ctx.compute(self.mix_for(ctx.rank, ctx.size))


class SerialComputePhase(Phase):
    """DOP = 1 computation: the root works, everyone waits.

    The wait is realized by the closing broadcast of ``sync_bytes``
    (the serial result being shipped out), which is also how real codes
    distribute the output of a serial section.
    """

    def __init__(
        self,
        label: str,
        mix: InstructionMix,
        root: int = 0,
        sync_bytes: float = 8.0,
    ) -> None:
        super().__init__(label)
        if sync_bytes < 0:
            raise ConfigurationError(f"sync_bytes must be >= 0: {sync_bytes}")
        self.mix = mix
        self.root = int(root)
        self.sync_bytes = float(sync_bytes)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        if ctx.size == 1:
            yield from ctx.compute(self.mix)
            return
        if ctx.rank == self.root % ctx.size:
            yield from ctx.compute(self.mix)
        yield from ctx.bcast(root=self.root % ctx.size, nbytes=self.sync_bytes)


class PipelinedSweepPhase(Phase):
    """A wavefront sweep: blocks of work flow from rank to rank.

    Models LU's SSOR lower/upper triangular solves.  The sweep splits
    into ``n_blocks`` dependent steps; for each block a rank must
    receive its predecessor's boundary data, compute, then forward its
    own boundary downstream.  The pipeline fills over the first N−1
    block-times and drains over the last N−1, so effective parallelism
    is ``n_blocks·N / (n_blocks + N − 1)`` — genuinely between 1 and N,
    which is exactly the limited-DOP behaviour the paper attributes to
    LU.

    Parameters
    ----------
    label:
        Phase label.
    block_mix:
        Per-rank instruction mix for **one block** of the sweep.
    n_blocks:
        Number of dependent wavefront steps.
    nbytes:
        Boundary-exchange message size (paper Table 6: 310 doubles at
        2 nodes, 155 at 4 — it halves with rank count; the caller
        computes it).
    reverse:
        ``False``: sweep rank 0 → N−1 (lower solve); ``True``: the
        mirrored upper solve.
    """

    def __init__(
        self,
        label: str,
        block_mix: InstructionMix,
        n_blocks: int,
        nbytes: float,
        reverse: bool = False,
    ) -> None:
        super().__init__(label)
        if n_blocks < 1:
            raise ConfigurationError(f"n_blocks must be >= 1: {n_blocks}")
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        self.block_mix = block_mix
        self.n_blocks = int(n_blocks)
        self.nbytes = float(nbytes)
        self.reverse = bool(reverse)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        if ctx.size == 1:
            for _ in range(self.n_blocks):
                yield from ctx.compute(self.block_mix)
            return
        if self.reverse:
            upstream = ctx.rank + 1 if ctx.rank + 1 < ctx.size else None
            downstream = ctx.rank - 1 if ctx.rank > 0 else None
        else:
            upstream = ctx.rank - 1 if ctx.rank > 0 else None
            downstream = ctx.rank + 1 if ctx.rank + 1 < ctx.size else None
        tag = 11 if not self.reverse else 12
        mix, nbytes = self.block_mix, self.nbytes
        for _ in range(self.n_blocks):
            if upstream is not None:
                yield from ctx.recv(upstream, tag)
            yield from ctx.compute(mix)
            if downstream is not None:
                yield from ctx.send(downstream, nbytes, tag)


class AlltoallPhase(Phase):
    """A full exchange of ``nbytes_per_pair`` between every rank pair."""

    def __init__(self, label: str, nbytes_per_pair: float) -> None:
        super().__init__(label)
        if nbytes_per_pair < 0:
            raise ConfigurationError(
                f"nbytes_per_pair must be >= 0: {nbytes_per_pair}"
            )
        self.nbytes_per_pair = float(nbytes_per_pair)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        yield from ctx.alltoall(self.nbytes_per_pair)


class AllreducePhase(Phase):
    """A cluster-wide reduction whose result lands everywhere."""

    def __init__(self, label: str, nbytes: float) -> None:
        super().__init__(label)
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        self.nbytes = float(nbytes)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        yield from ctx.allreduce(self.nbytes)


class ReducePhase(Phase):
    """A rooted reduction."""

    def __init__(self, label: str, nbytes: float, root: int = 0) -> None:
        super().__init__(label)
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        self.nbytes = float(nbytes)
        self.root = int(root)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        yield from ctx.reduce(root=self.root % ctx.size, nbytes=self.nbytes)


class BcastPhase(Phase):
    """A rooted broadcast."""

    def __init__(self, label: str, nbytes: float, root: int = 0) -> None:
        super().__init__(label)
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        self.nbytes = float(nbytes)
        self.root = int(root)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        yield from ctx.bcast(root=self.root % ctx.size, nbytes=self.nbytes)


class BarrierPhase(Phase):
    """A full synchronization."""

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        yield from ctx.barrier()


class NeighborExchangePhase(Phase):
    """Bidirectional nearest-neighbour exchange on a rank ring.

    Each rank sendrecvs ``nbytes`` with both ring neighbours — the
    halo-exchange pattern of stencil and multigrid codes.  A no-op at
    one rank.
    """

    def __init__(self, label: str, nbytes: float) -> None:
        super().__init__(label)
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        self.nbytes = float(nbytes)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        if ctx.size == 1:
            return
            yield  # pragma: no cover - generator marker
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        yield from ctx.sendrecv(
            right, self.nbytes, source=left, send_tag=21, recv_tag=21
        )
        yield from ctx.sendrecv(
            left, self.nbytes, source=right, send_tag=22, recv_tag=22
        )


class AllgatherPhase(Phase):
    """A ring allgather of one block per rank."""

    def __init__(self, label: str, nbytes_per_rank: float) -> None:
        super().__init__(label)
        if nbytes_per_rank < 0:
            raise ConfigurationError(
                f"nbytes_per_rank must be >= 0: {nbytes_per_rank}"
            )
        self.nbytes_per_rank = float(nbytes_per_rank)

    def execute(self, ctx: "RankContext") -> _t.Generator:
        ctx.phase(self.label)
        yield from ctx.allgather(self.nbytes_per_rank)
