"""Workload characterization: the paper's §5.2 step 1 as a service.

Run a benchmark sequentially on a one-node simulated cluster, read the
PAPI-style counters, and derive the per-memory-level workload
decomposition via the Table 5 formulae.  This is the measurement-side
path into the fine-grain parameterization — deliberately *not* a
shortcut through the model's own mix, so the FP pipeline exercises the
same counter→mix derivation the paper performs.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.machine import Cluster, ClusterSpec
from repro.cluster.workmix import InstructionMix
from repro.npb.base import BenchmarkModel

__all__ = ["Characterization", "characterize"]


@dataclasses.dataclass(frozen=True)
class Characterization:
    """Counter-derived workload description of one benchmark."""

    benchmark: str
    problem_class: str
    counters: dict[str, float]
    mix: InstructionMix
    sequential_time_s: float
    frequency_hz: float

    @property
    def on_chip_fraction(self) -> float:
        """``w_ON / w`` (Table 5 reports 98.8 % for LU)."""
        return self.mix.on_chip_fraction

    def on_chip_weights(self) -> dict[str, float]:
        """Per-level ON-chip weights (the CPI_ON averaging weights)."""
        return self.mix.on_chip_weights()

    def table5_rows(self) -> list[tuple[str, str, str, float]]:
        """Rows shaped like the paper's Table 5.

        Each row: (workload kind, memory level, derivation formula,
        instruction count).
        """
        return [
            (
                "ON-chip",
                "CPU/Register",
                "PAPI_TOT_INS - PAPI_L1_DCA",
                self.mix.cpu,
            ),
            ("ON-chip", "L1 Cache", "PAPI_L1_DCA - PAPI_L1_DCM", self.mix.l1),
            ("ON-chip", "L2 Cache", "PAPI_L2_TCA - PAPI_L2_TCM", self.mix.l2),
            ("OFF-chip", "Main Memory", "PAPI_L2_TCM", self.mix.mem),
        ]


def characterize(
    benchmark: BenchmarkModel,
    spec: ClusterSpec | None = None,
    frequency_hz: float | None = None,
) -> Characterization:
    """Profile a benchmark on a 1-node cluster and derive its mix.

    The paper runs counters on one processor and assumes "hardware
    event counts are similar across different processors for the same
    workload" (footnote 6) — we follow the same protocol.
    """
    from repro.cluster.machine import paper_spec

    base_spec = (spec or paper_spec()).with_nodes(1)
    cluster = Cluster(base_spec, frequency_hz=frequency_hz)
    result = benchmark.run(cluster)
    counters = cluster.node(0).counters
    return Characterization(
        benchmark=benchmark.name,
        problem_class=benchmark.problem_class.value,
        counters=counters.snapshot(),
        mix=counters.derive_mix(),
        sequential_time_s=result.elapsed_s,
        frequency_hz=cluster.node(0).frequency_hz,
    )
