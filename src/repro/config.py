"""Configuration serialization.

Experiments are defined by a :class:`~repro.cluster.machine.ClusterSpec`
(hardware) plus grid parameters.  This module round-trips specs through
plain JSON-able dicts so a campaign's exact platform can be stored next
to its results and reloaded later::

    from repro.config import spec_to_dict, spec_from_dict
    blob = json.dumps(spec_to_dict(paper_spec()))
    spec = spec_from_dict(json.loads(blob))

Every numeric knob of every component spec is covered; unknown keys are
rejected loudly (a typo in a stored config should never silently fall
back to a default).
"""

from __future__ import annotations

import typing as _t

from repro.cluster.cpu import CpuSpec
from repro.cluster.machine import ClusterSpec
from repro.cluster.memory import MemorySpec
from repro.cluster.network import NetworkSpec
from repro.cluster.nic import NicSpec
from repro.cluster.opoints import OperatingPoint, OperatingPointTable
from repro.cluster.power import PowerSpec, PowerState
from repro.errors import ConfigurationError

__all__ = ["spec_to_dict", "spec_from_dict"]


def _check_keys(data: _t.Mapping, allowed: set[str], what: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown keys in {what} config: {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


# ---------------------------------------------------------------------------
# to dict
# ---------------------------------------------------------------------------

def _opoints_to_dict(table: OperatingPointTable) -> list[dict]:
    return [
        {"frequency_hz": p.frequency_hz, "voltage_v": p.voltage_v}
        for p in table
    ]


def spec_to_dict(spec: ClusterSpec) -> dict:
    """Serialize a :class:`ClusterSpec` to a JSON-able dict."""
    return {
        "n_nodes": spec.n_nodes,
        "cpu": {
            "operating_points": _opoints_to_dict(spec.cpu.operating_points),
            "cpi_cpu": spec.cpu.cpi_cpu,
            "cpi_l1": spec.cpu.cpi_l1,
            "cpi_l2": spec.cpu.cpi_l2,
            "dvfs_transition_s": spec.cpu.dvfs_transition_s,
        },
        "memory": {
            "l1_bytes": spec.memory.l1_bytes,
            "l2_bytes": spec.memory.l2_bytes,
            "ram_bytes": spec.memory.ram_bytes,
            "off_chip_ns": spec.memory.off_chip_ns,
            "off_chip_ns_overrides": {
                str(f): lat
                for f, lat in spec.memory.off_chip_ns_overrides.items()
            },
        },
        "power": {
            "cpu_dynamic_max_w": spec.power.cpu_dynamic_max_w,
            "cpu_static_max_w": spec.power.cpu_static_max_w,
            "system_base_w": spec.power.system_base_w,
            "activity": {
                state.value: factor
                for state, factor in spec.power.activity.items()
            },
            "peak": {
                "frequency_hz": spec.power.peak.frequency_hz,
                "voltage_v": spec.power.peak.voltage_v,
            },
        },
        "nic": {
            "per_message_overhead_s": spec.nic.per_message_overhead_s,
            "cycles_per_byte": spec.nic.cycles_per_byte,
            "eager_threshold_bytes": spec.nic.eager_threshold_bytes,
        },
        "network": {
            "line_rate_bytes_per_s": spec.network.line_rate_bytes_per_s,
            "efficiency": spec.network.efficiency,
            "latency_s": spec.network.latency_s,
            "local_copy_bytes_per_s": spec.network.local_copy_bytes_per_s,
            "congestion_coeff": spec.network.congestion_coeff,
            "congestion_exponent": spec.network.congestion_exponent,
        },
    }


# ---------------------------------------------------------------------------
# from dict
# ---------------------------------------------------------------------------

def _opoints_from_dict(data: _t.Sequence[_t.Mapping]) -> OperatingPointTable:
    points = []
    for entry in data:
        _check_keys(entry, {"frequency_hz", "voltage_v"}, "operating point")
        points.append(
            OperatingPoint(
                frequency_hz=float(entry["frequency_hz"]),
                voltage_v=float(entry["voltage_v"]),
            )
        )
    return OperatingPointTable(points)


def _cpu_from_dict(data: _t.Mapping) -> CpuSpec:
    _check_keys(
        data,
        {"operating_points", "cpi_cpu", "cpi_l1", "cpi_l2",
         "dvfs_transition_s"},
        "cpu",
    )
    return CpuSpec(
        operating_points=_opoints_from_dict(data["operating_points"]),
        cpi_cpu=float(data["cpi_cpu"]),
        cpi_l1=float(data["cpi_l1"]),
        cpi_l2=float(data["cpi_l2"]),
        dvfs_transition_s=float(data["dvfs_transition_s"]),
    )


def _memory_from_dict(data: _t.Mapping) -> MemorySpec:
    _check_keys(
        data,
        {"l1_bytes", "l2_bytes", "ram_bytes", "off_chip_ns",
         "off_chip_ns_overrides"},
        "memory",
    )
    return MemorySpec(
        l1_bytes=float(data["l1_bytes"]),
        l2_bytes=float(data["l2_bytes"]),
        ram_bytes=float(data["ram_bytes"]),
        off_chip_ns=float(data["off_chip_ns"]),
        off_chip_ns_overrides={
            float(f): float(lat)
            for f, lat in data["off_chip_ns_overrides"].items()
        },
    )


def _power_from_dict(data: _t.Mapping) -> PowerSpec:
    _check_keys(
        data,
        {"cpu_dynamic_max_w", "cpu_static_max_w", "system_base_w",
         "activity", "peak"},
        "power",
    )
    return PowerSpec(
        cpu_dynamic_max_w=float(data["cpu_dynamic_max_w"]),
        cpu_static_max_w=float(data["cpu_static_max_w"]),
        system_base_w=float(data["system_base_w"]),
        activity={
            PowerState(name): float(factor)
            for name, factor in data["activity"].items()
        },
        peak=OperatingPoint(
            frequency_hz=float(data["peak"]["frequency_hz"]),
            voltage_v=float(data["peak"]["voltage_v"]),
        ),
    )


def _nic_from_dict(data: _t.Mapping) -> NicSpec:
    _check_keys(
        data,
        {"per_message_overhead_s", "cycles_per_byte",
         "eager_threshold_bytes"},
        "nic",
    )
    return NicSpec(
        per_message_overhead_s=float(data["per_message_overhead_s"]),
        cycles_per_byte=float(data["cycles_per_byte"]),
        eager_threshold_bytes=float(data["eager_threshold_bytes"]),
    )


def _network_from_dict(data: _t.Mapping) -> NetworkSpec:
    _check_keys(
        data,
        {"line_rate_bytes_per_s", "efficiency", "latency_s",
         "local_copy_bytes_per_s", "congestion_coeff",
         "congestion_exponent"},
        "network",
    )
    return NetworkSpec(
        line_rate_bytes_per_s=float(data["line_rate_bytes_per_s"]),
        efficiency=float(data["efficiency"]),
        latency_s=float(data["latency_s"]),
        local_copy_bytes_per_s=float(data["local_copy_bytes_per_s"]),
        congestion_coeff=float(data["congestion_coeff"]),
        congestion_exponent=float(data["congestion_exponent"]),
    )


def spec_from_dict(data: _t.Mapping) -> ClusterSpec:
    """Rebuild a :class:`ClusterSpec` from :func:`spec_to_dict` output."""
    _check_keys(
        data,
        {"n_nodes", "cpu", "memory", "power", "nic", "network"},
        "cluster",
    )
    return ClusterSpec(
        n_nodes=int(data["n_nodes"]),
        cpu=_cpu_from_dict(data["cpu"]),
        memory=_memory_from_dict(data["memory"]),
        power=_power_from_dict(data["power"]),
        nic=_nic_from_dict(data["nic"]),
        network=_network_from_dict(data["network"]),
    )
