"""The discrete-event engine: simulated clock plus event queue.

The engine owns a priority queue of ``(time, seq, entry)`` entries.
:meth:`Engine.run` pops entries in time order, advances the clock and
executes event callbacks, which typically resume simulated processes.

Determinism
-----------
The queue breaks time ties with a monotonically increasing sequence
number, so two runs of the same program produce identical schedules.
Nothing in the engine consults wall-clock time or unseeded randomness —
a property the test-suite checks (``tests/sim/test_determinism.py``).

Fast-path entries
-----------------
Besides full :class:`~repro.sim.events.Event` objects, the heap accepts
:class:`_Call` entries: a bare ``(callback, ok, value)`` triple that
:meth:`Engine._schedule_call` places at exactly the position a relay
event would have occupied.  Processes use this to schedule their bound
``_resume`` directly — no Event allocation, no callback list, no state
machine — which is the dominant cost of a simulation step.  Because a
``_Call`` consumes one sequence number exactly where the equivalent
event would have, replacing relay events with calls is *order
preserving*: schedules (and therefore results) are bit-identical.

Throughput counters
-------------------
The engine counts events processed, processes spawned (including
detached background tasks) and the peak heap size; see :meth:`stats`.
The campaign runtime divides ``events_processed`` by wall time to
report engine throughput per cell (``BENCH_engine.json``, the CLI's
``[campaign runtime]`` line).
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout, _Call
from repro.sim.process import Process

__all__ = ["Engine"]


class Engine:
    """Discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.  Defaults to 0.

    Examples
    --------
    >>> eng = Engine()
    >>> def prog(env):
    ...     yield env.timeout(1.5)
    ...     return "done"
    >>> p = eng.process(prog(eng))
    >>> eng.run()
    >>> eng.now
    1.5
    >>> p.value
    'done'
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, _t.Any]] = []
        self._seq = 0
        #: Number of live (started, not yet finished) processes.  Used for
        #: deadlock detection when the queue drains.
        self._live_processes = 0
        #: Heap entries popped and executed so far (events + calls).
        self.events_processed = 0
        #: Processes started, including detached background tasks.
        self.processes_spawned = 0
        #: Largest queue length observed (memory high-water mark).
        self.peak_queue_len = 0

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`~repro.sim.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator) -> Process:
        """Start a new simulated process running ``generator``."""
        return Process(self, generator)

    def detach(self, generator: _t.Generator) -> None:
        """Run ``generator`` as a fire-and-forget background task.

        Semantically equivalent to :meth:`process` for a task whose
        completion nobody waits on — same start scheduling, same
        deadlock accounting — but without allocating the
        :class:`~repro.sim.process.Process` event pair, so schedules
        stay bit-identical while background messaging (eager
        deliveries, rendezvous envelopes) gets cheaper.  Unlike a
        process, a detached task has no handle: an exception escaping
        the generator propagates out of :meth:`step`.
        """
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"detach requires a generator, got {type(generator).__name__}"
            )
        self._live_processes += 1
        self.processes_spawned += 1

        def _drive(entry: _t.Any) -> None:
            try:
                if entry._ok:
                    target = generator.send(entry._value)
                else:
                    target = generator.throw(entry._value)
            except StopIteration:
                self._live_processes -= 1
                return
            except BaseException:
                self._live_processes -= 1
                raise
            if not isinstance(target, Event) or target.env is not self:
                self._live_processes -= 1
                generator.close()
                raise SimulationError(
                    f"detached task yielded {target!r}; tasks must yield "
                    "events of their own engine"
                )
            callbacks = target.callbacks
            if callbacks is None:
                self._schedule_call(_drive, target._ok, target._value)
            else:
                callbacks.append(_drive)

        self._seq += 1
        heapq.heappush(
            self._queue, (self._now, self._seq, _Call(_drive, True, None))
        )

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """An event that triggers when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """An event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now.

        :meth:`Event.succeed <repro.sim.events.Event.succeed>` and the
        :class:`~repro.sim.events.Timeout` constructor inline this body
        — keep them in sync.
        """
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def _schedule_call(
        self,
        fn: _t.Callable,
        ok: bool | None,
        value: _t.Any,
        delay: float = 0.0,
    ) -> None:
        """Schedule a bare callback at the position an event would take.

        Consumes one sequence number, exactly like :meth:`_schedule`,
        so fast-path calls interleave with events in the same order a
        relay event would have produced.
        """
        self._seq += 1
        heapq.heappush(
            self._queue, (self._now + delay, self._seq, _Call(fn, ok, value))
        )

    # -- main loop -----------------------------------------------------------

    def step(self) -> None:
        """Process the next queued entry (advancing the clock to it)."""
        queue = self._queue
        if not queue:
            raise SimulationError("step() on an empty event queue")
        # The queue only grows between pops, so sampling its length at
        # pop time observes every high-water mark — cheaper than a
        # check on each of the (equally many) pushes, which are spread
        # over four call sites.
        qlen = len(queue)
        if qlen > self.peak_queue_len:
            self.peak_queue_len = qlen
        when, _seq, entry = heapq.heappop(queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"time travel: queued t={when} < now={self._now}"
            )
        self._now = when
        self.events_processed += 1
        if entry.__class__ is _Call:
            entry.fn(entry)
            return
        callbacks = entry.callbacks
        entry.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(entry)

    def _drain(self, finished: list | None) -> None:
        """Hot main loop: :meth:`step` inlined until ``finished`` is
        non-empty (or, when ``finished`` is None, until the queue
        empties).  Semantically ``while not finished and self._queue:
        self.step()`` — keep in sync with :meth:`step`."""
        queue = self._queue
        heappop = heapq.heappop
        call_cls = _Call
        steps = 0
        peak = self.peak_queue_len
        if finished is None:
            finished = []  # never appended to: drain until queue empties
        try:
            while not finished and queue:
                qlen = len(queue)
                if qlen > peak:
                    peak = qlen
                when, _seq, entry = heappop(queue)
                if when < self._now:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"time travel: queued t={when} < now={self._now}"
                    )
                self._now = when
                steps += 1
                if entry.__class__ is call_cls:
                    entry.fn(entry)
                    continue
                callbacks = entry.callbacks
                entry.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(entry)
        finally:
            self.events_processed += steps
            if peak > self.peak_queue_len:
                self.peak_queue_len = peak

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def stats(self) -> dict[str, int]:
        """Engine throughput counters (JSON-ready).

        ``events_processed``
            heap entries executed (events plus fast-path calls);
        ``processes_spawned``
            processes started, detached background tasks included;
        ``peak_queue_len``
            high-water mark of the event heap.
        """
        return {
            "events_processed": self.events_processed,
            "processes_spawned": self.processes_spawned,
            "peak_queue_len": self.peak_queue_len,
        }

    def run(
        self,
        until: float | Event | None = None,
        *,
        detect_deadlock: bool = True,
    ) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue drains.
            a float
                run until the clock reaches that time (the clock is
                advanced to exactly ``until`` even if no event lands
                there).
            an :class:`~repro.sim.events.Event`
                run until that event has been processed; its value is
                returned (its exception re-raised if it failed).
        detect_deadlock:
            When true (default) and the queue drains while simulated
            processes are still alive, raise
            :class:`~repro.errors.DeadlockError` — the simulated analogue
            of a hung MPI job.
        """
        if isinstance(until, Event):
            stop_event = until
            finished = []
            stop_event_done = lambda ev: finished.append(ev)  # noqa: E731
            if stop_event.processed:
                finished.append(stop_event)
            else:
                stop_event.callbacks.append(stop_event_done)
            self._drain(finished)
            if not finished:
                if detect_deadlock and self._live_processes > 0:
                    raise DeadlockError(
                        f"queue drained with {self._live_processes} live "
                        f"process(es) blocked at t={self._now}"
                    )
                raise SimulationError(
                    "run(until=event): queue drained before event triggered"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value

        if until is None:
            self._drain(None)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})"
                )
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self._now = horizon

        if detect_deadlock and until is None and self._live_processes > 0:
            raise DeadlockError(
                f"queue drained with {self._live_processes} live "
                f"process(es) blocked at t={self._now}"
            )
        return None
