"""The discrete-event engine: simulated clock plus event queue.

The engine owns a priority queue of ``(time, seq, event)`` entries.
:meth:`Engine.run` pops entries in time order, advances the clock and
executes event callbacks, which typically resume simulated processes.

Determinism
-----------
The queue breaks time ties with a monotonically increasing sequence
number, so two runs of the same program produce identical schedules.
Nothing in the engine consults wall-clock time or unseeded randomness —
a property the test-suite checks (``tests/sim/test_determinism.py``).
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Engine"]


class Engine:
    """Discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.  Defaults to 0.

    Examples
    --------
    >>> eng = Engine()
    >>> def prog(env):
    ...     yield env.timeout(1.5)
    ...     return "done"
    >>> p = eng.process(prog(eng))
    >>> eng.run()
    >>> eng.now
    1.5
    >>> p.value
    'done'
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Number of live (started, not yet finished) processes.  Used for
        #: deadlock detection when the queue drains.
        self._live_processes = 0

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`~repro.sim.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator) -> Process:
        """Start a new simulated process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """An event that triggers when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """An event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    # -- main loop -----------------------------------------------------------

    def step(self) -> None:
        """Process the next queued event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"time travel: queued t={when} < now={self._now}"
            )
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(
        self,
        until: float | Event | None = None,
        *,
        detect_deadlock: bool = True,
    ) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue drains.
            a float
                run until the clock reaches that time (the clock is
                advanced to exactly ``until`` even if no event lands
                there).
            an :class:`~repro.sim.events.Event`
                run until that event has been processed; its value is
                returned (its exception re-raised if it failed).
        detect_deadlock:
            When true (default) and the queue drains while simulated
            processes are still alive, raise
            :class:`~repro.errors.DeadlockError` — the simulated analogue
            of a hung MPI job.
        """
        if isinstance(until, Event):
            stop_event = until
            finished = []
            stop_event_done = lambda ev: finished.append(ev)  # noqa: E731
            if stop_event.processed:
                finished.append(stop_event)
            else:
                stop_event.callbacks.append(stop_event_done)
            while not finished and self._queue:
                self.step()
            if not finished:
                if detect_deadlock and self._live_processes > 0:
                    raise DeadlockError(
                        f"queue drained with {self._live_processes} live "
                        f"process(es) blocked at t={self._now}"
                    )
                raise SimulationError(
                    "run(until=event): queue drained before event triggered"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value

        if until is None:
            while self._queue:
                self.step()
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})"
                )
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self._now = horizon

        if detect_deadlock and until is None and self._live_processes > 0:
            raise DeadlockError(
                f"queue drained with {self._live_processes} live "
                f"process(es) blocked at t={self._now}"
            )
        return None
