"""Capacity-limited shared resources with FIFO queueing.

:class:`Resource` models things like network links and the switch
backplane: at most ``capacity`` holders at a time, waiters served in
request order.  :class:`Store` is an unbounded FIFO of items with
blocking ``get`` — the mailbox primitive underlying simulated MPI
message matching in :mod:`repro.mpi.p2p`.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = ["Resource", "Store"]


class _Request(Event):
    """A pending acquisition of a :class:`Resource` slot.

    Usable as a context manager inside a simulated process::

        with resource.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    __slots__ = ("resource",)

    def __init__(self, env: "Engine", resource: "Resource") -> None:
        # Inlined Event.__init__ (two requests per remote transfer).
        self.env = env
        self.callbacks = []
        self._value = Event.PENDING
        self._ok = None
        self._scheduled = False
        self.resource = resource

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """A shared resource with fixed integer capacity and a FIFO queue.

    Parameters
    ----------
    env:
        Owning engine.
    capacity:
        Maximum simultaneous holders; must be >= 1.
    """

    def __init__(self, env: "Engine", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = int(capacity)
        self._holders: set[_Request] = set()
        self._waiting: collections.deque[_Request] = collections.deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> _Request:
        """Ask for a slot.  The returned event triggers when granted."""
        req = _Request(self.env, self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: _Request) -> None:
        """Return a slot previously granted to ``request``.

        Releasing a request that never got (or already returned) its slot
        is a no-op if the request was still queued — it is simply
        cancelled — and an error otherwise.
        """
        if request in self._holders:
            self._holders.discard(request)
            self._grant_next()
        elif request in self._waiting:
            self._waiting.remove(request)
        elif request.triggered:
            raise SimulationError("double release of resource request")

    def _grant_next(self) -> None:
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt.succeed()


class Store:
    """Unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    oldest available item.  Items are delivered to getters in request
    order (FIFO fairness on both sides).
    """

    def __init__(self, env: "Engine") -> None:
        self.env = env
        self._items: collections.deque[_t.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: _t.Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that triggers with the next available item."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
