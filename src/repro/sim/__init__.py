"""Discrete-event simulation engine.

A compact, dependency-free process-based discrete-event kernel in the
style of SimPy.  The power-aware cluster (:mod:`repro.cluster`), the
simulated message-passing runtime (:mod:`repro.mpi`) and the NPB workload
models (:mod:`repro.npb`) are all built on this engine.

The central pieces:

* :class:`~repro.sim.engine.Engine` — the event loop and simulated clock.
* :class:`~repro.sim.events.Event` — one-shot triggerable events.
* :class:`~repro.sim.process.Process` — generator-based simulated
  processes which ``yield`` events to wait on them.
* :class:`~repro.sim.resources.Resource` — capacity-limited shared
  resources (e.g. network links) with FIFO queueing.
* :class:`~repro.sim.trace.Tracer` — structured event tracing used by the
  phase profiler.

Example
-------
>>> from repro.sim import Engine
>>> eng = Engine()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = eng.process(worker(eng, "a", 2.0))
>>> _ = eng.process(worker(eng, "b", 1.0))
>>> eng.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "Store",
    "Tracer",
    "TraceRecord",
]
