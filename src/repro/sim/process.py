"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.sim.events.Event` objects to wait for them; when a yielded
event triggers, the generator is resumed with the event's value (or the
event's exception is thrown into it, letting simulated code use ordinary
``try``/``except``).  When the generator returns, the process — itself an
event — succeeds with the generator's return value, so processes compose:
one process can ``yield`` another to join it.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event, _Call

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = ["Process"]


class Process(Event):
    """A running simulated process.

    Do not instantiate directly; use
    :meth:`Engine.process <repro.sim.engine.Engine.process>`.
    """

    __slots__ = ("_generator", "_send", "_throw", "_waiting_on")

    def __init__(self, env: "Engine", generator: _t.Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        # Inlined Event.__init__ (one Process per message makes this hot).
        self.env = env
        self.callbacks = []
        self._value = Event.PENDING
        self._ok = None
        self._scheduled = False
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._waiting_on: Event | None = None
        env._live_processes += 1
        env.processes_spawned += 1
        # Kick off the process via an immediately-scheduled resume so
        # that process start order is deterministic and start happens
        # "inside" the simulation rather than in user code.  The direct
        # call (env._schedule_call, inlined) takes the exact queue
        # position a start event would.
        env._seq += 1
        heapq.heappush(
            env._queue, (env._now, env._seq, _Call(self._resume, True, None))
        )

    @property
    def is_alive(self) -> bool:
        """Whether the process generator has not yet finished."""
        return self._value is Event.PENDING

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        self._waiting_on = None
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._value)
        except StopIteration as stop:
            self.env._live_processes -= 1
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._live_processes -= 1
            self.fail(exc)
            return

        if not isinstance(target, Event):
            exc = SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
            self.env._live_processes -= 1
            try:
                self._generator.close()
            finally:
                self.fail(exc)
            return
        if target.env is not self.env:
            self.env._live_processes -= 1
            self.fail(
                SimulationError("process yielded an event from another engine")
            )
            return

        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            # Already processed: schedule the bound resume directly with
            # the same outcome, preserving run-to-yield semantics at the
            # exact queue position a relay event would have taken
            # (env._schedule_call, inlined).
            env = self.env
            env._seq += 1
            heapq.heappush(
                env._queue,
                (
                    env._now,
                    env._seq,
                    _Call(self._resume, target._ok, target._value),
                ),
            )
        else:
            callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self._generator, "__name__", "process")
        state = "alive" if self.is_alive else "finished"
        return f"<Process {name} {state} at {id(self):#x}>"
