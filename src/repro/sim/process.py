"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.sim.events.Event` objects to wait for them; when a yielded
event triggers, the generator is resumed with the event's value (or the
event's exception is thrown into it, letting simulated code use ordinary
``try``/``except``).  When the generator returns, the process — itself an
event — succeeds with the generator's return value, so processes compose:
one process can ``yield`` another to join it.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = ["Process"]


class Process(Event):
    """A running simulated process.

    Do not instantiate directly; use
    :meth:`Engine.process <repro.sim.engine.Engine.process>`.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Engine", generator: _t.Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        env._live_processes += 1
        # Kick off the process via an immediately-scheduled event so that
        # process start order is deterministic and start happens "inside"
        # the simulation rather than in user code.
        start = Event(env)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the process generator has not yet finished."""
        return self._value is Event.PENDING

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._live_processes -= 1
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._live_processes -= 1
            self.fail(exc)
            return

        if not isinstance(target, Event):
            exc = SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
            self.env._live_processes -= 1
            try:
                self._generator.close()
            finally:
                self.fail(exc)
            return
        if target.env is not self.env:
            self.env._live_processes -= 1
            self.fail(
                SimulationError("process yielded an event from another engine")
            )
            return

        self._waiting_on = target
        if target.processed:
            # Already done: resume on a fresh immediate event carrying the
            # same outcome, preserving run-to-yield semantics.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if target._ok:
                relay.succeed(target._value)
            else:
                relay._ok = False
                relay._value = target._value
                self.env._schedule(relay)
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self._generator, "__name__", "process")
        state = "alive" if self.is_alive else "finished"
        return f"<Process {name} {state} at {id(self):#x}>"
