"""Structured tracing of simulated activity.

The phase profiler (:mod:`repro.proftools.profiler`) and the DVS
scheduler evaluation (:mod:`repro.sched.evaluation`) need a timeline of
*what each node was doing when*: computing, waiting in a collective,
moving bytes.  :class:`Tracer` collects :class:`TraceRecord` entries and
offers simple aggregation queries (total time per category, per node,
per phase).

Records are intervals ``[start, end)`` labelled with a ``category``
(e.g. ``"compute"``, ``"comm"``, ``"wait"``), the node/rank they belong
to, and the benchmark ``phase`` that was active.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

__all__ = ["TraceRecord", "Tracer"]


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced interval of simulated activity."""

    start: float
    end: float
    category: str
    rank: int
    phase: str = ""
    detail: _t.Any = None

    @property
    def duration(self) -> float:
        """Length of the interval in simulated seconds."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"trace interval ends before it starts: {self.start}..{self.end}"
            )


class Tracer:
    """Collects trace records and answers aggregate queries.

    Tracing is optional everywhere in the library: components accept an
    optional tracer and skip recording when it is ``None``.  A disabled
    tracer therefore costs one ``is None`` test per interval.
    """

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def record(
        self,
        start: float,
        end: float,
        category: str,
        rank: int,
        phase: str = "",
        detail: _t.Any = None,
    ) -> None:
        """Append one interval record."""
        self._records.append(
            TraceRecord(start, end, category, rank, phase, detail)
        )

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """All records, in insertion order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    # -- aggregation ----------------------------------------------------

    def total_time(
        self,
        category: str | None = None,
        rank: int | None = None,
        phase: str | None = None,
    ) -> float:
        """Sum of durations of records matching the given filters."""
        return sum(r.duration for r in self.iter(category, rank, phase))

    def iter(
        self,
        category: str | None = None,
        rank: int | None = None,
        phase: str | None = None,
    ) -> _t.Iterator[TraceRecord]:
        """Iterate over records matching the given filters."""
        for r in self._records:
            if category is not None and r.category != category:
                continue
            if rank is not None and r.rank != rank:
                continue
            if phase is not None and r.phase != phase:
                continue
            yield r

    def by_category(self, rank: int | None = None) -> dict[str, float]:
        """Total traced time per category (optionally for one rank)."""
        out: dict[str, float] = collections.defaultdict(float)
        for r in self.iter(rank=rank):
            out[r.category] += r.duration
        return dict(out)

    def by_phase(self, rank: int | None = None) -> dict[str, float]:
        """Total traced time per benchmark phase."""
        out: dict[str, float] = collections.defaultdict(float)
        for r in self.iter(rank=rank):
            out[r.phase] += r.duration
        return dict(out)

    def phases(self) -> tuple[str, ...]:
        """Distinct phase labels in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.phase, None)
        return tuple(seen)

    def span(self) -> tuple[float, float]:
        """``(earliest start, latest end)`` over all records."""
        if not self._records:
            return (0.0, 0.0)
        return (
            min(r.start for r in self._records),
            max(r.end for r in self._records),
        )
