"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence that simulated processes can
wait on.  Events move through three states:

``pending`` → ``triggered`` (scheduled on the engine queue) → ``processed``
(callbacks executed).

Composite events (:class:`AllOf`, :class:`AnyOf`) build synchronization
barriers out of other events; they are what gives the MPI collectives in
:mod:`repro.mpi.collectives` their join semantics.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import ConfigurationError, SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]


class _Call:
    """A lightweight heap entry that invokes one callback directly.

    Carries the same ``_ok`` / ``_value`` outcome slots a processed
    event exposes, so :meth:`Process._resume
    <repro.sim.process.Process._resume>` can consume it unchanged.
    Never observable from user code: the engine's step loop unwraps it
    before callbacks run.  Scheduling a ``_Call`` consumes one sequence
    number, exactly like scheduling an event, so fast-path calls
    interleave with events in the order a relay event would have
    produced — the property that keeps fast-path schedules
    bit-identical.
    """

    __slots__ = ("fn", "_ok", "_value")

    def __init__(
        self, fn: _t.Callable, ok: bool | None, value: _t.Any
    ) -> None:
        self.fn = fn
        self._ok = ok
        self._value = value


class Event:
    """A one-shot occurrence on an :class:`~repro.sim.engine.Engine`.

    Parameters
    ----------
    env:
        The engine this event belongs to.

    Attributes
    ----------
    callbacks:
        List of callables invoked (with the event) when the event is
        processed.  ``None`` after processing.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled")

    #: Sentinel for "no value yet".
    PENDING = object()

    def __init__(self, env: "Engine") -> None:
        self.env = env
        self.callbacks: list | None = []
        self._value: _t.Any = Event.PENDING
        self._ok: bool | None = None
        self._scheduled = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or was) on the queue."""
        return self._value is not Event.PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The event's value (or exception if it failed)."""
        if self._value is Event.PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself to allow ``return ev.succeed()`` chains.
        """
        if self._value is not Event.PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined env._schedule(self): triggering an event is one of the
        # two hottest heap pushes in the simulator (with Timeout).
        env = self.env
        if self._scheduled:
            raise SimulationError(f"{self!r} already scheduled")
        self._scheduled = True
        env._seq += 1
        heapq.heappush(env._queue, (env._now, env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises ``exception`` inside every process
        waiting on it.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not Event.PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok is None:
            raise SimulationError(
                f"trigger() from an untriggered event: {event!r}"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    Created via :meth:`Engine.timeout <repro.sim.engine.Engine.timeout>`.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Engine", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise ConfigurationError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ and env._schedule: timeouts are the
        # hottest allocation in the simulator (one per compute/overhead
        # step), born triggered and scheduled.
        self.env = env
        self.callbacks = []
        self.delay = delay = float(delay)
        self._ok = True
        self._value = value
        self._scheduled = True
        env._seq += 1
        heapq.heappush(env._queue, (env._now + delay, env._seq, self))


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_num_done", "_first_done")

    def __init__(self, env: "Engine", events: _t.Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different engines")
        self._num_done = 0
        self._first_done: Event | None = None
        if not self.events:
            self.succeed(())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        if self._first_done is None:
            self._first_done = event
        self._num_done += 1
        self._evaluate()

    def _evaluate(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once *all* constituent events have succeeded.

    Its value is a tuple of the constituent values, in construction order.
    """

    __slots__ = ()

    def _evaluate(self) -> None:
        if self._num_done == len(self.events):
            self.succeed(tuple(ev._value for ev in self.events))


class AnyOf(_Condition):
    """Triggers once *any* constituent event has succeeded.

    Its value is the value of the first event to complete.
    """

    __slots__ = ()

    def _evaluate(self) -> None:
        if self._num_done >= 1:
            assert self._first_done is not None
            self.succeed(self._first_done._value)
