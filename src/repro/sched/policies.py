"""Frequency-selection policies for DVS scheduling.

A policy answers one question: *at which operating point should a node
run the upcoming phase?*  Three implementations:

* :class:`StaticPolicy` — one frequency for the whole run (the
  baseline every scheduling study compares against).
* :class:`PhaseTablePolicy` — an explicit phase-group → frequency
  table (what a hand-tuned schedule or an external tool produces).
* :class:`CommBoundPolicy` — built from a
  :class:`~repro.proftools.profiler.PhaseProfile`: phases whose
  communication fraction exceeds a threshold run at the low frequency,
  everything else at the high frequency.  This is the paper-era
  "a priori profiling" approach ([15], Freeh et al.) that power-aware
  speedup aims to replace with prediction.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.opoints import OperatingPointTable
from repro.errors import ConfigurationError
from repro.proftools.profiler import PhaseProfile, normalize_label

__all__ = [
    "SchedulingPolicy",
    "StaticPolicy",
    "PhaseTablePolicy",
    "CommBoundPolicy",
    "SlackPolicy",
]


class SchedulingPolicy(_t.Protocol):
    """Maps a phase-group label to an operating frequency."""

    def frequency_for(self, phase_group: str) -> float:
        """Target frequency (Hz) for a phase group."""
        ...  # pragma: no cover - protocol


class StaticPolicy:
    """Run everything at one frequency."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be positive: {frequency_hz}"
            )
        self.frequency_hz = float(frequency_hz)

    def frequency_for(self, phase_group: str) -> float:
        """The fixed frequency, regardless of phase."""
        return self.frequency_hz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticPolicy({self.frequency_hz / 1e6:.0f} MHz)"


class PhaseTablePolicy:
    """Explicit phase-group → frequency table with a default.

    Phase labels are normalized (iteration suffixes stripped) before
    lookup, so a table entry ``"transpose"`` covers ``transpose[0]``
    through ``transpose[5]``.
    """

    def __init__(
        self, table: _t.Mapping[str, float], default_hz: float
    ) -> None:
        if default_hz <= 0:
            raise ConfigurationError(
                f"default frequency must be positive: {default_hz}"
            )
        self.table = {str(k): float(v) for k, v in table.items()}
        for label, f in self.table.items():
            if f <= 0:
                raise ConfigurationError(
                    f"frequency for {label!r} must be positive: {f}"
                )
        self.default_hz = float(default_hz)

    def frequency_for(self, phase_group: str) -> float:
        """The table entry for the (normalized) phase, or the default."""
        return self.table.get(normalize_label(phase_group), self.default_hz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseTablePolicy({len(self.table)} entries)"


class CommBoundPolicy(PhaseTablePolicy):
    """Profile-driven policy: slow down communication-bound phases.

    Parameters
    ----------
    profile:
        A phase profile from a representative (traced) run.
    operating_points:
        The platform's legal points; supplies the high (peak) and low
        (base) frequencies unless overridden.
    threshold:
        Communication fraction above which a phase group is throttled.
    low_hz, high_hz:
        Optional explicit frequencies.
    """

    def __init__(
        self,
        profile: PhaseProfile,
        operating_points: OperatingPointTable,
        threshold: float = 0.5,
        low_hz: float | None = None,
        high_hz: float | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1]: {threshold}"
            )
        low = float(low_hz or operating_points.base.frequency_hz)
        high = float(high_hz or operating_points.peak.frequency_hz)
        operating_points.lookup(low)
        operating_points.lookup(high)
        table = {
            label: low
            for label in profile.communication_bound_phases(threshold)
        }
        super().__init__(table, default_hz=high)
        self.threshold = float(threshold)
        self.low_hz = low
        self.high_hz = high

    @property
    def throttled_phases(self) -> tuple[str, ...]:
        """Phase groups this policy slows down."""
        return tuple(sorted(self.table))


class SlackPolicy:
    """Slack reclamation: slow down ranks off the critical path.

    The related-work idea the paper cites ([7, 24], Chen et al. /
    Kappiah et al.): in load-imbalanced codes some ranks spend much of
    every iteration *waiting* at synchronization points.  Running those
    ranks slower stretches their compute into their own slack —
    saving energy with (ideally) zero effect on the critical path.

    This is a *per-rank* static policy: each rank gets one frequency
    for the whole run, chosen from a baseline run's per-rank idle
    fractions.

    Parameters
    ----------
    rank_frequencies:
        Mapping from rank to its assigned frequency (Hz).
    default_hz:
        Frequency for ranks not in the table (the critical path).
    """

    def __init__(
        self,
        rank_frequencies: _t.Mapping[int, float],
        default_hz: float,
    ) -> None:
        if default_hz <= 0:
            raise ConfigurationError(
                f"default frequency must be positive: {default_hz}"
            )
        self.rank_frequencies = {
            int(r): float(f) for r, f in rank_frequencies.items()
        }
        for r, f in self.rank_frequencies.items():
            if f <= 0:
                raise ConfigurationError(
                    f"frequency for rank {r} must be positive: {f}"
                )
        self.default_hz = float(default_hz)

    def frequency_for(self, phase_group: str) -> float:
        """Rank-agnostic query: the critical-path frequency."""
        return self.default_hz

    def frequency_for_rank(self, rank: int, phase_group: str) -> float:
        """The frequency assigned to one rank (phase-independent)."""
        return self.rank_frequencies.get(int(rank), self.default_hz)

    @classmethod
    def from_idle_fractions(
        cls,
        idle_by_rank: _t.Mapping[int, float],
        operating_points: OperatingPointTable,
        safety: float = 0.9,
    ) -> "SlackPolicy":
        """Assign each rank the lowest frequency its slack can absorb.

        A rank observed idle for fraction ``s`` of the run was busy for
        ``1 − s``; running it at frequency ``f`` instead of the peak
        ``F`` inflates its busy time by ``F/f``.  The inflated busy
        time fits inside the original elapsed time iff
        ``(1 − s) · F/f <= 1``, i.e. ``f >= F · (1 − s)``.  ``safety``
        shrinks the usable slack (frequency effects on waiting code and
        transition costs eat some of it).

        Parameters
        ----------
        idle_by_rank:
            Per-rank idle fraction in [0, 1] from a baseline run
            (e.g. energy-meter IDLE seconds / elapsed).
        operating_points:
            Legal frequencies; each rank gets the lowest legal point
            at or above its requirement.
        safety:
            Fraction of the slack the policy dares to consume.
        """
        if not 0 < safety <= 1:
            raise ConfigurationError(f"safety must be in (0, 1]: {safety}")
        peak = operating_points.peak.frequency_hz
        table: dict[int, float] = {}
        for rank, idle in idle_by_rank.items():
            if not 0.0 <= idle <= 1.0:
                raise ConfigurationError(
                    f"idle fraction for rank {rank} must be in [0, 1]: {idle}"
                )
            usable = idle * safety
            required = peak * (1.0 - usable)
            candidates = [
                p.frequency_hz
                for p in operating_points
                if p.frequency_hz >= required
            ]
            table[int(rank)] = min(candidates) if candidates else peak
        return cls(table, default_hz=peak)
