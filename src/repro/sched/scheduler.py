"""Applying a scheduling policy to a benchmark run.

:func:`scheduled_program` wraps a benchmark's phase list into a rank
program that consults the policy *before every phase* and performs a
DVFS transition when the target operating point differs from the
current one.  Transitions cost real simulated time
(``CpuSpec.dvfs_transition_s``), so an over-eager policy pays for its
switching — exactly the trade-off real DVS schedulers manage.
"""

from __future__ import annotations

import typing as _t

from repro.mpi.program import RankContext
from repro.npb.base import BenchmarkModel
from repro.proftools.profiler import normalize_label
from repro.sched.policies import SchedulingPolicy

__all__ = ["scheduled_program"]


def scheduled_program(
    benchmark: BenchmarkModel,
    n_ranks: int,
    policy: SchedulingPolicy,
) -> _t.Callable[[RankContext], _t.Generator]:
    """A rank program running ``benchmark`` under ``policy``.

    Each rank independently switches its own node at phase boundaries
    (distributed DVS scheduling in the style of the paper's prior work
    [15] — no central coordinator).  Policies exposing
    ``frequency_for_rank(rank, phase_group)`` (e.g.
    :class:`~repro.sched.policies.SlackPolicy`) get per-rank control;
    plain phase policies apply uniformly.
    """
    phases = benchmark.phases(n_ranks)
    per_rank = getattr(policy, "frequency_for_rank", None)

    def program(ctx: RankContext) -> _t.Generator:
        for phase in phases:
            group = normalize_label(phase.label)
            if per_rank is not None:
                target = per_rank(ctx.rank, group)
            else:
                target = policy.frequency_for(group)
            if target != ctx.frequency_hz:
                yield from ctx.set_frequency(target)
            yield from phase.execute(ctx)

    program.__name__ = f"scheduled_{benchmark.name}"
    return program
