"""DVS scheduling policies (the paper's prior-work substrate [15]).

The paper's context — and the reason power-aware speedup matters — is
DVS *scheduling*: lowering processor frequency during phases where the
CPU is not the bottleneck (communication, memory stalls) to save
energy at negligible performance cost.  This package reproduces that
machinery on the simulated cluster:

* :mod:`~repro.sched.policies` — frequency-selection policies: static,
  per-phase tables, and profile-driven communication-bound detection.
* :mod:`~repro.sched.scheduler` — applies a policy to a benchmark by
  switching operating points at phase boundaries during the run
  (paying real DVFS transition costs).
* :mod:`~repro.sched.evaluation` — energy-vs-time comparison of a
  scheduled run against a static-frequency baseline.
"""

from repro.sched.evaluation import ScheduleEvaluation, evaluate_policy
from repro.sched.policies import (
    CommBoundPolicy,
    PhaseTablePolicy,
    SchedulingPolicy,
    SlackPolicy,
    StaticPolicy,
)
from repro.sched.scheduler import scheduled_program

__all__ = [
    "SchedulingPolicy",
    "StaticPolicy",
    "PhaseTablePolicy",
    "CommBoundPolicy",
    "SlackPolicy",
    "scheduled_program",
    "ScheduleEvaluation",
    "evaluate_policy",
]
