"""Energy-vs-time evaluation of DVS schedules.

The headline trade the power-aware literature reports (and the paper's
abstract cites: ">30 % energy saved, <1 % performance loss") is a pair
of ratios against a static-peak-frequency baseline.
:func:`evaluate_policy` runs both configurations on fresh clusters and
returns a :class:`ScheduleEvaluation` with the savings, slowdown and
energy-delay comparison.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.machine import Cluster, ClusterSpec, paper_spec
from repro.mpi.program import run_program
from repro.npb.base import BenchmarkModel
from repro.sched.policies import SchedulingPolicy, StaticPolicy
from repro.sched.scheduler import scheduled_program

__all__ = ["ScheduleEvaluation", "evaluate_policy"]


@dataclasses.dataclass(frozen=True)
class ScheduleEvaluation:
    """Scheduled-vs-baseline comparison for one benchmark and rank
    count."""

    benchmark: str
    n_ranks: int
    baseline_time_s: float
    baseline_energy_j: float
    scheduled_time_s: float
    scheduled_energy_j: float

    @property
    def energy_savings(self) -> float:
        """Fraction of baseline energy saved (positive is good)."""
        return 1.0 - self.scheduled_energy_j / self.baseline_energy_j

    @property
    def slowdown(self) -> float:
        """Fractional time increase over baseline (positive = slower)."""
        return self.scheduled_time_s / self.baseline_time_s - 1.0

    @property
    def baseline_edp(self) -> float:
        """Baseline energy-delay product."""
        return self.baseline_energy_j * self.baseline_time_s

    @property
    def scheduled_edp(self) -> float:
        """Scheduled energy-delay product."""
        return self.scheduled_energy_j * self.scheduled_time_s

    @property
    def edp_improvement(self) -> float:
        """Fractional EDP reduction (positive is good)."""
        return 1.0 - self.scheduled_edp / self.baseline_edp

    @property
    def edp(self) -> float:
        """The schedule's energy-delay product (J*s).

        Alias of :attr:`scheduled_edp`, matching the metric name the
        governor subsystem reports (``GovernedRun.edp``) so offline
        schedules and governed runs compare on the same axis.
        """
        return self.scheduled_edp

    @property
    def edp_ratio(self) -> float:
        """Scheduled EDP over baseline EDP (< 1 is an improvement)."""
        return self.scheduled_edp / self.baseline_edp


def evaluate_policy(
    benchmark: BenchmarkModel,
    n_ranks: int,
    policy: SchedulingPolicy,
    spec: ClusterSpec | None = None,
    baseline: SchedulingPolicy | None = None,
) -> ScheduleEvaluation:
    """Run ``benchmark`` under ``policy`` and under a static baseline.

    The baseline defaults to static peak frequency (the "performance
    first" configuration every DVS study compares against).  Fresh
    clusters are built for each run so meters start from zero.
    """
    base_spec = (spec or paper_spec()).with_nodes(n_ranks)
    if baseline is None:
        baseline = StaticPolicy(
            base_spec.cpu.operating_points.peak.frequency_hz
        )

    def run_with(p: SchedulingPolicy) -> tuple[float, float]:
        cluster = Cluster(base_spec)
        program = scheduled_program(benchmark, n_ranks, p)
        result = run_program(cluster, program)
        return result.elapsed_s, result.energy_j

    base_time, base_energy = run_with(baseline)
    sched_time, sched_energy = run_with(policy)
    return ScheduleEvaluation(
        benchmark=f"{benchmark.name}.{benchmark.problem_class.value}",
        n_ranks=n_ranks,
        baseline_time_s=base_time,
        baseline_energy_j=base_energy,
        scheduled_time_s=sched_time,
        scheduled_energy_j=sched_energy,
    )
