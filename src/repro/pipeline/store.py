"""In-memory artifact store shared by the experiments of one plan.

The planner deposits one :class:`~repro.pipeline.artifacts.
CampaignArtifact` per unique request; each experiment's stages then
read their campaigns from here (instead of calling
``measure_campaign`` privately) and deposit their own fit/analysis/
table artifacts.  :meth:`ArtifactStore.provenance_document` serializes
the whole store — every artifact's kind, producer and inputs digest —
through :func:`repro.reporting.jsonify` for export (the CLI's
``--plan-json``, CI's provenance upload).
"""

from __future__ import annotations

import typing as _t

from repro.pipeline.artifacts import (
    PIPELINE_SCHEMA_VERSION,
    Artifact,
    CampaignArtifact,
)
from repro.pipeline.requests import CampaignRequest

__all__ = ["ArtifactStore", "campaign_artifact_name"]


def campaign_artifact_name(request: CampaignRequest) -> str:
    """Store name of the campaign artifact satisfying ``request``."""
    return f"campaign/{request.label}/{request.digest()}"


class ArtifactStore:
    """Insert-only mapping of artifact name → :class:`Artifact`."""

    def __init__(self) -> None:
        self._artifacts: dict[str, Artifact] = {}

    def add(self, artifact: Artifact) -> Artifact:
        """Deposit an artifact (last write wins) and return it."""
        self._artifacts[artifact.name] = artifact
        return artifact

    def get(self, name: str) -> Artifact | None:
        """The artifact stored under ``name``, or ``None``."""
        return self._artifacts.get(name)

    def campaign(self, request: CampaignRequest) -> CampaignArtifact | None:
        """The campaign artifact satisfying ``request``, if planned."""
        artifact = self._artifacts.get(campaign_artifact_name(request))
        if isinstance(artifact, CampaignArtifact):
            return artifact
        return None

    def names(self) -> list[str]:
        """Every stored artifact name, sorted."""
        return sorted(self._artifacts)

    def __contains__(self, name: str) -> bool:
        return name in self._artifacts

    def __len__(self) -> int:
        return len(self._artifacts)

    def provenance_document(self) -> dict[str, _t.Any]:
        """JSON-ready provenance of every artifact in the store."""
        return {
            "schema_version": PIPELINE_SCHEMA_VERSION,
            "artifacts": [
                self._artifacts[name].as_dict() for name in self.names()
            ],
        }
