"""Typed pipeline artifacts with provenance.

Every value flowing between pipeline stages is wrapped in an
:class:`Artifact`: the measured campaigns feeding the stages
(:class:`CampaignArtifact`), fitted model parameters
(:class:`FitArtifact`) and rendered paper artifacts
(:class:`TableArtifact`).  Each carries a :class:`Provenance` — which
experiment and stage produced it, a digest of the inputs it was
computed from, the pipeline schema version and the wall time spent —
so an artifact store can be serialized (via
:func:`repro.reporting.jsonify`) into a machine-checkable record of
how every number was produced.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as _t

__all__ = [
    "PIPELINE_SCHEMA_VERSION",
    "inputs_digest",
    "Provenance",
    "Artifact",
    "CampaignArtifact",
    "FitArtifact",
    "TableArtifact",
]

#: Version of the artifact/provenance schema.  Bump when the layout of
#: provenance documents changes incompatibly.
PIPELINE_SCHEMA_VERSION = 1


def inputs_digest(value: _t.Any) -> str:
    """Stable short digest of a stage's (jsonified) inputs."""
    from repro.reporting import jsonify

    payload = json.dumps(jsonify(value), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class Provenance:
    """Where an artifact came from.

    Attributes
    ----------
    experiment_id:
        Producing experiment (empty for planner-produced campaign
        artifacts, which are shared across experiments).
    stage:
        Producing stage name (``"plan"`` for campaign artifacts).
    inputs_digest:
        Digest of the inputs the artifact was computed from — params,
        request digests and upstream stage names.
    schema_version:
        :data:`PIPELINE_SCHEMA_VERSION` at creation time.
    wall_s:
        Wall-clock seconds spent producing the artifact.
    """

    experiment_id: str
    stage: str
    inputs_digest: str
    schema_version: int = PIPELINE_SCHEMA_VERSION
    wall_s: float = 0.0

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready provenance record."""
        return {
            "experiment_id": self.experiment_id,
            "stage": self.stage,
            "inputs_digest": self.inputs_digest,
            "schema_version": self.schema_version,
            "wall_s": self.wall_s,
        }


@dataclasses.dataclass(frozen=True, eq=False)
class Artifact:
    """A named, provenance-tracked value in the pipeline store."""

    name: str
    value: _t.Any
    provenance: Provenance

    kind: _t.ClassVar[str] = "artifact"

    def describe(self) -> dict[str, _t.Any]:
        """Kind-specific summary for provenance documents (no bulk
        data — the store serializes values separately when asked)."""
        return {}

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready description: name, kind, provenance, summary."""
        document = {
            "name": self.name,
            "kind": self.kind,
            "provenance": self.provenance.as_dict(),
        }
        document.update(self.describe())
        return document


@dataclasses.dataclass(frozen=True, eq=False)
class CampaignArtifact(Artifact):
    """A measured :class:`~repro.core.measurements.TimingCampaign`.

    ``source`` records how the planner satisfied the request:
    ``"cached"`` (memory or disk tier hit) or ``"planned"``
    (assembled from the shared cross-experiment batch).
    """

    request: _t.Any = None  # CampaignRequest (kept Any: no cycle)
    source: str = "planned"

    kind: _t.ClassVar[str] = "campaign"

    def describe(self) -> dict[str, _t.Any]:
        summary: dict[str, _t.Any] = {"source": self.source}
        if self.request is not None:
            summary["request"] = self.request.as_dict()
        if self.value is not None:
            summary["cells"] = len(self.value.times)
            summary["label"] = self.value.label
        return summary


@dataclasses.dataclass(frozen=True, eq=False)
class FitArtifact(Artifact):
    """Fitted model parameters (a ``fit`` stage's output)."""

    kind: _t.ClassVar[str] = "fit"


@dataclasses.dataclass(frozen=True, eq=False)
class TableArtifact(Artifact):
    """A rendered paper artifact (an ``ExperimentResult``)."""

    kind: _t.ClassVar[str] = "table"

    def describe(self) -> dict[str, _t.Any]:
        result = self.value
        return {
            "experiment": getattr(result, "experiment_id", ""),
            "title": getattr(result, "title", ""),
        }
