"""Typed campaign requirements — what an experiment *needs*.

A :class:`CampaignRequest` names a measurement grid declaratively:
benchmark, problem class, processor counts, frequencies, and
optionally a platform override (:class:`~repro.cluster.machine.
ClusterSpec`) and benchmark constructor options (e.g. FT's
``decomposition``).  Experiments publish their requests *before*
running, which is what lets the planner (:mod:`repro.pipeline.
planner`) compute the union of cells across many experiments and
execute it as one deduplicated batch.

Identity is content-based: two requests naming the same (benchmark
config, grid, platform) share a digest — and therefore one execution —
no matter which experiments issued them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

from repro.cluster.machine import ClusterSpec
from repro.npb import BENCHMARKS, ProblemClass
from repro.npb.base import BenchmarkModel

__all__ = ["CampaignRequest"]

Cell = tuple[int, float]


@dataclasses.dataclass(frozen=True, eq=False)
class CampaignRequest:
    """One declarative (benchmark × counts × frequencies) requirement.

    Attributes
    ----------
    benchmark:
        Benchmark name from :data:`repro.npb.BENCHMARKS`
        (``"ep"``, ``"ft"``, ``"lu"``, ...).
    problem_class:
        NPB problem class (a :class:`~repro.npb.ProblemClass` or its
        letter).
    counts:
        Processor counts of the grid.
    frequencies:
        Frequencies of the grid, in hertz.
    spec:
        Platform override; ``None`` means the paper platform (and
        digests identically to an explicit ``paper_spec()``).
    options:
        Extra benchmark constructor keyword arguments as sorted
        ``(name, value)`` pairs — e.g. ``(("decomposition", "1d"),)``
        for FT's ablation variant.
    backend:
        Execution backend (``"des"``, ``"analytic"`` or ``"auto"``);
        ``None`` resolves the runtime default at key time.  Part of
        the request identity — analytic and DES grids never dedup
        into one execution.
    platform:
        Named platform from the registry (:mod:`repro.platforms`),
        an alternative to passing ``spec`` directly.  ``"paper"``
        (and ``None``) keep ``spec`` at ``None`` so pre-registry
        digests — and warm caches — are preserved; any other name is
        resolved to its :class:`ClusterSpec` here, so the platform
        participates in cache identity through the spec digest.
        Unknown names raise :class:`~repro.errors.ConfigurationError`
        listing the registered choices.
    """

    benchmark: str
    problem_class: ProblemClass | str = ProblemClass.A
    counts: tuple[int, ...] = ()
    frequencies: tuple[float, ...] = ()
    spec: ClusterSpec | None = None
    options: tuple[tuple[str, _t.Any], ...] = ()
    backend: str | None = None
    platform: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark", str(self.benchmark).lower())
        if self.benchmark not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r}; available: "
                f"{sorted(BENCHMARKS)}"
            )
        if self.backend is not None:
            from repro.runtime import check_backend

            object.__setattr__(
                self, "backend", check_backend(self.backend)
            )
        if self.platform is not None:
            from repro.platforms import DEFAULT_PLATFORM, check_platform, get_platform

            name = check_platform(self.platform)
            object.__setattr__(self, "platform", name)
            if self.spec is not None:
                raise ValueError(
                    f"{self.benchmark}: pass either spec= or "
                    f"platform={name!r}, not both"
                )
            if name != DEFAULT_PLATFORM:
                object.__setattr__(self, "spec", get_platform(name))
        if isinstance(self.problem_class, str):
            object.__setattr__(
                self, "problem_class", ProblemClass.parse(self.problem_class)
            )
        object.__setattr__(
            self, "counts", tuple(int(n) for n in self.counts)
        )
        object.__setattr__(
            self, "frequencies", tuple(float(f) for f in self.frequencies)
        )
        object.__setattr__(
            self,
            "options",
            tuple(sorted((str(k), v) for k, v in self.options)),
        )
        if not self.counts or not self.frequencies:
            raise ValueError(
                f"{self.benchmark}: a campaign request needs at least "
                "one count and one frequency"
            )

    @property
    def label(self) -> str:
        """Campaign label, matching ``measure_campaign``'s."""
        return f"{self.benchmark}.{self.problem_class.value}"

    def build(self) -> BenchmarkModel:
        """Construct the benchmark model this request names."""
        return BENCHMARKS[self.benchmark](
            self.problem_class, **dict(self.options)
        )

    def cells(self) -> tuple[Cell, ...]:
        """The grid cells in grid order (count-major)."""
        return tuple(
            (n, f) for n in self.counts for f in self.frequencies
        )

    def key(self) -> tuple:
        """Full campaign identity (platform cache key), memoized."""
        cached = self.__dict__.get("_key")
        if cached is None:
            from repro.experiments.platform import _cache_key

            cached = _cache_key(
                self.build(),
                self.counts,
                self.frequencies,
                self.spec,
                self.backend,
            )
            object.__setattr__(self, "_key", cached)
        return cached

    def digest(self) -> str:
        """Short content digest — the dedup identity of this request."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(
                repr(self.key()).encode()
            ).hexdigest()[:16]
            object.__setattr__(self, "_digest", cached)
        return cached

    def group(self) -> tuple:
        """Execution-group identity: same benchmark config + platform.

        Requests in one group share simulated cells — a cell result
        depends only on (benchmark config, platform, n, f), never on
        which grid it was part of.
        """
        k = self.key()
        return (k[0], k[1], k[4], k[5], k[6])

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready description (provenance documents)."""
        k = self.key()
        return {
            "benchmark": self.benchmark,
            "class": self.problem_class.value,
            "counts": list(self.counts),
            "frequencies_mhz": [f / 1e6 for f in self.frequencies],
            "options": {name: value for name, value in self.options},
            "spec_digest": k[4],
            "benchmark_digest": k[5],
            "backend": k[6],
            "platform": self.platform,
            "digest": self.digest(),
        }
