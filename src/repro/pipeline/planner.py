"""Cross-experiment campaign planning.

Given every :class:`~repro.pipeline.requests.CampaignRequest` of a set
of experiments, the planner:

1. **Dedupes** requests by content digest — identical grids from
   different experiments collapse to one.
2. **Peeks** the existing cache tiers (memory, then disk) for each
   unique request; hits never re-enter execution, and their cells seed
   the process-global cell index so *overlapping* grids reuse them
   too.
3. Computes, per execution group (same benchmark config + platform),
   the **union of still-missing cells** and simulates each union once
   through :func:`repro.runtime.execute_cells` — one batch per group,
   inheriting the runner's parallelism and fault tolerance.
4. **Assembles** each request's campaign from the cell index in grid
   order — bit-identical to a direct ``measure_campaign`` call,
   because cells are independent and the simulator is deterministic —
   and adopts it into both cache tiers so later direct calls (and
   warm restarts) hit.

The cell index is process-global: across any number of plans in one
process, each unique (benchmark config, platform, n, f) cell is
simulated at most once.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
import typing as _t

from repro import runtime
from repro.cluster.machine import paper_spec
from repro.core.measurements import TimingCampaign
from repro.errors import CampaignExecutionError
from repro.pipeline.artifacts import CampaignArtifact, Provenance
from repro.pipeline.requests import CampaignRequest
from repro.pipeline.store import ArtifactStore, campaign_artifact_name

__all__ = ["PlanReport", "execute_plan", "clear_cell_index"]

#: (group key, n, f) → (time_s, energy_j) for every cell simulated or
#: recovered from cache in this process.  The at-most-once guarantee.
_CELL_INDEX: dict[tuple, tuple[float, float]] = {}


def clear_cell_index() -> None:
    """Forget all indexed cells (test isolation)."""
    _CELL_INDEX.clear()


@dataclasses.dataclass
class PlanReport:
    """Cell-level accounting of one planner pass.

    ``planned_cells`` counts cells over *all* incoming requests (the
    work the experiments asked for); ``executed_cells`` is what the
    batches actually simulated; ``deduped_cells`` is the difference —
    cells avoided by request dedup, grid overlap and the cache tiers.
    """

    requested_campaigns: int = 0
    unique_campaigns: int = 0
    cached_campaigns: int = 0
    planned_cells: int = 0
    deduped_cells: int = 0
    executed_cells: int = 0
    analytic_cells: int = 0
    batches: list[dict[str, _t.Any]] = dataclasses.field(
        default_factory=list
    )

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready plan accounting (the ``--plan-json`` export)."""
        return {
            "requested_campaigns": self.requested_campaigns,
            "unique_campaigns": self.unique_campaigns,
            "cached_campaigns": self.cached_campaigns,
            "planned_cells": self.planned_cells,
            "deduped_cells": self.deduped_cells,
            "executed_cells": self.executed_cells,
            "analytic_cells": self.analytic_cells,
            "batches": list(self.batches),
        }

    def summary_line(self) -> str:
        """One-line human summary (the CLI's ``[experiment plan]``)."""
        line = (
            f"{self.requested_campaigns} campaigns requested "
            f"({self.unique_campaigns} unique): "
            f"{self.planned_cells} cells planned, "
            f"{self.deduped_cells} deduped, "
            f"{self.executed_cells} executed in "
            f"{len(self.batches)} batches"
        )
        if self.analytic_cells:
            line += f" ({self.analytic_cells} analytic)"
        return line


def _index_campaign(request: CampaignRequest, campaign: TimingCampaign) -> None:
    """Seed the cell index with a campaign's cells."""
    group = request.group()
    for (n, f), seconds in campaign.times.items():
        _CELL_INDEX[(group, n, f)] = (
            seconds,
            campaign.energies[(n, f)],
        )


def _run_batch(
    request: CampaignRequest,
    cells: _t.Sequence[tuple[int, float]],
    *,
    jobs: int | None,
    fabric: bool | None = None,
) -> tuple[int, int]:
    """Run one group's missing-cell union.

    Returns ``(cells done, cells answered analytically)``.  Reports a
    ``"simulated"`` campaign record exactly like ``measure_campaign``
    does for a direct execution, so downstream metrics consumers see
    one batch per group.
    """
    start = time.perf_counter()
    group = request.group()
    benchmark = request.build()
    node_spec = request.spec if request.spec is not None else paper_spec()
    try:
        execution = runtime.execute_cells(
            benchmark,
            cells,
            node_spec,
            jobs=runtime.resolve_jobs(jobs, len(cells)),
            retries=runtime.resolve_retries(None),
            cell_timeout=runtime.resolve_cell_timeout(None),
            backoff_s=runtime.resolve_retry_backoff(None),
            allow_partial=runtime.resolve_allow_partial(None),
            backend=request.key()[6],
            fabric=fabric,
        )
    except CampaignExecutionError as error:
        runtime.METRICS.record(
            runtime.CampaignRecord(
                label=request.label,
                source="failed",
                cells=len(cells),
                wall_s=time.perf_counter() - start,
                failed_cells=len(error.failures),
                failures=tuple(
                    {"cell": list(err.cell), "error": str(err)}
                    for err in error.failures
                ),
            )
        )
        raise
    for cell, seconds in execution.times.items():
        _CELL_INDEX[(group, cell[0], cell[1])] = (
            seconds,
            execution.energies[cell],
        )
    cell_attempts = execution.cell_attempts()
    runtime.METRICS.record(
        runtime.CampaignRecord(
            label=request.label,
            source="simulated",
            cells=len(cells),
            wall_s=time.perf_counter() - start,
            jobs=execution.jobs,
            analytic_cells=execution.analytic_cells,
            fabric_cells=execution.fabric_cells,
            fabric_workers=execution.fabric_workers,
            fabric_reassignments=execution.fabric_reassignments,
            cell_wall_s=execution.cell_wall_s,
            attempts=len(execution.attempts),
            retries=execution.retry_count,
            timeouts=execution.timeout_count,
            crash_recoveries=execution.crash_recoveries,
            failed_cells=len(execution.failures),
            cell_attempts=tuple(
                (n, f, count)
                for (n, f), count in cell_attempts.items()
            ),
            failures=tuple(execution.failure_report()),
            events_processed=execution.events_processed,
            processes_spawned=execution.processes_spawned,
            peak_queue_len=execution.peak_queue_len,
        )
    )
    return len(execution.times), execution.analytic_cells


def execute_plan(
    requests: _t.Sequence[CampaignRequest],
    store: ArtifactStore,
    *,
    jobs: int | None = None,
    fabric: bool | None = None,
) -> PlanReport:
    """Satisfy every request, simulating each unique cell at most once.

    Deposits one :class:`CampaignArtifact` per unique request into
    ``store`` and reports plan counters (planned/deduped/executed
    cells) into the runtime metrics.  Raises
    :class:`~repro.errors.CampaignExecutionError` if a batch exhausts
    its retry budget and partial campaigns are not allowed.

    ``fabric`` dispatches each execution-group batch to the
    distributed worker fleet (``None`` resolves the configured
    default; no live fleet falls back to the local pool per batch).
    With a live fleet, up to ``REPRO_PLAN_WINDOW`` (default 4) group
    batches are kept in flight on the coordinator concurrently so the
    fleet never drains between groups.
    """
    start = time.perf_counter()
    report = PlanReport(requested_campaigns=len(requests))
    report.planned_cells = sum(len(r.cells()) for r in requests)

    # 1. Dedup by content digest.
    unique: dict[str, CampaignRequest] = {}
    for request in requests:
        unique.setdefault(request.digest(), request)
    report.unique_campaigns = len(unique)

    # 2. Cache peek; hits seed the cell index for overlapping grids.
    campaigns: dict[str, TimingCampaign] = {}
    sources: dict[str, str] = {}
    missing: dict[str, CampaignRequest] = {}
    for digest, request in unique.items():
        campaign = platform_peek(request)
        if campaign is not None:
            campaigns[digest] = campaign
            sources[digest] = "cached"
            _index_campaign(request, campaign)
        else:
            missing[digest] = request
    report.cached_campaigns = len(campaigns)

    # 3. Per-group union of cells not yet indexed, one batch each.
    groups: dict[tuple, list[CampaignRequest]] = {}
    for request in missing.values():
        groups.setdefault(request.group(), []).append(request)
    group_batches: list[
        tuple[list[CampaignRequest], list[tuple[int, float]]]
    ] = []
    for group, members in groups.items():
        needed: list[tuple[int, float]] = []
        seen: set[tuple[int, float]] = set()
        for request in members:
            for cell in request.cells():
                if cell in seen or (group, *cell) in _CELL_INDEX:
                    continue
                seen.add(cell)
                needed.append(cell)
        if needed:
            group_batches.append((members, needed))

    # With a live worker fleet, pipeline the group batches: up to
    # ``REPRO_PLAN_WINDOW`` groups are submitted to the coordinator
    # concurrently, so the fleet never drains between groups.  Each
    # in-flight group still produces its own CampaignRecord, and
    # per-group assembly below stays in plan order (bit-identical
    # merge).  Without a fleet, dispatch stays strictly sequential.
    window = runtime.resolve_plan_window(None)
    live_fleet = False
    if (
        runtime.resolve_fabric(fabric)
        and window > 1
        and len(group_batches) > 1
    ):
        from repro.fabric import active_coordinator

        coordinator = active_coordinator()
        live_fleet = (
            coordinator is not None
            and not coordinator.draining
            and coordinator.live_workers() > 0
        )
    outcomes: list[tuple[int, int] | None] = [None] * len(
        group_batches
    )
    if live_fleet:
        errors: list[CampaignExecutionError | None] = [None] * len(
            group_batches
        )
        # Cells a degrading fleet strands run locally *inside* a
        # dispatch thread — force that fallback serial (jobs=1) so
        # concurrent groups never fight over the shared local pool.
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=window, thread_name_prefix="plan-dispatch"
        ) as pool:
            futures = {
                pool.submit(
                    _run_batch,
                    members[0],
                    needed,
                    jobs=1,
                    fabric=fabric,
                ): index
                for index, (members, needed) in enumerate(
                    group_batches
                )
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                try:
                    outcomes[index] = future.result()
                except CampaignExecutionError as error:
                    errors[index] = error
        for error in errors:
            if error is not None:
                raise error
    else:
        for index, (members, needed) in enumerate(group_batches):
            outcomes[index] = _run_batch(
                members[0], needed, jobs=jobs, fabric=fabric
            )
    for (members, needed), outcome in zip(group_batches, outcomes):
        done, analytic = outcome
        report.executed_cells += done
        report.analytic_cells += analytic
        report.batches.append(
            {
                "label": members[0].label,
                "requests": len(members),
                "cells": len(needed),
                "completed": done,
                "backend": members[0].key()[6],
                "analytic_cells": analytic,
            }
        )

    # 4. Assemble per-request campaigns from the index, grid order.
    for digest, request in missing.items():
        group = request.group()
        times: dict[tuple[int, float], float] = {}
        energies: dict[tuple[int, float], float] = {}
        for cell in request.cells():
            entry = _CELL_INDEX.get((group, *cell))
            if entry is not None:
                times[cell] = entry[0]
                energies[cell] = entry[1]
        campaign = TimingCampaign(
            times=times,
            base_frequency_hz=min(request.frequencies),
            energies=energies,
            label=request.label,
        )
        if len(times) == len(request.cells()):
            # Complete → warm both cache tiers, exactly as if this
            # campaign had gone through measure_campaign.
            platform_adopt(request, campaign)
        campaigns[digest] = campaign
        sources[digest] = "planned"
        runtime.METRICS.record(
            runtime.CampaignRecord(
                label=request.label,
                source="planned",
                cells=len(request.cells()),
                wall_s=0.0,
                failed_cells=len(request.cells()) - len(times),
            )
        )

    # 5. Deposit campaign artifacts.
    for digest, request in unique.items():
        store.add(
            CampaignArtifact(
                name=campaign_artifact_name(request),
                value=campaigns[digest],
                provenance=Provenance(
                    experiment_id="",
                    stage="plan",
                    inputs_digest=digest,
                    wall_s=time.perf_counter() - start,
                ),
                request=request,
                source=sources[digest],
            )
        )

    report.deduped_cells = report.planned_cells - report.executed_cells
    runtime.METRICS.record_plan(
        report.planned_cells,
        report.deduped_cells,
        report.executed_cells,
    )
    return report


def platform_peek(request: CampaignRequest) -> TimingCampaign | None:
    """Cache-only lookup via the platform's tiers."""
    from repro.experiments.platform import peek_campaign

    return peek_campaign(
        request.build(),
        request.counts,
        request.frequencies,
        request.spec,
        backend=request.key()[6],
    )


def platform_adopt(
    request: CampaignRequest, campaign: TimingCampaign
) -> None:
    """Warm the platform's cache tiers with an assembled campaign."""
    from repro.experiments.platform import adopt_campaign

    adopt_campaign(
        request.build(),
        request.counts,
        request.frequencies,
        campaign,
        request.spec,
        backend=request.key()[6],
    )
