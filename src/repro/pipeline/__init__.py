"""Declarative experiment pipeline with cross-experiment planning.

The paper's artifacts (Tables 1–7, Figures 1–2, the EDP/ablation
studies) all measure on the same (benchmark × counts × frequency)
grids, then diverge only in analysis.  This package separates those
concerns:

* :mod:`~repro.pipeline.requests` — :class:`CampaignRequest`, the
  typed, content-addressed description of what an experiment needs.
* :mod:`~repro.pipeline.planner` — dedupes requests across any set of
  experiments, executes the union of missing cells as one batch per
  (benchmark config, platform) group via
  :func:`repro.runtime.execute_cells`, and guarantees each unique
  cell simulates **at most once per process**.
* :mod:`~repro.pipeline.artifacts` / :mod:`~repro.pipeline.store` —
  typed artifacts (campaign, fit, table) with provenance (inputs
  digest, schema version, wall time) in a shared in-memory store.
* :mod:`~repro.pipeline.experiment` — :class:`ExperimentSpec` (pure
  ``fit`` → ``analyze`` → ``render`` stages) and the batch runner
  :func:`run_pipeline`.

Experiment outputs are bit-identical whether experiments run alone,
together, or through the pre-pipeline imperative drivers — the
simulator is deterministic and cells are independent, so assembling a
campaign from batch-executed cells reproduces ``measure_campaign``
exactly.
"""

from repro.pipeline.artifacts import (
    PIPELINE_SCHEMA_VERSION,
    Artifact,
    CampaignArtifact,
    FitArtifact,
    Provenance,
    TableArtifact,
    inputs_digest,
)
from repro.pipeline.experiment import (
    ExperimentSpec,
    Stage,
    StageContext,
    run_pipeline,
    run_single,
)
from repro.pipeline.planner import (
    PlanReport,
    clear_cell_index,
    execute_plan,
)
from repro.pipeline.requests import CampaignRequest
from repro.pipeline.store import ArtifactStore, campaign_artifact_name

__all__ = [
    "PIPELINE_SCHEMA_VERSION",
    "Artifact",
    "ArtifactStore",
    "CampaignArtifact",
    "CampaignRequest",
    "ExperimentSpec",
    "FitArtifact",
    "PlanReport",
    "Provenance",
    "Stage",
    "StageContext",
    "TableArtifact",
    "campaign_artifact_name",
    "clear_cell_index",
    "execute_plan",
    "inputs_digest",
    "run_pipeline",
    "run_single",
]
