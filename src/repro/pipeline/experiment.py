"""Declarative experiment specs and the stage runner.

An experiment is an :class:`ExperimentSpec`: a ``requires`` hook that
maps parameters to :class:`~repro.pipeline.requests.CampaignRequest`s,
plus an ordered tuple of pure :class:`Stage`s (conventionally ``fit``
→ ``analyze`` → ``render``) that transform measured campaigns into the
final :class:`~repro.experiments.registry.ExperimentResult`.  Stages
receive a :class:`StageContext` — parameters, the resolved requests,
the shared artifact store and the previous stages' outputs — and must
not measure anything themselves: campaigns come from the store, where
the planner put them.

:func:`run_pipeline` is the batch entry point: it resolves every
experiment's requests, executes them as **one deduplicated plan**
(:func:`repro.pipeline.planner.execute_plan`), then runs each
experiment's stages off the shared store.  Running experiments
together is therefore strictly cheaper than running them one by one,
and bit-identical to it.
"""

from __future__ import annotations

import dataclasses
import time
import typing as _t

from repro.experiments.registry import ExperimentResult
from repro.pipeline.artifacts import (
    Artifact,
    FitArtifact,
    Provenance,
    TableArtifact,
    inputs_digest,
)
from repro.pipeline.planner import PlanReport, execute_plan
from repro.pipeline.requests import CampaignRequest
from repro.pipeline.store import ArtifactStore

__all__ = [
    "Stage",
    "ExperimentSpec",
    "StageContext",
    "run_pipeline",
    "run_single",
]

Params = dict[str, _t.Any]
RequiresHook = _t.Callable[[Params], _t.Sequence[CampaignRequest]]


@dataclasses.dataclass(frozen=True, eq=False)
class Stage:
    """One pure transform step of an experiment.

    ``fn`` takes the :class:`StageContext` and returns the stage's
    output; the final stage must return an
    :class:`~repro.experiments.registry.ExperimentResult`.
    """

    name: str
    fn: _t.Callable[["StageContext"], _t.Any]


@dataclasses.dataclass(frozen=True, eq=False)
class ExperimentSpec:
    """A declarative experiment: requirements + transform stages.

    Attributes
    ----------
    experiment_id:
        Registry id (``"table3"``).
    title:
        Human-readable title for listings.
    stages:
        Ordered transform stages; the last must return an
        ``ExperimentResult``.
    requires:
        Either a static request tuple or a callable mapping the
        run's parameters to requests.  Empty for experiments that
        measure nothing through campaigns (pure profiling studies).
    description:
        Listing description (defaults to the title).
    """

    experiment_id: str
    title: str
    stages: tuple[Stage, ...]
    requires: RequiresHook | tuple[CampaignRequest, ...] = ()
    description: str = ""

    def resolve_requests(
        self, params: Params
    ) -> tuple[CampaignRequest, ...]:
        """The campaign requests this run needs, given ``params``."""
        if callable(self.requires):
            return tuple(self.requires(params) or ())
        return tuple(self.requires)


class StageContext:
    """What a stage sees: params, requests, store, prior outputs."""

    def __init__(
        self,
        spec: ExperimentSpec,
        params: Params,
        store: ArtifactStore,
        requests: tuple[CampaignRequest, ...],
    ) -> None:
        self.spec = spec
        self.params = dict(params)
        self.store = store
        self.requests = requests
        #: Previous stages' outputs by stage name.
        self.state: dict[str, _t.Any] = {}

    @property
    def experiment_id(self) -> str:
        """The running experiment's registry id."""
        return self.spec.experiment_id

    def param(self, name: str, default: _t.Any = None) -> _t.Any:
        """A run parameter, with an experiment-chosen default."""
        value = self.params.get(name, default)
        return default if value in (None, "") else value

    def campaign(self, which: int | CampaignRequest):
        """The measured campaign for one of this run's requests.

        ``which`` is an index into the spec's resolved requests or a
        request object.  Campaigns come from the shared store (the
        planner put them there); a request the planner never saw
        falls back to ``measure_campaign`` — whose cache the planner
        kept warm, so the at-most-once guarantee holds either way.
        """
        request = (
            self.requests[which] if isinstance(which, int) else which
        )
        artifact = self.store.campaign(request)
        if artifact is not None:
            return artifact.value
        from repro.experiments.platform import measure_campaign

        return measure_campaign(
            request.build(),
            request.counts,
            request.frequencies,
            spec=request.spec,
            backend=request.backend,
        )


def _run_stages(
    spec: ExperimentSpec,
    params: Params,
    store: ArtifactStore,
    requests: tuple[CampaignRequest, ...],
) -> ExperimentResult:
    """Run one experiment's stages off the shared store."""
    context = StageContext(spec, params, store, requests)
    base_inputs = {
        "params": {k: repr(v) for k, v in sorted(params.items())},
        "requests": [r.digest() for r in requests],
    }
    value: _t.Any = None
    previous: list[str] = []
    for stage in spec.stages:
        start = time.perf_counter()
        value = stage.fn(context)
        context.state[stage.name] = value
        provenance = Provenance(
            experiment_id=spec.experiment_id,
            stage=stage.name,
            inputs_digest=inputs_digest(
                {**base_inputs, "after": list(previous)}
            ),
            wall_s=time.perf_counter() - start,
        )
        name = f"{spec.experiment_id}/{stage.name}"
        if isinstance(value, ExperimentResult):
            store.add(TableArtifact(name, value, provenance))
        elif stage.name == "fit":
            store.add(FitArtifact(name, value, provenance))
        else:
            store.add(Artifact(name, value, provenance))
        previous.append(stage.name)
    if not isinstance(value, ExperimentResult):
        raise TypeError(
            f"experiment {spec.experiment_id!r}: final stage "
            f"{spec.stages[-1].name!r} returned "
            f"{type(value).__name__}, expected ExperimentResult"
        )
    return value


def run_pipeline(
    items: _t.Sequence[ExperimentSpec | tuple[ExperimentSpec, Params]],
    *,
    store: ArtifactStore | None = None,
    jobs: int | None = None,
) -> tuple[dict[str, ExperimentResult], PlanReport]:
    """Run many experiments as one deduplicated plan.

    ``items`` holds specs, or ``(spec, params)`` pairs for
    parameterized runs.  Returns ``(results by experiment id, plan
    report)``.  The store (given or fresh) ends up holding every
    campaign, fit, analysis and table artifact of the batch.
    """
    store = store if store is not None else ArtifactStore()
    pairs = [
        item if isinstance(item, tuple) else (item, {}) for item in items
    ]
    resolved = [
        (spec, dict(params), spec.resolve_requests(dict(params)))
        for spec, params in pairs
    ]
    all_requests = [
        request
        for _spec, _params, requests in resolved
        for request in requests
    ]
    report = execute_plan(all_requests, store, jobs=jobs)
    results: dict[str, ExperimentResult] = {}
    for spec, params, requests in resolved:
        results[spec.experiment_id] = _run_stages(
            spec, params, store, requests
        )
    return results, report


def run_single(
    spec: ExperimentSpec,
    params: Params | None = None,
    *,
    store: ArtifactStore | None = None,
) -> ExperimentResult:
    """Run one experiment through the pipeline (registry entry path)."""
    results, _report = run_pipeline([(spec, dict(params or {}))], store=store)
    return results[spec.experiment_id]
