"""Vectorized, bit-identical closed-form kernels.

Every function here evaluates one of the model's scalar closed forms
(:mod:`repro.core.exectime`, :mod:`repro.core.params_sp`,
:mod:`repro.core.energy`) element-wise over numpy float64 arrays,
performing *the same IEEE-754 double operations in the same order* as
the scalar code.  That makes the vectorized results bit-identical to a
per-cell Python loop — the guarantee the analytic campaign backend and
the service's micro-batched ``/predict`` path both rely on, and the
property the tests in ``tests/analytic/test_vectorized_identity.py``
pin with exact ``==`` comparisons.

The bit-identity argument: elementwise numpy arithmetic on float64
arrays applies the identical hardware double operation per element
that CPython applies to its ``float`` objects, so as long as (a) the
operand *values* match and (b) the *sequence* of operations per
element matches, the results match to the last ulp.  Each kernel's
docstring names the scalar function it mirrors and preserves its exact
accumulation order.

This module deliberately depends only on numpy so it can be imported
from anywhere in the package (the service, the runtime backend, the
benchmarks) without cycles.
"""

from __future__ import annotations

import typing as _t

import numpy as np

__all__ = [
    "component_times",
    "sp_times",
    "energy_joules",
]


def component_times(
    components: _t.Sequence[tuple[float, float, _t.Sequence[float]]],
    on_rate: np.ndarray,
    off_rate: np.ndarray,
    overhead: np.ndarray,
) -> np.ndarray:
    """Eq. 9 over a cell vector, mirroring ``ExecutionTimeModel.parallel_time``.

    Parameters
    ----------
    components:
        ``(on_chip, off_chip, divisors)`` per DOP component, in the
        workload's component order; ``divisors`` is the per-cell
        ``effective_divisor(n)`` vector for that component.
    on_rate, off_rate:
        Per-cell ``CPI_ON/f`` and ``CPI_OFF/f_OFF`` seconds per
        instruction.
    overhead:
        Per-cell parallel-overhead seconds ``T(w_PO, n, f)``.

    The scalar path accumulates ``time += on; time += off`` per
    component, then ``time += overhead``; the element-wise adds below
    replay exactly that sequence, so each returned element is
    bit-identical to the corresponding scalar call.
    """
    times = np.zeros_like(on_rate)
    for on_chip, off_chip, divisors in components:
        div = np.asarray(divisors, dtype=np.float64)
        times += on_chip * on_rate / div
        times += off_chip * off_rate / div
    times += overhead
    return times


def sp_times(
    t1: np.ndarray, n: np.ndarray, overhead: np.ndarray
) -> np.ndarray:
    """Eq. 18 over a cell vector, mirroring ``SimplifiedParameterization.predict_time``.

    ``t1`` is the measured sequential time at each cell's frequency,
    ``n`` the (float) processor count, ``overhead`` the clamped SP
    overhead term (zero-filled for sequential cells).  Cells with
    ``n == 1`` are restored to the bare ``T_1`` because the scalar
    path never touches the overhead term there.
    """
    times = t1 / n + overhead
    sequential = n == 1.0
    times[sequential] = t1[sequential]
    return times


def energy_joules(
    n: np.ndarray,
    busy_power_w: np.ndarray,
    overhead_power_w: np.ndarray,
    total_s: np.ndarray,
    overhead_s: np.ndarray,
) -> np.ndarray:
    """Per-cell energy, mirroring ``EnergyModel.predict``.

    The scalar path clamps ``overhead = min(max(o, 0), total)``, splits
    ``busy = total - overhead`` and charges
    ``n * (busy_power * busy + overhead_power * overhead)``; the same
    operations run element-wise here (``np.minimum``/``np.maximum``
    agree with Python's ``min``/``max`` on every non-NaN double, and a
    ``-0.0``-vs-``+0.0`` disagreement cannot change any product or sum
    below).
    """
    overhead = np.minimum(np.maximum(overhead_s, 0.0), total_s)
    busy = total_s - overhead
    return n * (busy_power_w * busy + overhead_power_w * overhead)
