"""Analytic campaign backend: closed forms, vectorized over grids.

Evaluates entire (processor count, frequency) campaign grids from the
paper's equations in one numpy pass instead of one discrete-event
simulation per cell — the ``backend="analytic"`` execution path.  See
:mod:`repro.analytic.model` for the model construction and
:mod:`repro.analytic.vectorized` for the bit-identical kernels, and
``docs/ANALYTIC.md`` for the equations → code map and the documented
analytic-vs-DES tolerances.
"""

from repro.analytic.model import (
    DEFAULT_MAX_DOP,
    ENERGY_TOLERANCE,
    TIME_TOLERANCE,
    AnalyticCampaignModel,
    AnalyticEvaluation,
    AnalyticOverhead,
    partition_cells,
    validated_benchmarks,
)
from repro.analytic.vectorized import (
    component_times,
    energy_joules,
    sp_times,
)

__all__ = [
    "DEFAULT_MAX_DOP",
    "TIME_TOLERANCE",
    "ENERGY_TOLERANCE",
    "AnalyticCampaignModel",
    "AnalyticEvaluation",
    "AnalyticOverhead",
    "partition_cells",
    "validated_benchmarks",
    "component_times",
    "energy_joules",
    "sp_times",
]
