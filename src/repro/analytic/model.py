"""Analytic campaign evaluation: whole (N, f) grids in one numpy pass.

The DES executes every campaign cell event by event; this module
evaluates the same grid from the paper's closed forms instead
(Eq. 6/9 execution time, the FP-style message-profile overhead of
§5.2, and the energy model), with all the per-cell arithmetic done by
the vectorized kernels in :mod:`repro.analytic.vectorized`.  A full
paper grid (5 counts × 5 frequencies) evaluates in well under a
millisecond — the ``backend="analytic"`` execution path that
:mod:`repro.runtime.runner` dispatches to.

The model is built *from the platform spec*, the same way the DES
cluster is: ``CPI_ON`` is the spec's per-level CPI weighted by the
benchmark's instruction mix, OFF-chip seconds/instruction come from
the memory spec's latency table (including the bus-downshift quirk),
and the per-message cost mirrors what the simulated network charges —
host overhead at both ends (DVFS-sensitive), wire serialization
scaled by the congestion penalty at the benchmark's steady-state flow
concurrency, and the one-way latency.

What the closed forms deliberately do not capture — port queuing
behind staggered arrivals, pipeline fill imbalance, barrier slivers —
is exactly the analytic-vs-DES gap.  It is measured per benchmark and
documented as a golden tolerance (:data:`TIME_TOLERANCE`,
:data:`ENERGY_TOLERANCE`); benchmarks without a documented tolerance
are not *validated*, and the ``auto`` backend routes their cells to
the DES (see :func:`partition_cells` and ``docs/ANALYTIC.md``).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.cluster.cpu import CpuTimingModel
from repro.cluster.machine import ClusterSpec, paper_spec
from repro.cluster.memory import MemoryTimingModel
from repro.core.cpi import WorkloadRates
from repro.core.energy import EnergyModel
from repro.core.exectime import ExecutionTimeModel
from repro.core.measurements import TimingCampaign
from repro.errors import ConfigurationError, ModelError
from repro.npb.base import BenchmarkModel

from repro.analytic.vectorized import component_times, energy_joules

__all__ = [
    "DEFAULT_MAX_DOP",
    "TIME_TOLERANCE",
    "ENERGY_TOLERANCE",
    "AnalyticEvaluation",
    "AnalyticOverhead",
    "AnalyticCampaignModel",
    "validated_benchmarks",
    "partition_cells",
]

Cell = tuple[int, float]

#: The paper's ``m`` when the DOP decomposition caps at "very large"
#: (matches ``FineGrainParameterization``'s default, and is divisible
#: by every power-of-two processor count, so ``effective_divisor(n)``
#: is exactly ``n`` on the paper grid).
DEFAULT_MAX_DOP = 1 << 20

#: Documented per-benchmark golden tolerances: the maximum relative
#: cell error |analytic − DES| / DES observed on the full paper grid,
#: with margin.  Only benchmarks listed here are *validated* — the
#: ``auto`` backend routes everything else to the DES.  The golden
#: suite (``tests/analytic/test_golden_tolerance.py``) pins these
#: numbers; ``docs/ANALYTIC.md`` discusses where each gap comes from.
TIME_TOLERANCE: dict[str, float] = {
    # Measured max grid error 0.01% — EP's three 80-byte allreduces
    # are ~ppm of a 300 s run.
    "ep": 0.001,
    # Measured 0.05%: the transpose is bandwidth-bound and the
    # congestion penalty at N concurrent flows captures the DES's
    # incast behaviour almost exactly.
    "ft": 0.005,
    # Measured 10.5% (overestimate, worst at N=16 @ 1400 MHz): the
    # DES overlaps boundary transfers with pipelined sweep compute,
    # while the closed form charges every critical-path message in
    # full — the same Assumption-2-style overestimate the paper
    # reports (~13%) for its own fine-grain parameterization on LU.
    "lu": 0.12,
}

#: Energy-side golden tolerances (same grids; energy blends busy and
#: overhead power, so its error tracks the time error closely).
#: Measured maxima: EP 0.05%, FT 0.7%, LU 10.9%.
ENERGY_TOLERANCE: dict[str, float] = {
    "ep": 0.002,
    "ft": 0.015,
    "lu": 0.12,
}


def validated_benchmarks() -> tuple[str, ...]:
    """Benchmark names with a documented analytic tolerance."""
    return tuple(sorted(TIME_TOLERANCE))


class AnalyticOverhead:
    """FP-style parallel overhead priced from the platform spec.

    Implements the :class:`~repro.core.workload.OverheadModel`
    protocol: ``overhead_time(n, f)`` is the benchmark's critical-path
    message count times the analytic per-message cost

    ``t_msg = 2 · host_overhead(bytes, f) + serialization · penalty + latency``

    mirroring what the simulated network charges a lone transfer —
    host CPU time at both endpoints (the DVFS-sensitive term), wire
    serialization scaled by the switch's congestion penalty at the
    benchmark's steady-state flow concurrency
    (:meth:`~repro.npb.base.BenchmarkModel.concurrent_flows`), and the
    one-way latency.
    """

    def __init__(
        self, benchmark: BenchmarkModel, spec: ClusterSpec
    ) -> None:
        self._benchmark = benchmark
        self._spec = spec

    def message_time(
        self, nbytes: float, frequency_hz: float, flows: float = 1.0
    ) -> float:
        """Analytic cost of one point-to-point message at ``f``.

        On heterogeneous platforms the host-overhead term uses the
        slowest group's NIC — critical-path messages are paced by
        their slowest endpoint.  The homogeneous branch is untouched
        (bit-identical to the pre-registry model).
        """
        network = self._spec.network
        if self._spec.is_heterogeneous:
            host = max(
                group.nic.host_overhead_s(nbytes, frequency_hz)
                for group in self._spec.node_groups()
            )
        else:
            host = self._spec.nic.host_overhead_s(nbytes, frequency_hz)
        serialization = nbytes / network.effective_bandwidth
        penalty = network.congestion_penalty(int(flows))
        return 2.0 * host + serialization * penalty + network.latency_s

    def overhead_time(self, n: int, frequency_hz: float) -> float:
        """Critical-path messages × per-message time (0 for n <= 1)."""
        if n <= 1:
            return 0.0
        profile = self._benchmark.message_profile(n)
        flows = self._benchmark.concurrent_flows(n)
        return profile.critical_messages * self.message_time(
            profile.nbytes, frequency_hz, flows
        )


@dataclasses.dataclass(frozen=True)
class AnalyticEvaluation:
    """One vectorized pass over a list of campaign cells.

    ``times``, ``energies`` and ``overheads`` are float64 arrays
    aligned with ``cells``; every element is bit-identical to the
    corresponding scalar ``ExecutionTimeModel.parallel_time`` /
    ``EnergyModel.predict`` call.
    """

    cells: tuple[Cell, ...]
    times: np.ndarray
    energies: np.ndarray
    overheads: np.ndarray
    #: T_1(w, f0): the sequential time at the base frequency, for
    #: power-aware speedups (Eq. 4/10).
    baseline_s: float

    def times_by_cell(self) -> dict[Cell, float]:
        """Per-cell times in the order the cells were given."""
        return {
            cell: float(self.times[i])
            for i, cell in enumerate(self.cells)
        }

    def energies_by_cell(self) -> dict[Cell, float]:
        """Per-cell energies in the order the cells were given."""
        return {
            cell: float(self.energies[i])
            for i, cell in enumerate(self.cells)
        }

    def speedups(self) -> np.ndarray:
        """Power-aware speedups ``S = T_1(w, f0) / T_N(w, f)`` (Eq. 4)."""
        return self.baseline_s / self.times

    def mean_power_w(self) -> np.ndarray:
        """Campaign-level mean power draw per cell, ``E / T``."""
        return self.energies / self.times

    def campaign(
        self, base_frequency_hz: float, label: str = ""
    ) -> TimingCampaign:
        """Package the evaluation as a :class:`TimingCampaign`."""
        return TimingCampaign(
            times=self.times_by_cell(),
            base_frequency_hz=base_frequency_hz,
            energies=self.energies_by_cell(),
            label=label,
        )


class AnalyticCampaignModel:
    """Closed-form campaign evaluator for one (benchmark, platform).

    Construction derives every model parameter from the spec — no
    measurement campaign needed:

    * ``CPI_ON``: the spec's per-level CPIs weighted by the
      benchmark's instruction mix (§5.2 step 2, from specs instead of
      probes);
    * OFF-chip seconds/instruction: the memory spec's latency table,
      per core frequency (Table 6's bottom row, bus downshift
      included);
    * DOP decomposition: ``benchmark.workload(DEFAULT_MAX_DOP)``
      (Eq. 9);
    * parallel overhead: :class:`AnalyticOverhead`;
    * energy: the same :class:`~repro.core.energy.EnergyModel` the
      service predicts with, overhead seconds taken from the model's
      own overhead term.

    :meth:`scalar_model` exposes the equivalent per-cell
    :class:`~repro.core.exectime.ExecutionTimeModel`; the vectorized
    :meth:`evaluate_cells` is bit-identical to calling it in a loop.
    """

    def __init__(
        self,
        benchmark: BenchmarkModel,
        spec: ClusterSpec | None = None,
        max_dop: int = DEFAULT_MAX_DOP,
    ) -> None:
        self.benchmark = benchmark
        self.spec = spec if spec is not None else paper_spec()
        mix = benchmark.total_mix()
        memory = MemoryTimingModel(self.spec.memory)
        if self.spec.is_heterogeneous:
            frequencies = self.spec.common_frequencies()
        else:
            frequencies = self.spec.cpu.operating_points.frequencies
        self.rates = WorkloadRates(
            CpuTimingModel(self.spec.cpu).weighted_cpi_on(mix),
            {f: memory.off_chip_latency_s(f) for f in frequencies},
        )
        self.workload = benchmark.workload(max_dop)
        self.overhead = AnalyticOverhead(benchmark, self.spec)
        self.energy_model = EnergyModel(
            self.spec.power, self.spec.cpu.operating_points
        )
        # Per-group rate/energy models for heterogeneous platforms.
        # Group 0's entries equal self.rates / self.energy_model, so
        # the homogeneous path (which never reads these) stays the
        # single-model code above.
        self._group_rates: tuple[WorkloadRates, ...] = ()
        self._group_energy: tuple[EnergyModel, ...] = ()
        if self.spec.is_heterogeneous:
            group_rates = []
            group_energy = []
            for group in self.spec.node_groups():
                group_memory = MemoryTimingModel(group.memory)
                group_rates.append(
                    WorkloadRates(
                        CpuTimingModel(group.cpu).weighted_cpi_on(mix),
                        {
                            f: group_memory.off_chip_latency_s(f)
                            for f in frequencies
                        },
                    )
                )
                group_energy.append(
                    EnergyModel(group.power, group.cpu.operating_points)
                )
            self._group_rates = tuple(group_rates)
            self._group_energy = tuple(group_energy)

    def scalar_model(self) -> ExecutionTimeModel:
        """The scalar Eq. 9 model this evaluator vectorizes."""
        return ExecutionTimeModel(self.workload, self.rates, self.overhead)

    def unsupported_reason(self, cell: Cell) -> str | None:
        """Why a cell is outside the analytic form (None if modelable).

        The ``auto`` backend sends such cells to the DES; an explicit
        ``backend="analytic"`` raises on them.
        """
        n, f = int(cell[0]), float(cell[1])
        if n < 1:
            return f"processor count must be >= 1: {n}"
        if self.spec.is_heterogeneous and n > self.spec.n_nodes:
            return (
                f"processor count {n} exceeds the platform's "
                f"{self.spec.n_nodes} nodes"
            )
        try:
            self.rates.check_frequency(f)
        except ModelError:
            return (
                f"{f / 1e6:.0f} MHz is not an operating point of the "
                "platform spec"
            )
        try:
            self.benchmark.message_profile(n)
        except ConfigurationError as exc:
            return str(exc)
        return None

    def evaluate_cells(
        self, cells: _t.Sequence[Cell]
    ) -> AnalyticEvaluation:
        """Evaluate arbitrary cells in one vectorized pass.

        Raises :class:`~repro.errors.ModelError` if any cell is
        outside the analytic form (see :meth:`unsupported_reason`).
        """
        coerced = tuple((int(n), float(f)) for n, f in cells)
        for cell in coerced:
            reason = self.unsupported_reason(cell)
            if reason is not None:
                raise ModelError(
                    f"cell {cell} is outside the analytic model: "
                    f"{reason} (use backend='auto' to route such "
                    "cells to the DES)"
                )
        base_f = self.rates.base_frequency
        baseline = self.scalar_model().parallel_time(1, base_f)
        if not coerced:
            empty = np.zeros(0)
            return AnalyticEvaluation(
                cells=(),
                times=empty,
                energies=empty.copy(),
                overheads=empty.copy(),
                baseline_s=baseline,
            )
        if self.spec.is_heterogeneous:
            return self._evaluate_heterogeneous(coerced, baseline)

        unique_n = {n for n, _ in coerced}
        unique_f = {f for _, f in coerced}
        # Per-cell scalar inputs, computed once per distinct value and
        # fanned out — the heavy per-cell math stays in the kernels.
        on_by_f = {
            f: self.rates.on_chip_seconds_per_instruction(f)
            for f in unique_f
        }
        off_by_f = {
            f: self.rates.off_chip_seconds_per_instruction(f)
            for f in unique_f
        }
        on_rate = np.array([on_by_f[f] for _, f in coerced])
        off_rate = np.array([off_by_f[f] for _, f in coerced])
        overheads = np.array(
            [self.overhead.overhead_time(n, f) for n, f in coerced]
        )
        components = []
        for comp in self.workload.components:
            div_by_n = {n: comp.effective_divisor(n) for n in unique_n}
            components.append(
                (
                    comp.mix.on_chip,
                    comp.mix.off_chip,
                    np.array([div_by_n[n] for n, _ in coerced]),
                )
            )
        times = component_times(components, on_rate, off_rate, overheads)

        n_arr = np.array([float(n) for n, _ in coerced])
        busy_by_f = {
            f: self.energy_model.busy_power_w(f) for f in unique_f
        }
        over_by_f = {
            f: self.energy_model.overhead_power_w(f) for f in unique_f
        }
        energies = energy_joules(
            n_arr,
            np.array([busy_by_f[f] for _, f in coerced]),
            np.array([over_by_f[f] for _, f in coerced]),
            times,
            overheads,
        )
        return AnalyticEvaluation(
            cells=coerced,
            times=times,
            energies=energies,
            overheads=overheads,
            baseline_s=baseline,
        )

    def _group_counts(self, n: int) -> tuple[int, ...]:
        """Nodes each group contributes to an ``n``-rank job.

        Group-major, mirroring :meth:`ClusterSpec.with_nodes
        <repro.cluster.machine.ClusterSpec.with_nodes>` and the DES
        cluster's node layout: the earliest groups fill first.
        """
        counts = []
        remaining = int(n)
        for group in self.spec.node_groups():
            take = min(group.count, max(remaining, 0))
            counts.append(take)
            remaining -= take
        return tuple(counts)

    def _evaluate_heterogeneous(
        self, coerced: tuple[Cell, ...], baseline: float
    ) -> AnalyticEvaluation:
        """Per-group closed forms for mixed-generation platforms.

        Work splits evenly across ranks (the DES does the same), so a
        cell's time is the *slowest participating group's* compute
        time plus the critical-path overhead; each group's nodes are
        then billed busy power for their own compute time and overhead
        power while they wait for the stragglers — summed into the
        cell energy.  Groups contributing zero nodes to a cell are
        masked out of the max and zeroed out of the sum.
        """
        unique_n = {n for n, _ in coerced}
        unique_f = {f for _, f in coerced}
        counts_by_n = {n: self._group_counts(n) for n in unique_n}
        overheads = np.array(
            [self.overhead.overhead_time(n, f) for n, f in coerced]
        )
        divisors = []
        for comp in self.workload.components:
            div_by_n = {n: comp.effective_divisor(n) for n in unique_n}
            divisors.append(
                (
                    comp.mix.on_chip,
                    comp.mix.off_chip,
                    np.array([div_by_n[n] for n, _ in coerced]),
                )
            )
        group_times = []
        group_counts = []
        for index, rates in enumerate(self._group_rates):
            on_by_f = {
                f: rates.on_chip_seconds_per_instruction(f)
                for f in unique_f
            }
            off_by_f = {
                f: rates.off_chip_seconds_per_instruction(f)
                for f in unique_f
            }
            group_times.append(
                component_times(
                    divisors,
                    np.array([on_by_f[f] for _, f in coerced]),
                    np.array([off_by_f[f] for _, f in coerced]),
                    overheads,
                )
            )
            group_counts.append(
                np.array(
                    [float(counts_by_n[n][index]) for n, _ in coerced]
                )
            )
        stacked_times = np.stack(group_times)
        stacked_counts = np.stack(group_counts)
        times = np.max(
            np.where(stacked_counts > 0, stacked_times, -np.inf), axis=0
        )
        energies = np.zeros_like(times)
        for index, energy_model in enumerate(self._group_energy):
            busy_by_f = {
                f: energy_model.busy_power_w(f) for f in unique_f
            }
            over_by_f = {
                f: energy_model.overhead_power_w(f) for f in unique_f
            }
            # This group's nodes compute for (its own time − overhead)
            # seconds and idle at overhead power for the rest of the
            # cell — waiting on slower groups counts as overhead.
            busy_s = stacked_times[index] - overheads
            energies += energy_joules(
                stacked_counts[index],
                np.array([busy_by_f[f] for _, f in coerced]),
                np.array([over_by_f[f] for _, f in coerced]),
                times,
                times - busy_s,
            )
        return AnalyticEvaluation(
            cells=coerced,
            times=times,
            energies=energies,
            overheads=overheads,
            baseline_s=baseline,
        )

    def evaluate_grid(
        self,
        counts: _t.Sequence[int],
        frequencies: _t.Sequence[float],
    ) -> AnalyticEvaluation:
        """Evaluate a full (counts × frequencies) grid in grid order."""
        return self.evaluate_cells(
            [(n, f) for n in counts for f in frequencies]
        )


def partition_cells(
    benchmark: BenchmarkModel,
    cells: _t.Sequence[Cell],
    spec: ClusterSpec | None = None,
) -> tuple[list[Cell], list[Cell], dict[Cell, str]]:
    """Split cells into (analytic, DES) for the ``auto`` backend.

    A cell runs analytically only if the benchmark has a documented
    golden tolerance *and* the cell itself is inside the analytic form
    (legal operating point, modelable decomposition).  Returns the two
    partitions (each preserving the input order) plus the per-cell
    routing reasons for the cells sent to the DES.
    """
    coerced = [(int(n), float(f)) for n, f in cells]
    if benchmark.name not in TIME_TOLERANCE:
        reason = (
            f"benchmark {benchmark.name!r} has no documented analytic "
            f"tolerance (validated: {', '.join(validated_benchmarks())})"
        )
        return [], coerced, {cell: reason for cell in coerced}
    model = AnalyticCampaignModel(benchmark, spec)
    analytic: list[Cell] = []
    des: list[Cell] = []
    reasons: dict[Cell, str] = {}
    for cell in coerced:
        reason = model.unsupported_reason(cell)
        if reason is None:
            analytic.append(cell)
        else:
            des.append(cell)
            reasons[cell] = reason
    return analytic, des, reasons
