"""``python -m repro`` — alias for the ``repro-experiments`` CLI.

Lets environments without console-script installation (e.g. a plain
``PYTHONPATH`` checkout) drive the experiment suite:

    python -m repro list
    python -m repro run table3
    python -m repro campaign ft --counts 1,2,4
    python -m repro worker --port 8642
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
