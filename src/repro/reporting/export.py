"""CSV/JSON export of experiment results.

Grids are the ``{(n, frequency_hz): value}`` mappings used throughout
the library; rows are generic header+records tables.  Everything is
written with the standard library, so exports work in any environment
the library runs in.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
import typing as _t

__all__ = [
    "grid_key",
    "grid_to_csv",
    "grid_to_json",
    "jsonify",
    "rows_to_csv",
]

Key = tuple[int, float]


def grid_key(key: _t.Any) -> str:
    """Render a dict key for JSON export.

    ``(n, hz)`` grid cells become ``"N@fMHz"``; anything else
    stringifies as-is.  This is the one shared rendering for every
    JSON surface — CLI exports and the service API — so grids parse
    identically everywhere.
    """
    if (
        isinstance(key, tuple)
        and len(key) == 2
        and isinstance(key[0], int)
        and isinstance(key[1], float)
    ):
        return f"{key[0]}@{key[1] / 1e6:.0f}MHz"
    return str(key)


def jsonify(value: _t.Any) -> _t.Any:
    """Make experiment/campaign data JSON-serializable.

    Tuple grid keys become :func:`grid_key` strings, tuples become
    lists, and objects exposing ``as_dict`` are expanded.  Floats pass
    through untouched, so a JSON round-trip is bit-exact.
    """
    if isinstance(value, dict):
        return {grid_key(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if hasattr(value, "as_dict"):
        return jsonify(value.as_dict())
    return value


def _grid_records(
    cells: _t.Mapping[Key, float], value_name: str
) -> list[dict[str, float]]:
    return [
        {
            "n": n,
            "frequency_mhz": f / 1e6,
            value_name: value,
        }
        for (n, f), value in sorted(cells.items())
    ]


def grid_to_csv(
    cells: _t.Mapping[Key, float],
    path: str | pathlib.Path | None = None,
    value_name: str = "value",
) -> str:
    """Serialize a grid to CSV (written to ``path`` when given).

    Columns: ``n, frequency_mhz, <value_name>``.  Returns the CSV text.
    """
    records = _grid_records(cells, value_name)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=["n", "frequency_mhz", value_name],
        lineterminator="\n",
    )
    writer.writeheader()
    writer.writerows(records)
    text = buffer.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def grid_to_json(
    cells: _t.Mapping[Key, float],
    path: str | pathlib.Path | None = None,
    value_name: str = "value",
    metadata: _t.Mapping[str, _t.Any] | None = None,
) -> str:
    """Serialize a grid (plus optional metadata) to JSON."""
    document = {
        "metadata": dict(metadata or {}),
        "records": _grid_records(cells, value_name),
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def rows_to_csv(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[_t.Any]],
    path: str | pathlib.Path | None = None,
) -> str:
    """Serialize a header+rows table to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
