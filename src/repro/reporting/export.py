"""CSV/JSON export of experiment results.

Grids are the ``{(n, frequency_hz): value}`` mappings used throughout
the library; rows are generic header+records tables.  Everything is
written with the standard library, so exports work in any environment
the library runs in.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
import typing as _t

__all__ = ["grid_to_csv", "grid_to_json", "rows_to_csv"]

Key = tuple[int, float]


def _grid_records(
    cells: _t.Mapping[Key, float], value_name: str
) -> list[dict[str, float]]:
    return [
        {
            "n": n,
            "frequency_mhz": f / 1e6,
            value_name: value,
        }
        for (n, f), value in sorted(cells.items())
    ]


def grid_to_csv(
    cells: _t.Mapping[Key, float],
    path: str | pathlib.Path | None = None,
    value_name: str = "value",
) -> str:
    """Serialize a grid to CSV (written to ``path`` when given).

    Columns: ``n, frequency_mhz, <value_name>``.  Returns the CSV text.
    """
    records = _grid_records(cells, value_name)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=["n", "frequency_mhz", value_name],
        lineterminator="\n",
    )
    writer.writeheader()
    writer.writerows(records)
    text = buffer.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def grid_to_json(
    cells: _t.Mapping[Key, float],
    path: str | pathlib.Path | None = None,
    value_name: str = "value",
    metadata: _t.Mapping[str, _t.Any] | None = None,
) -> str:
    """Serialize a grid (plus optional metadata) to JSON."""
    document = {
        "metadata": dict(metadata or {}),
        "records": _grid_records(cells, value_name),
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def rows_to_csv(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[_t.Any]],
    path: str | pathlib.Path | None = None,
) -> str:
    """Serialize a header+rows table to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
