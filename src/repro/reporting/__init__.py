"""Rendering and exporting experiment results.

* :mod:`~repro.reporting.tables` — fixed-width text tables in the
  paper's layout (rows = processor counts, columns = frequencies).
* :mod:`~repro.reporting.surfaces` — figure-series slicing of grids
  (per-frequency lines, per-count lines, surface matrices).
* :mod:`~repro.reporting.export` — CSV/JSON export of grids and rows.
"""

from repro.reporting.export import (
    grid_key,
    grid_to_csv,
    grid_to_json,
    jsonify,
    rows_to_csv,
)
from repro.reporting.surfaces import (
    count_series,
    frequency_series,
    normalized_frequency_gain,
    surface_rows,
)
from repro.reporting.tables import (
    format_error_table,
    format_grid,
    format_rows,
)

__all__ = [
    "format_grid",
    "format_error_table",
    "format_rows",
    "grid_key",
    "grid_to_csv",
    "grid_to_json",
    "jsonify",
    "rows_to_csv",
    "frequency_series",
    "count_series",
    "surface_rows",
    "normalized_frequency_gain",
]
