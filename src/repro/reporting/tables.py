"""Fixed-width text tables in the paper's layout.

The paper's result tables share one shape: rows are processor counts,
columns are frequencies in MHz, cells are errors or speedups.
:func:`format_grid` renders any ``{(n, frequency_hz): value}`` mapping
that way; :func:`format_error_table` specializes it for
:class:`~repro.core.analysis.ErrorTable` with percentage cells;
:func:`format_rows` renders generic header+rows tables (Table 5/6
shapes).
"""

from __future__ import annotations

import typing as _t

from repro.core.analysis import ErrorTable

__all__ = ["format_grid", "format_error_table", "format_rows"]

Key = tuple[int, float]


def _fmt_cell(value: float, style: str) -> str:
    if style == "percent":
        return f"{value:.1%}"
    if style == "time":
        return f"{value:.2f}s"
    if style == "speedup":
        return f"{value:.2f}"
    return f"{value:.4g}"


def format_grid(
    cells: _t.Mapping[Key, float],
    title: str = "",
    value_style: str = "general",
    row_label: str = "N",
) -> str:
    """Render a (processor count × frequency) grid as fixed-width text.

    Parameters
    ----------
    cells:
        ``{(n, frequency_hz): value}``.
    title:
        Optional heading line.
    value_style:
        ``"percent"``, ``"time"``, ``"speedup"`` or ``"general"``.
    row_label:
        Header of the row-key column.
    """
    if not cells:
        return (title + "\n" if title else "") + "(empty table)"
    counts = sorted({n for n, _ in cells})
    freqs = sorted({f for _, f in cells})
    headers = [row_label] + [f"{f / 1e6:.0f}" for f in freqs]
    rows: list[list[str]] = []
    for n in counts:
        row = [str(n)]
        for f in freqs:
            value = cells.get((n, f))
            row.append("-" if value is None else _fmt_cell(value, value_style))
        rows.append(row)
    body = format_rows(headers, rows, title="")
    heading = []
    if title:
        heading.append(title)
    heading.append(f"{'':>4}  Frequency (MHz)")
    return "\n".join(heading + [body])


def format_error_table(table: ErrorTable, title: str = "") -> str:
    """Render an :class:`~repro.core.analysis.ErrorTable` like the
    paper's Tables 1/3/7, with a max/mean footer."""
    text = format_grid(
        table.cells(), title=title or table.label, value_style="percent"
    )
    footer = (
        f"max error: {table.max_error:.1%}   "
        f"mean error: {table.mean_error:.1%}"
    )
    return text + "\n" + footer


def format_rows(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[_t.Any]],
    title: str = "",
) -> str:
    """Render a generic header + rows table with aligned columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    all_rows = [list(headers)] + str_rows
    n_cols = max(len(r) for r in all_rows)
    for row in all_rows:
        row.extend([""] * (n_cols - len(row)))
    widths = [
        max(len(row[i]) for row in all_rows) for i in range(n_cols)
    ]

    def render_row(row: _t.Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(all_rows[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(r) for r in all_rows[1:])
    return "\n".join(lines)
