"""Figure-series extraction.

The paper's figures are (a) execution-time line charts — one series
per frequency, processor count on the x-axis — and (b) 2-D speedup
surfaces over (N, f).  This module slices the library's
``{(n, frequency_hz): value}`` grids into exactly those series, ready
for any plotting tool (or for the CSV exporters in
:mod:`repro.reporting.export`).
"""

from __future__ import annotations

import typing as _t

from repro.errors import ModelError

__all__ = [
    "frequency_series",
    "count_series",
    "surface_rows",
    "normalized_frequency_gain",
]

Key = tuple[int, float]


def frequency_series(
    cells: _t.Mapping[Key, float]
) -> dict[float, list[tuple[int, float]]]:
    """One series per frequency: ``{f: [(n, value), ...]}`` (Figure a's).

    Series are sorted by processor count; frequencies ascending.
    """
    if not cells:
        raise ModelError("empty grid")
    out: dict[float, list[tuple[int, float]]] = {}
    for f in sorted({f for _, f in cells}):
        out[f] = sorted(
            (n, v) for (n, fi), v in cells.items() if fi == f
        )
    return out


def count_series(
    cells: _t.Mapping[Key, float]
) -> dict[int, list[tuple[float, float]]]:
    """One series per processor count: ``{n: [(f, value), ...]}``."""
    if not cells:
        raise ModelError("empty grid")
    out: dict[int, list[tuple[float, float]]] = {}
    for n in sorted({n for n, _ in cells}):
        out[n] = sorted(
            (f, v) for (ni, f), v in cells.items() if ni == n
        )
    return out


def surface_rows(
    cells: _t.Mapping[Key, float]
) -> tuple[list[float], list[int], list[list[float | None]]]:
    """The surface as (frequency axis, count axis, value matrix).

    The matrix is row-major over counts; missing cells are ``None``.
    This is the layout 3-D surface plotters (and the paper's Figure
    1b/2b) consume.
    """
    if not cells:
        raise ModelError("empty grid")
    freqs = sorted({f for _, f in cells})
    counts = sorted({n for n, _ in cells})
    matrix: list[list[float | None]] = [
        [cells.get((n, f)) for f in freqs] for n in counts
    ]
    return freqs, counts, matrix


def normalized_frequency_gain(
    cells: _t.Mapping[Key, float],
    base_frequency_hz: float,
    *,
    lower_is_better: bool = True,
) -> dict[int, float]:
    """Per-count gain of the peak frequency over the base frequency.

    For execution times (``lower_is_better``) this is
    ``T(n, f0) / T(n, f_peak)``; the paper's "frequency effects
    diminish with N" observation is this mapping decreasing in ``n``.
    """
    if not cells:
        raise ModelError("empty grid")
    freqs = sorted({f for _, f in cells})
    f0 = float(base_frequency_hz)
    if f0 not in freqs:
        raise ModelError(
            f"base frequency {f0 / 1e6:.0f} MHz not in the grid"
        )
    f_peak = freqs[-1]
    gains: dict[int, float] = {}
    for n in sorted({n for n, _ in cells}):
        base = cells.get((n, f0))
        peak = cells.get((n, f_peak))
        if base is None or peak is None:
            continue
        gains[n] = base / peak if lower_is_better else peak / base
    if not gains:
        raise ModelError("no count has both base and peak cells")
    return gains
