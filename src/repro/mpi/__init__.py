"""Simulated message-passing runtime (``simmpi``).

A deliberately MPICH-flavoured message-passing layer that runs *inside*
the discrete-event simulator.  Rank programs are Python generators; they
``yield from`` communication operations exactly where a real MPI code
would call them, and the runtime charges simulated time, per-port
network contention, host CPU overhead and energy.

Layers
------
* :mod:`~repro.mpi.datatypes` — message envelopes and byte accounting.
* :mod:`~repro.mpi.matching`  — the unexpected-message / posted-receive
  matching engine every real MPI implementation carries.
* :mod:`~repro.mpi.p2p`       — eager/rendezvous point-to-point.
* :mod:`~repro.mpi.collectives` — barrier, bcast, reduce, allreduce,
  allgather, alltoall built from p2p with the classic algorithms.
* :mod:`~repro.mpi.cost`      — Hockney and LogGP closed-form cost
  models of the same network (the analytic view used by tests and by
  the fine-grain parameterization).
* :mod:`~repro.mpi.program`   — the rank-program API and job runner.

Quickstart
----------
>>> from repro.cluster import paper_cluster
>>> from repro.mpi import run_program
>>> def ping(ctx):
...     if ctx.rank == 0:
...         yield from ctx.send(1, nbytes=1024)
...     else:
...         yield from ctx.recv(0)
>>> result = run_program(paper_cluster(2), ping)
>>> result.elapsed_s > 0
True
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.cost import HockneyModel, LogGPModel
from repro.mpi.datatypes import Message
from repro.mpi.program import RankContext, RunResult, run_program

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Message",
    "HockneyModel",
    "LogGPModel",
    "RankContext",
    "RunResult",
    "run_program",
]
