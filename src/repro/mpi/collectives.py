"""Collective operations built from point-to-point messages.

Each collective is implemented with the classic MPICH algorithm so the
*communication structure* — who talks to whom, in how many rounds, with
what message sizes — matches what the paper's cluster actually executed:

================  ===========================================
Collective        Algorithm
================  ===========================================
barrier           dissemination (⌈log₂N⌉ rounds, empty msgs)
bcast             binomial tree
reduce            binomial tree (leaves toward root)
allreduce         recursive doubling with remainder pre/post
allgather         ring (N−1 steps of the per-rank block)
alltoall          pairwise exchange (N−1 steps)
scatter, gather   linear rooted
================  ===========================================

All functions are generators taking ``(comm, rank, ..., seq)`` and are
meant to be invoked via ``yield from`` inside a rank program, with every
participating rank calling the same collective with the same ``seq``
(the per-rank collective call counter that keeps tags of back-to-back
collectives from colliding).
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigurationError
from repro.mpi.comm import Communicator
from repro.mpi.p2p import recv, send, sendrecv

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "allreduce_rabenseifner",
    "allgather",
    "alltoall",
    "alltoall_bruck",
    "reduce_scatter",
    "scatter",
    "gather",
]

#: Collective tags live above user tag space.
_TAG_BASE = 1 << 20
_OPS = {
    "barrier": 1,
    "bcast": 2,
    "reduce": 3,
    "allreduce": 4,
    "allgather": 5,
    "alltoall": 6,
    "scatter": 7,
    "gather": 8,
}


def _tag(op: str, seq: int, round_: int = 0) -> int:
    """Compose a collision-resistant tag for one collective round."""
    return _TAG_BASE | (_OPS[op] << 16) | ((seq & 0xFF) << 8) | (round_ & 0xFF)


def _check_nbytes(nbytes: float) -> float:
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
    return float(nbytes)


def barrier(comm: Communicator, rank: int, seq: int = 0) -> _t.Generator:
    """Dissemination barrier: ⌈log₂N⌉ rounds of empty sendrecvs."""
    size = comm.size
    mask, round_ = 1, 0
    while mask < size:
        dst = (rank + mask) % size
        src = (rank - mask) % size
        tag = _tag("barrier", seq, round_)
        yield from sendrecv(
            comm, rank, dst, 0.0, source=src, send_tag=tag, recv_tag=tag
        )
        mask <<= 1
        round_ += 1


def bcast(
    comm: Communicator,
    rank: int,
    root: int,
    nbytes: float,
    seq: int = 0,
) -> _t.Generator:
    """Binomial-tree broadcast of ``nbytes`` from ``root``."""
    _check_nbytes(nbytes)
    size = comm.size
    comm.check_rank(root)
    vrank = (rank - root) % size
    tag = _tag("bcast", seq)

    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from recv(comm, rank, source=parent, tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size and not vrank & mask:
            child = ((vrank + mask) + root) % size
            yield from send(comm, rank, child, nbytes, tag=tag)
        mask >>= 1


def reduce(
    comm: Communicator,
    rank: int,
    root: int,
    nbytes: float,
    seq: int = 0,
) -> _t.Generator:
    """Binomial-tree reduction of ``nbytes`` per rank toward ``root``."""
    _check_nbytes(nbytes)
    size = comm.size
    comm.check_rank(root)
    vrank = (rank - root) % size
    tag = _tag("reduce", seq)

    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from send(comm, rank, parent, nbytes, tag=tag)
            break
        child_v = vrank | mask
        if child_v < size:
            child = (child_v + root) % size
            yield from recv(comm, rank, source=child, tag=tag)
        mask <<= 1


def allreduce(
    comm: Communicator, rank: int, nbytes: float, seq: int = 0
) -> _t.Generator:
    """Recursive-doubling allreduce with the MPICH remainder handling.

    For non-power-of-two sizes, the first ``rem = N − 2^⌊log₂N⌋`` even
    ranks fold into their odd neighbours before the doubling rounds and
    get the result back afterwards.
    """
    _check_nbytes(nbytes)
    size = comm.size
    if size == 1:
        return
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    tag0 = _tag("allreduce", seq, 0)

    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from send(comm, rank, rank + 1, nbytes, tag=tag0)
            newrank = -1
        else:
            yield from recv(comm, rank, source=rank - 1, tag=tag0)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank >= 0:
        mask, round_ = 1, 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            )
            tag = _tag("allreduce", seq, round_)
            yield from sendrecv(
                comm,
                rank,
                partner,
                nbytes,
                source=partner,
                send_tag=tag,
                recv_tag=tag,
            )
            mask <<= 1
            round_ += 1

    tag_last = _tag("allreduce", seq, 0xFF)
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from send(comm, rank, rank - 1, nbytes, tag=tag_last)
        else:
            yield from recv(comm, rank, source=rank + 1, tag=tag_last)


def allgather(
    comm: Communicator, rank: int, nbytes_per_rank: float, seq: int = 0
) -> _t.Generator:
    """Ring allgather: N−1 steps, each forwarding one rank's block."""
    _check_nbytes(nbytes_per_rank)
    size = comm.size
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        tag = _tag("allgather", seq, step)
        yield from sendrecv(
            comm,
            rank,
            right,
            nbytes_per_rank,
            source=left,
            send_tag=tag,
            recv_tag=tag,
        )


def alltoall(
    comm: Communicator, rank: int, nbytes_per_pair: float, seq: int = 0
) -> _t.Generator:
    """Pairwise-exchange alltoall: N−1 steps of ``nbytes_per_pair``.

    ``nbytes_per_pair`` is the payload each rank sends to each *other*
    rank (the local block does not touch the network).  With a
    power-of-two size the partner schedule is XOR-based (mutual pairs);
    otherwise a shifted ring.
    """
    _check_nbytes(nbytes_per_pair)
    size = comm.size
    is_pof2 = size & (size - 1) == 0
    for step in range(1, size):
        tag = _tag("alltoall", seq, step)
        if is_pof2:
            partner = rank ^ step
            yield from sendrecv(
                comm,
                rank,
                partner,
                nbytes_per_pair,
                source=partner,
                send_tag=tag,
                recv_tag=tag,
            )
        else:
            dst = (rank + step) % size
            src = (rank - step) % size
            yield from sendrecv(
                comm,
                rank,
                dst,
                nbytes_per_pair,
                source=src,
                send_tag=tag,
                recv_tag=tag,
            )


def scatter(
    comm: Communicator,
    rank: int,
    root: int,
    nbytes_per_rank: float,
    seq: int = 0,
) -> _t.Generator:
    """Linear rooted scatter: root sends one block to every other rank."""
    _check_nbytes(nbytes_per_rank)
    comm.check_rank(root)
    tag = _tag("scatter", seq)
    if rank == root:
        for dst in range(comm.size):
            if dst != root:
                yield from send(comm, rank, dst, nbytes_per_rank, tag=tag)
    else:
        yield from recv(comm, rank, source=root, tag=tag)


def gather(
    comm: Communicator,
    rank: int,
    root: int,
    nbytes_per_rank: float,
    seq: int = 0,
) -> _t.Generator:
    """Linear rooted gather: every non-root rank sends its block to root."""
    _check_nbytes(nbytes_per_rank)
    comm.check_rank(root)
    tag = _tag("gather", seq)
    if rank == root:
        for _ in range(comm.size - 1):
            yield from recv(comm, rank, tag=tag)
    else:
        yield from send(comm, rank, root, nbytes_per_rank, tag=tag)


def alltoall_bruck(
    comm: Communicator, rank: int, nbytes_per_pair: float, seq: int = 0
) -> _t.Generator:
    """Bruck's alltoall: ⌈log₂N⌉ rounds of aggregated blocks.

    Each round ``k`` ships every data block whose destination index has
    bit ``k`` set — about half the blocks — to rank ``(rank − 2^k) mod
    N``.  Latency cost is ⌈log₂N⌉·α instead of pairwise's (N−1)·α, at
    the price of ~log₂N/2 × the bandwidth, so it wins for *small*
    messages.  MPICH switches algorithms the same way.
    """
    _check_nbytes(nbytes_per_pair)
    size = comm.size
    if size == 1:
        return
    k, round_ = 1, 0
    while k < size:
        # Blocks whose index (relative to this rank) has bit `round_`
        # set: bit k alternates in runs of k every 2k indices, so count
        # the full periods plus the tail — O(1) instead of O(size).
        n_blocks = (size // (2 * k)) * k + max(0, size % (2 * k) - k)
        payload = n_blocks * nbytes_per_pair
        dst = (rank - k) % size
        src = (rank + k) % size
        tag = _tag("alltoall", seq, 0x80 | round_)
        yield from sendrecv(
            comm, rank, dst, payload, source=src, send_tag=tag, recv_tag=tag
        )
        k <<= 1
        round_ += 1


def reduce_scatter(
    comm: Communicator, rank: int, nbytes_total: float, seq: int = 0
) -> _t.Generator:
    """Recursive-halving reduce-scatter of ``nbytes_total`` per rank.

    After ⌈log₂N⌉ rounds each rank holds the fully-reduced 1/N block.
    Round ``i`` exchanges half the remaining payload with the partner
    ``rank XOR 2^i``.  Power-of-two sizes use pure recursive halving;
    other sizes fall back to a pairwise exchange of 1/N blocks.
    """
    _check_nbytes(nbytes_total)
    size = comm.size
    if size == 1:
        return
    if size & (size - 1) == 0:
        remaining = nbytes_total
        mask, round_ = 1, 0
        while mask < size:
            remaining /= 2.0
            partner = rank ^ mask
            tag = _tag("reduce", seq, 0x80 | round_)
            yield from sendrecv(
                comm,
                rank,
                partner,
                remaining,
                source=partner,
                send_tag=tag,
                recv_tag=tag,
            )
            mask <<= 1
            round_ += 1
    else:
        block = nbytes_total / size
        for step in range(1, size):
            dst = (rank + step) % size
            src = (rank - step) % size
            tag = _tag("reduce", seq, 0x80 | (step & 0x7F))
            yield from sendrecv(
                comm, rank, dst, block, source=src, send_tag=tag,
                recv_tag=tag,
            )


def allreduce_rabenseifner(
    comm: Communicator, rank: int, nbytes: float, seq: int = 0
) -> _t.Generator:
    """Rabenseifner's allreduce: reduce-scatter + allgather.

    Total bandwidth ≈ 2·nbytes instead of recursive doubling's
    log₂N·nbytes — the winner for large payloads (MPICH's choice above
    its allreduce threshold).
    """
    _check_nbytes(nbytes)
    if comm.size == 1:
        return
    yield from reduce_scatter(comm, rank, nbytes, seq)
    yield from allgather(comm, rank, nbytes / comm.size, seq)
