"""Closed-form communication cost models (Hockney and LogGP).

These are the *analytic* views of the network that the discrete-event
simulator executes.  They serve three purposes:

1. unit tests cross-check simulated transfer times against the Hockney
   prediction in uncontended cases;
2. the fine-grain parameterization (paper §5.2 step 2) multiplies a
   *measured* per-message time by a message count — these models supply
   the same quantity when an experiment wants a purely analytic
   parallel-overhead term;
3. the ablation benches swap cost models to show how much the overhead
   model matters to power-aware speedup predictions.

The **Hockney** model prices a message of ``m`` bytes at
``α + m·β`` (latency plus inverse bandwidth).  **LogGP** refines it with
sender/receiver CPU overhead ``o`` and per-byte gap ``G``; the ``o``
term is what couples message cost to DVFS, mirroring
:class:`repro.cluster.nic.NicSpec`.
"""

from __future__ import annotations

import dataclasses
import math

from repro.cluster.machine import ClusterSpec
from repro.errors import ConfigurationError

__all__ = ["HockneyModel", "LogGPModel"]


@dataclasses.dataclass(frozen=True)
class HockneyModel:
    """The α–β point-to-point cost model.

    Attributes
    ----------
    alpha_s:
        Per-message latency in seconds.
    beta_s_per_byte:
        Inverse bandwidth in seconds per byte.
    """

    alpha_s: float
    beta_s_per_byte: float

    def __post_init__(self) -> None:
        if self.alpha_s < 0 or self.beta_s_per_byte < 0:
            raise ConfigurationError("Hockney parameters must be >= 0")

    @classmethod
    def from_cluster_spec(cls, spec: ClusterSpec) -> "HockneyModel":
        """Derive α and β from a cluster's network description."""
        return cls(
            alpha_s=spec.network.latency_s,
            beta_s_per_byte=1.0 / spec.network.effective_bandwidth,
        )

    # -- point-to-point ----------------------------------------------------

    def p2p(self, nbytes: float) -> float:
        """Cost of one point-to-point message: ``α + m·β``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        return self.alpha_s + nbytes * self.beta_s_per_byte

    # -- collectives ---------------------------------------------------------

    def barrier(self, n: int) -> float:
        """Dissemination barrier: ⌈log₂N⌉ rounds of empty messages."""
        if n <= 1:
            return 0.0
        return math.ceil(math.log2(n)) * self.p2p(0.0)

    def bcast(self, n: int, nbytes: float) -> float:
        """Binomial broadcast: ⌈log₂N⌉ rounds of the full payload."""
        if n <= 1:
            return 0.0
        return math.ceil(math.log2(n)) * self.p2p(nbytes)

    def reduce(self, n: int, nbytes: float) -> float:
        """Binomial reduction: same round structure as broadcast."""
        return self.bcast(n, nbytes)

    def allreduce(self, n: int, nbytes: float) -> float:
        """Recursive doubling: ⌈log₂N⌉ full-payload exchange rounds."""
        if n <= 1:
            return 0.0
        return math.ceil(math.log2(n)) * self.p2p(nbytes)

    def allgather(self, n: int, nbytes_per_rank: float) -> float:
        """Ring allgather: N−1 steps of one block."""
        if n <= 1:
            return 0.0
        return (n - 1) * self.p2p(nbytes_per_rank)

    def alltoall(self, n: int, nbytes_per_pair: float) -> float:
        """Pairwise exchange: N−1 steps of one pair block."""
        if n <= 1:
            return 0.0
        return (n - 1) * self.p2p(nbytes_per_pair)


@dataclasses.dataclass(frozen=True)
class LogGPModel:
    """The LogGP model: L, o, g, G (P is passed per call).

    Attributes
    ----------
    latency_s:
        ``L`` — wire latency.
    overhead_s:
        ``o`` — fixed host CPU time per message end.
    overhead_s_per_byte:
        per-byte host CPU time (frequency-dependent in our NIC model;
        evaluate :meth:`from_cluster_spec` at a chosen frequency).
    gap_s:
        ``g`` — minimum inter-message gap at one NIC.
    gap_s_per_byte:
        ``G`` — per-byte gap (inverse wire bandwidth).
    """

    latency_s: float
    overhead_s: float
    overhead_s_per_byte: float
    gap_s: float
    gap_s_per_byte: float

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ConfigurationError(f"{field.name} must be >= 0")

    @classmethod
    def from_cluster_spec(
        cls, spec: ClusterSpec, frequency_hz: float
    ) -> "LogGPModel":
        """Derive LogGP parameters at a given core frequency.

        The per-byte host overhead is ``cycles_per_byte / f`` — the DVFS
        coupling of message cost the paper measures in Table 6.
        """
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        return cls(
            latency_s=spec.network.latency_s,
            overhead_s=spec.nic.per_message_overhead_s,
            overhead_s_per_byte=spec.nic.cycles_per_byte / frequency_hz,
            gap_s=0.0,
            gap_s_per_byte=1.0 / spec.network.effective_bandwidth,
        )

    def host_overhead(self, nbytes: float) -> float:
        """One end's CPU time for a message: ``o + m·o_byte``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        return self.overhead_s + nbytes * self.overhead_s_per_byte

    def p2p(self, nbytes: float) -> float:
        """End-to-end one-message cost.

        ``o_send + max(g + m·G, 0) + L + o_recv`` — sender overhead,
        wire serialization, latency, receiver overhead.
        """
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        wire = self.gap_s + nbytes * self.gap_s_per_byte
        return self.host_overhead(nbytes) * 2 + wire + self.latency_s

    def alltoall(self, n: int, nbytes_per_pair: float) -> float:
        """Pairwise exchange under LogGP (N−1 serial rounds)."""
        if n <= 1:
            return 0.0
        return (n - 1) * self.p2p(nbytes_per_pair)

    def allreduce(self, n: int, nbytes: float) -> float:
        """Recursive doubling under LogGP."""
        if n <= 1:
            return 0.0
        return math.ceil(math.log2(n)) * self.p2p(nbytes)
