"""The rank-program API and job runner.

A *rank program* is a callable taking a :class:`RankContext` and
returning a generator — the simulated analogue of an MPI process's
``main``.  The context provides computation (:meth:`RankContext.compute`),
point-to-point and collective communication, phase labelling for the
profiler, and in-run DVFS control.  :func:`run_program` launches one
program instance per rank and collects a :class:`RunResult` with the
elapsed time, energy, counters and traces.

Example
-------
>>> from repro.cluster import InstructionMix, paper_cluster
>>> def program(ctx):
...     yield from ctx.compute(InstructionMix(cpu=1e6))
...     yield from ctx.barrier()
>>> result = run_program(paper_cluster(4), program)
>>> result.n_ranks
4

Energy accounting
-----------------
Compute time is charged at the COMPUTE power state by the node itself;
host messaging overhead is charged at COMM by the p2p layer; everything
else inside a communication call — waiting for a partner, wire time —
is charged at IDLE by the context wrapper.  Ranks that finish before
the slowest rank are topped up with IDLE time so every rank's energy
covers the full job duration (nodes do not power off mid-job).

One deliberate approximation: when a rank drives a send and a receive
*concurrently* (``sendrecv``, or ``isend``/``irecv`` pairs), both host
overheads are charged as COMM even though they overlap in wall time —
a real CPU interleaves the two copies at roughly the summed cost.
Accounted per-rank time therefore covers the job duration from below
exactly and may exceed it by at most the COMM time (energy errs
slightly high, never low); the invariant is fuzz-tested in
``tests/test_fuzz_simulation.py``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.dvfs import DvfsController
from repro.cluster.machine import Cluster
from repro.cluster.power import PowerState
from repro.cluster.workmix import InstructionMix
from repro.errors import ConfigurationError, DeadlockError
from repro.mpi import collectives as _coll
from repro.mpi import p2p as _p2p
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.datatypes import Message
from repro.sim.events import Event, Timeout
from repro.sim.trace import Tracer

__all__ = ["RankContext", "RunResult", "run_program"]

#: Type of a rank program: callable(ctx) -> generator.
RankProgram = _t.Callable[["RankContext"], _t.Generator]


class RankContext:
    """Everything one simulated MPI process can do.

    Communication methods are generators: invoke them with
    ``yield from`` inside the rank program.
    """

    def __init__(
        self,
        comm: Communicator,
        rank: int,
        dvfs: DvfsController,
        tracer: Tracer | None = None,
    ) -> None:
        self.comm = comm
        self.rank = comm.check_rank(rank)
        self.node = comm.node_of(rank)
        self._energy = self.node.energy
        self.engine = comm.engine
        self.dvfs = dvfs
        self.tracer = tracer
        self._phase = ""
        self._coll_seq = 0
        #: Free-form per-rank program state (e.g. cached
        #: sub-communicator contexts); cleared with the context.
        self.scratch: dict[str, _t.Any] = {}

    # -- identity --------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ranks in the job."""
        return self.comm.size

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    @property
    def frequency_hz(self) -> float:
        """This rank's node's current core frequency."""
        return self.node.frequency_hz

    # -- phases -----------------------------------------------------------

    def phase(self, label: str) -> None:
        """Label subsequent activity for the profiler/tracer."""
        self._phase = str(label)
        self.comm.set_phase(self.rank, self._phase)

    @property
    def current_phase(self) -> str:
        """The active phase label."""
        return self._phase

    def _trace(self, start: float, category: str, detail: _t.Any = None) -> None:
        if self.tracer is not None:
            self.tracer.record(
                start, self.engine.now, category, self.rank, self._phase, detail
            )

    # -- computation ---------------------------------------------------------

    def compute(self, mix: InstructionMix) -> _t.Generator:
        """Execute an instruction mix at the node's current frequency.

        Advances simulated time by the Eq. 6 execution time, feeds the
        hardware counters and charges COMPUTE energy.
        """
        engine = self.engine
        t0 = engine._now
        duration = self.node.execute_mix(mix)
        yield Timeout(engine, duration)
        if self.tracer is not None:
            self.tracer.record(
                t0, engine._now, "compute", self.rank, self._phase, mix.total
            )

    def compute_seconds(self, seconds: float) -> _t.Generator:
        """Burn a fixed amount of compute time (for microbenchmarks).

        Charged as COMPUTE energy but feeds no counters.
        """
        if seconds < 0:
            raise ConfigurationError(f"seconds must be >= 0: {seconds}")
        t0 = self.engine.now
        self.node.energy.account(
            seconds, self.node.operating_point, PowerState.COMPUTE
        )
        yield self.engine.timeout(seconds)
        self._trace(t0, "compute")

    # -- sub-communicators --------------------------------------------------

    def split(
        self, color: _t.Hashable, key: int = 0
    ) -> _t.Generator[_t.Any, _t.Any, "RankContext | None"]:
        """Collective ``MPI_Comm_split``: a context on the color group.

        Every rank of this context must call ``split`` (the call blocks
        until all have).  Returns a *child* :class:`RankContext` over
        the sub-communicator — same node, DVFS controller and tracer —
        whose collectives span only the color group.  A ``None`` color
        opts out and returns ``None``.

        Example (2-D decomposition)::

            row = yield from ctx.split(color=ctx.rank // ncols)
            col = yield from ctx.split(color=ctx.rank % ncols)
            yield from row.alltoall(nbytes)
        """

        def _split() -> _t.Generator:
            subcomm, sub_rank = yield self.comm.split(
                self.rank, color, key
            )
            if subcomm is None:
                return None
            child = RankContext(
                subcomm, sub_rank, self.dvfs, tracer=self.tracer
            )
            child._phase = self._phase
            return child

        return self._comm_op(_split())

    # -- DVFS ------------------------------------------------------------------

    def set_frequency(self, frequency_hz: float) -> _t.Generator:
        """Switch this rank's node to a new operating point in-run."""
        yield from self.dvfs.transition(self.node.node_id, frequency_hz)

    # -- communication accounting wrapper ---------------------------------------

    def _comm_op(self, gen: _t.Generator) -> _t.Generator:
        """Run a communication generator; charge untracked time as IDLE.

        The p2p layer charges host overhead at COMM synchronously; the
        difference between the op's wall time and the COMM time charged
        during it was spent blocked, and is charged here at IDLE.
        """
        engine = self.engine
        energy = self._energy
        t0 = engine._now
        before = energy._s_comm
        result = yield from gen
        elapsed = engine._now - t0
        active = energy._s_comm - before
        idle = elapsed - active
        if idle > 0:
            self.node.account_idle(idle)
        if self.tracer is not None:
            self.tracer.record(
                t0, engine._now, "comm", self.rank, self._phase, None
            )
        return result

    # -- point-to-point -----------------------------------------------------------

    def send(
        self,
        dest: int,
        nbytes: float,
        tag: int = 0,
        payload: _t.Any = None,
    ) -> _t.Generator[_t.Any, _t.Any, Message]:
        """Blocking send (eager below the NIC threshold, else rendezvous).

        Both the :meth:`_comm_op` accounting and the
        :func:`repro.mpi.p2p.send` protocol body are open-coded here
        (and in :meth:`recv`) rather than delegated: these two run once
        per simulated message, and every dropped generator frame is a
        measurable win on iterative benchmarks.  Keep the protocol
        logic in sync with ``repro.mpi.p2p`` — the standalone functions
        remain the API for direct engine use and for ``isend``/``irecv``.
        """
        comm = self.comm
        rank = self.rank
        comm.check_rank(dest)
        node = self.node
        engine = self.engine
        energy = self._energy
        t0 = engine._now
        before = energy._s_comm
        message = Message(rank, dest, tag, nbytes, payload)

        # Host CPU cost of initiating the message (copies, packetization).
        overhead = node.message_overhead_seconds(nbytes)
        yield Timeout(engine, overhead)
        node.account_comm(overhead)
        comm.record_send(rank, nbytes)

        if nbytes <= node.nic_spec.eager_threshold_bytes:
            engine.detach(_p2p._eager_delivery(comm, message))
        else:
            clear_to_send = Event(engine)
            engine.detach(_p2p._rndv_announce(comm, message, clear_to_send))
            yield clear_to_send
            node_ids = comm._node_ids
            yield comm.network.transfer(
                node_ids[rank], node_ids[dest], nbytes
            )
            comm.matchers[dest].complete_rendezvous(message)

        idle = (engine._now - t0) - (energy._s_comm - before)
        if idle > 0:
            node.account_idle(idle)
        if self.tracer is not None:
            self.tracer.record(
                t0, engine._now, "comm", rank, self._phase, None
            )
        return message

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> _t.Generator[_t.Any, _t.Any, Message]:
        """Blocking receive; returns the :class:`Message`.

        Open-codes :func:`repro.mpi.p2p.recv` plus the idle-time
        accounting, like :meth:`send` — keep in sync.
        """
        comm = self.comm
        if source != ANY_SOURCE:
            comm.check_rank(source)
        engine = self.engine
        energy = self._energy
        node = self.node
        t0 = engine._now
        before = energy._s_comm
        delivered = comm.matchers[self.rank].post_recv(source, tag)
        message: Message = yield delivered
        # Host CPU cost of draining the message out of the NIC buffers.
        overhead = node.message_overhead_seconds(message.nbytes)
        yield Timeout(engine, overhead)
        node.account_comm(overhead)
        idle = (engine._now - t0) - (energy._s_comm - before)
        if idle > 0:
            node.account_idle(idle)
        if self.tracer is not None:
            self.tracer.record(
                t0, engine._now, "comm", self.rank, self._phase, None
            )
        return message

    def sendrecv(
        self,
        dest: int,
        nbytes: float,
        source: int,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
        payload: _t.Any = None,
    ) -> _t.Generator[_t.Any, _t.Any, Message]:
        """Concurrent send and receive; returns the received message."""
        return self._comm_op(
            _p2p.sendrecv(
                self.comm,
                self.rank,
                dest,
                nbytes,
                source,
                send_tag,
                recv_tag,
                payload,
            )
        )

    # -- non-blocking point-to-point ----------------------------------------

    def isend(
        self,
        dest: int,
        nbytes: float,
        tag: int = 0,
        payload: _t.Any = None,
    ):
        """Start a non-blocking send; returns a completion handle.

        The handle is a simulated process event: pass it (alone or with
        others) to :meth:`waitall`, or ``yield`` it directly.  Host
        messaging overhead is charged as the operation progresses; the
        *waiting* time is charged by whichever wait observes it.
        """
        return self.engine.process(
            _p2p.send(self.comm, self.rank, dest, nbytes, tag, payload)
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Start a non-blocking receive; returns a completion handle
        whose value is the received :class:`Message`."""
        return self.engine.process(
            _p2p.recv(self.comm, self.rank, source, tag)
        )

    def waitall(self, handles: _t.Sequence) -> _t.Generator:
        """Block until every handle completes; returns their values.

        Blocked time (beyond the COMM overhead charged by the
        operations themselves) is accounted as IDLE, like any blocking
        call.
        """

        def _wait() -> _t.Generator:
            values = yield self.engine.all_of(list(handles))
            return values

        return self._comm_op(_wait())

    # -- collectives ---------------------------------------------------------------

    def _next_seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    def barrier(self) -> _t.Generator:
        """Dissemination barrier over all ranks."""
        return self._comm_op(
            _coll.barrier(self.comm, self.rank, self._next_seq())
        )

    def bcast(self, root: int, nbytes: float) -> _t.Generator:
        """Binomial-tree broadcast from ``root``."""
        return self._comm_op(
            _coll.bcast(self.comm, self.rank, root, nbytes, self._next_seq())
        )

    def reduce(self, root: int, nbytes: float) -> _t.Generator:
        """Binomial-tree reduction to ``root``."""
        return self._comm_op(
            _coll.reduce(self.comm, self.rank, root, nbytes, self._next_seq())
        )

    def allreduce(
        self, nbytes: float, algorithm: str = "recursive-doubling"
    ) -> _t.Generator:
        """Allreduce; ``algorithm`` picks the communication schedule.

        ``"recursive-doubling"`` (default — MPICH's small-payload
        choice) or ``"rabenseifner"`` (reduce-scatter + allgather, the
        large-payload winner).
        """
        if algorithm == "recursive-doubling":
            gen = _coll.allreduce(
                self.comm, self.rank, nbytes, self._next_seq()
            )
        elif algorithm == "rabenseifner":
            gen = _coll.allreduce_rabenseifner(
                self.comm, self.rank, nbytes, self._next_seq()
            )
        else:
            raise ConfigurationError(
                f"unknown allreduce algorithm {algorithm!r}"
            )
        return self._comm_op(gen)

    def reduce_scatter(self, nbytes_total: float) -> _t.Generator:
        """Recursive-halving reduce-scatter."""
        return self._comm_op(
            _coll.reduce_scatter(
                self.comm, self.rank, nbytes_total, self._next_seq()
            )
        )

    def allgather(self, nbytes_per_rank: float) -> _t.Generator:
        """Ring allgather of one block per rank."""
        return self._comm_op(
            _coll.allgather(
                self.comm, self.rank, nbytes_per_rank, self._next_seq()
            )
        )

    def alltoall(
        self, nbytes_per_pair: float, algorithm: str = "pairwise"
    ) -> _t.Generator:
        """Alltoall of ``nbytes_per_pair`` per peer.

        ``"pairwise"`` (default — bandwidth-optimal, N−1 rounds) or
        ``"bruck"`` (⌈log₂N⌉ rounds; wins for small payloads).
        """
        if algorithm == "pairwise":
            gen = _coll.alltoall(
                self.comm, self.rank, nbytes_per_pair, self._next_seq()
            )
        elif algorithm == "bruck":
            gen = _coll.alltoall_bruck(
                self.comm, self.rank, nbytes_per_pair, self._next_seq()
            )
        else:
            raise ConfigurationError(
                f"unknown alltoall algorithm {algorithm!r}"
            )
        return self._comm_op(gen)

    def scatter(self, root: int, nbytes_per_rank: float) -> _t.Generator:
        """Linear rooted scatter."""
        return self._comm_op(
            _coll.scatter(
                self.comm, self.rank, root, nbytes_per_rank, self._next_seq()
            )
        )

    def gather(self, root: int, nbytes_per_rank: float) -> _t.Generator:
        """Linear rooted gather."""
        return self._comm_op(
            _coll.gather(
                self.comm, self.rank, root, nbytes_per_rank, self._next_seq()
            )
        )


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated job execution.

    Attributes
    ----------
    elapsed_s:
        Wall-clock (simulated) job duration — max over ranks.
    energy_j:
        Total energy over all participating nodes for the job duration.
    n_ranks:
        Number of ranks.
    rank_values:
        The return value of each rank's program generator.
    rank_energy_j:
        Per-rank node energy.
    rank_counters:
        Per-rank hardware counter snapshots.
    bytes_on_wire:
        Total payload bytes that crossed the switch.
    message_count:
        Number of remote transfers completed.
    send_stats:
        ``{(rank, phase): (messages_sent, bytes_sent)}`` — the measured
        communication profile the FP parameterization can consume.
    rank_state_seconds:
        Per-rank accounted time by power state (state value → seconds):
        where each rank's job time went (compute / comm / idle).
    tracer:
        The cluster's tracer, when tracing was enabled.
    """

    elapsed_s: float
    energy_j: float
    n_ranks: int
    rank_values: tuple
    rank_energy_j: tuple[float, ...]
    rank_counters: tuple[dict, ...]
    bytes_on_wire: float
    message_count: int
    send_stats: dict[tuple[int, str], tuple[float, float]] = dataclasses.field(
        default_factory=dict
    )
    rank_state_seconds: tuple[dict[str, float], ...] = ()
    tracer: Tracer | None = None

    def state_seconds(self) -> dict[str, float]:
        """Accounted time per power state, summed over ranks."""
        totals: dict[str, float] = {}
        for per_rank in self.rank_state_seconds:
            for state, seconds in per_rank.items():
                totals[state] = totals.get(state, 0.0) + seconds
        return totals

    @property
    def energy_delay_j_s(self) -> float:
        """Energy-delay product ``E · T`` (the paper's EDP metric)."""
        return self.energy_j * self.elapsed_s

    @property
    def energy_delay_squared(self) -> float:
        """``E · T²`` (ED²P), the delay-emphasizing variant."""
        return self.energy_j * self.elapsed_s**2

    @property
    def mean_power_w(self) -> float:
        """Average whole-job cluster power."""
        return self.energy_j / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _deadlock_report(
    comm: Communicator, processes: _t.Sequence
) -> str:
    """Per-rank matching-state dump attached to deadlock errors —
    the simulated analogue of attaching a debugger to a hung MPI job."""
    lines = ["deadlock diagnostics (per-rank matching state):"]
    for rank in range(comm.size):
        summary = comm.matcher_of(rank).pending_summary()
        alive = processes[rank].is_alive
        lines.append(
            f"  rank {rank}: alive={alive}, "
            f"posted_recvs={summary['posted']}, "
            f"unexpected={[str(m) for m in summary['unexpected']]}, "
            f"rndv_in_flight={summary['rndv_in_flight']}"
        )
    return "\n".join(lines)


def run_program(
    cluster: Cluster,
    program: RankProgram | _t.Sequence[RankProgram],
    *,
    ranks: _t.Sequence[int] | None = None,
) -> RunResult:
    """Run one rank-program instance per rank and collect the result.

    Parameters
    ----------
    cluster:
        The machine.  Its engine must be idle (a fresh cluster, or one
        whose previous job has completed).
    program:
        Either one callable used for every rank (SPMD), or a sequence
        of per-rank callables (MPMD) whose length matches the rank
        count.
    ranks:
        Node ids participating, in rank order; defaults to all nodes.
    """
    comm = Communicator(cluster, ranks)
    dvfs = DvfsController(cluster)

    if callable(program):
        programs: list[RankProgram] = [program] * comm.size
    else:
        programs = list(program)
        if len(programs) != comm.size:
            raise ConfigurationError(
                f"{len(programs)} programs for {comm.size} ranks"
            )

    contexts = [
        RankContext(comm, rank, dvfs, tracer=cluster.tracer)
        for rank in range(comm.size)
    ]
    t_start = cluster.engine.now
    seconds_before = [
        comm.node_of(r).energy.total_seconds for r in range(comm.size)
    ]
    joules_before = [
        comm.node_of(r).energy.total_joules for r in range(comm.size)
    ]
    state_seconds_before = [
        comm.node_of(r).energy.seconds_by_state() for r in range(comm.size)
    ]
    bytes_before = cluster.network.bytes_transferred
    msgs_before = cluster.network.transfer_count

    processes = [
        cluster.engine.process(programs[rank](contexts[rank]))
        for rank in range(comm.size)
    ]
    try:
        cluster.engine.run(until=cluster.engine.all_of(processes))
    except DeadlockError as exc:
        raise DeadlockError(
            f"{exc}\n{_deadlock_report(comm, processes)}"
        ) from None
    elapsed = cluster.engine.now - t_start

    # Ranks that finished early idle until the job completes.
    for rank in range(comm.size):
        node = comm.node_of(rank)
        accounted = node.energy.total_seconds - seconds_before[rank]
        tail = elapsed - accounted
        if tail > 1e-15:
            node.account_idle(tail)

    rank_energy = tuple(
        comm.node_of(r).energy.total_joules - joules_before[r]
        for r in range(comm.size)
    )
    rank_counters = tuple(
        comm.node_of(r).counters.snapshot() for r in range(comm.size)
    )
    rank_state_seconds = tuple(
        {
            state.value: seconds - state_seconds_before[r][state]
            for state, seconds in comm.node_of(r)
            .energy.seconds_by_state()
            .items()
        }
        for r in range(comm.size)
    )
    return RunResult(
        elapsed_s=elapsed,
        energy_j=sum(rank_energy),
        n_ranks=comm.size,
        rank_values=tuple(p.value for p in processes),
        rank_energy_j=rank_energy,
        rank_counters=rank_counters,
        bytes_on_wire=cluster.network.bytes_transferred - bytes_before,
        message_count=cluster.network.transfer_count - msgs_before,
        send_stats=comm.send_stats(),
        rank_state_seconds=rank_state_seconds,
        tracer=cluster.tracer,
    )
