"""Message envelopes and byte accounting for the simulated MPI layer."""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.errors import ConfigurationError

__all__ = ["Message"]

_serial = itertools.count()


@dataclasses.dataclass(frozen=True, slots=True)
class Message:
    """One point-to-point message envelope.

    Attributes
    ----------
    source, dest:
        Sending and receiving ranks.
    tag:
        User matching tag (>= 0).
    nbytes:
        Payload size in bytes.
    payload:
        Optional application data carried along (the simulator moves
        *time*, not data, but tests and example programs use payloads
        to check ordering semantics).
    serial:
        Global creation order, used to keep matching deterministic and
        to preserve MPI's non-overtaking rule between identical
        envelopes.
    """

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: _t.Any = None
    serial: int = dataclasses.field(default_factory=lambda: next(_serial))

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ConfigurationError(
                f"message size must be >= 0: {self.nbytes}"
            )
        if self.tag < 0:
            raise ConfigurationError(f"tag must be >= 0: {self.tag}")

    def matches(self, source: int, tag: int) -> bool:
        """Whether this envelope satisfies a receive for (source, tag).

        ``source`` / ``tag`` may be the wildcards
        :data:`~repro.mpi.comm.ANY_SOURCE` / :data:`~repro.mpi.comm.ANY_TAG`
        (encoded as -1).
        """
        source_ok = source == -1 or source == self.source
        tag_ok = tag == -1 or tag == self.tag
        return source_ok and tag_ok
