"""Message envelopes and byte accounting for the simulated MPI layer."""

from __future__ import annotations

import itertools
import typing as _t

from repro.errors import ConfigurationError

__all__ = ["Message"]

_serial = itertools.count()


class Message:
    """One point-to-point message envelope.

    A plain ``__slots__`` class rather than a (frozen) dataclass: one
    envelope is allocated per simulated message, and frozen-dataclass
    ``object.__setattr__`` field assignment is several times the cost
    of these direct stores.  Treat instances as immutable all the same.

    Attributes
    ----------
    source, dest:
        Sending and receiving ranks.
    tag:
        User matching tag (>= 0).
    nbytes:
        Payload size in bytes.
    payload:
        Optional application data carried along (the simulator moves
        *time*, not data, but tests and example programs use payloads
        to check ordering semantics).
    serial:
        Global creation order, used to keep matching deterministic and
        to preserve MPI's non-overtaking rule between identical
        envelopes.
    """

    __slots__ = ("source", "dest", "tag", "nbytes", "payload", "serial")

    def __init__(
        self,
        source: int,
        dest: int,
        tag: int,
        nbytes: float,
        payload: _t.Any = None,
        serial: int | None = None,
    ) -> None:
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0: {nbytes}")
        if tag < 0:
            raise ConfigurationError(f"tag must be >= 0: {tag}")
        self.source = source
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.serial = next(_serial) if serial is None else serial

    def __repr__(self) -> str:
        return (
            f"Message(source={self.source}, dest={self.dest}, "
            f"tag={self.tag}, nbytes={self.nbytes}, "
            f"payload={self.payload!r}, serial={self.serial})"
        )

    def matches(self, source: int, tag: int) -> bool:
        """Whether this envelope satisfies a receive for (source, tag).

        ``source`` / ``tag`` may be the wildcards
        :data:`~repro.mpi.comm.ANY_SOURCE` / :data:`~repro.mpi.comm.ANY_TAG`
        (encoded as -1).
        """
        source_ok = source == -1 or source == self.source
        tag_ok = tag == -1 or tag == self.tag
        return source_ok and tag_ok
