"""The message-matching engine.

Every MPI implementation keeps, per process, an *unexpected message
queue* (envelopes that arrived before a matching receive was posted) and
a *posted receive queue* (receives waiting for a matching envelope).
This module implements both with MPI's ordering semantics:

* envelopes from the same sender with the same tag are matched in the
  order they were sent (non-overtaking);
* a posted receive matches the *earliest-arrived* satisfying envelope;
* an arriving envelope matches the *earliest-posted* satisfying receive.

Two delivery disciplines share the matcher:

* **eager** — payload travels immediately; the envelope enters the queue
  already carrying its data, and matching completes the receive.
* **rendezvous** — only the envelope travels up-front; matching fires
  the sender's *clear-to-send* event, and the receive completes later
  when the sender's bulk transfer finishes
  (:meth:`MessageMatcher.complete_rendezvous`).
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from repro.errors import SimulationError
from repro.mpi.datatypes import Message
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["MessageMatcher"]


@dataclasses.dataclass(slots=True)
class _Envelope:
    """An arrived envelope waiting for a matching receive."""

    message: Message
    #: ``None`` for eager envelopes (payload already present); for
    #: rendezvous envelopes, the sender's clear-to-send event.
    clear_to_send: Event | None


@dataclasses.dataclass(slots=True)
class _PostedRecv:
    """A posted receive waiting for a matching envelope."""

    source: int
    tag: int
    delivered: Event


class MessageMatcher:
    """Per-rank matching state (unexpected + posted-receive queues)."""

    def __init__(self, env: Engine, rank: int) -> None:
        self.env = env
        self.rank = rank
        self._envelopes: collections.deque[_Envelope] = collections.deque()
        self._posted: collections.deque[_PostedRecv] = collections.deque()
        #: In-flight rendezvous transfers: message serial → delivery event.
        self._rndv_in_flight: dict[int, Event] = {}

    # -- receiver side -----------------------------------------------------

    def post_recv(self, source: int, tag: int) -> Event:
        """Post a receive; the returned event delivers the
        :class:`~repro.mpi.datatypes.Message` once its payload has fully
        arrived."""
        delivered = Event(self.env)
        for i, env_entry in enumerate(self._envelopes):
            if env_entry.message.matches(source, tag):
                del self._envelopes[i]
                self._complete_match(env_entry, delivered)
                return delivered
        self._posted.append(_PostedRecv(source, tag, delivered))
        return delivered

    def _complete_match(self, envelope: _Envelope, delivered: Event) -> None:
        if envelope.clear_to_send is None:
            # Eager: payload is already here.
            delivered.succeed(envelope.message)
        else:
            # Rendezvous: let the sender start the bulk transfer; the
            # receive completes when the transfer does.
            self._rndv_in_flight[envelope.message.serial] = delivered
            envelope.clear_to_send.succeed(envelope.message)

    # -- sender side -------------------------------------------------------

    def deliver_eager(self, message: Message) -> None:
        """An eager payload has fully arrived at this rank."""
        for i, posted in enumerate(self._posted):
            if message.matches(posted.source, posted.tag):
                del self._posted[i]
                posted.delivered.succeed(message)
                return
        self._envelopes.append(_Envelope(message, clear_to_send=None))

    def announce_rendezvous(
        self, message: Message, clear_to_send: Event
    ) -> None:
        """A rendezvous envelope has arrived at this rank."""
        for i, posted in enumerate(self._posted):
            if message.matches(posted.source, posted.tag):
                del self._posted[i]
                self._rndv_in_flight[message.serial] = posted.delivered
                clear_to_send.succeed(message)
                return
        self._envelopes.append(_Envelope(message, clear_to_send))

    def complete_rendezvous(self, message: Message) -> None:
        """The bulk transfer of a matched rendezvous message finished."""
        try:
            delivered = self._rndv_in_flight.pop(message.serial)
        except KeyError:
            raise SimulationError(
                f"rendezvous completion for unmatched message {message}"
            ) from None
        delivered.succeed(message)

    # -- diagnostics -------------------------------------------------------

    @property
    def unexpected_count(self) -> int:
        """Envelopes that arrived with no matching receive posted."""
        return len(self._envelopes)

    @property
    def posted_count(self) -> int:
        """Receives posted and still unmatched."""
        return len(self._posted)

    def pending_summary(self) -> dict[str, _t.Any]:
        """A debugging snapshot of queue contents."""
        return {
            "rank": self.rank,
            "unexpected": [e.message for e in self._envelopes],
            "posted": [(p.source, p.tag) for p in self._posted],
            "rndv_in_flight": sorted(self._rndv_in_flight),
        }
