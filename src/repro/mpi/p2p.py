"""Point-to-point messaging: eager and rendezvous protocols.

Small messages (up to the NIC's eager threshold) travel *eagerly*: the
sender pays its host overhead, hands the payload to the network and
continues; the payload is buffered at the receiver if no receive is
posted yet.  Large messages use *rendezvous*: the sender ships only an
envelope, blocks until the receiver posts a matching receive
(clear-to-send), then performs the bulk transfer.  This is the MPICH
protocol split, and it matters for workload behaviour: eager sends
decouple sender and receiver; rendezvous sends synchronize them, which
is how real codes pick up "parallel overhead" waiting time.

These functions are *generators* meant to be driven by the engine —
either directly (``yield from send(...)``) or wrapped in a process for
the non-blocking variants (``engine.process(send(...))``).

Time charged to the caller:

* ``send`` (eager): host overhead only.
* ``send`` (rendezvous): host overhead + wait-for-CTS + wire time.
* ``recv``: wait-for-payload + host overhead.

Energy accounting is done by the caller (the rank context) which knows
how to split active messaging time from blocked waiting time.
"""

from __future__ import annotations

import typing as _t

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.datatypes import Message
from repro.sim.events import Event, Timeout

__all__ = ["send", "recv", "sendrecv"]


def _eager_delivery(comm: Communicator, message: Message) -> _t.Generator:
    """Background process: move an eager payload, then deliver it.

    Ranks were validated by :func:`send`, so the communicator's internal
    tables are indexed directly here and below.
    """
    node_ids = comm._node_ids
    yield comm.network.transfer(
        node_ids[message.source], node_ids[message.dest], message.nbytes
    )
    comm.matchers[message.dest].deliver_eager(message)


def _rndv_announce(
    comm: Communicator, message: Message, clear_to_send: Event
) -> _t.Generator:
    """Background process: carry a rendezvous envelope to the receiver."""
    yield Timeout(comm.engine, comm.network.spec.latency_s)
    comm.matchers[message.dest].announce_rendezvous(message, clear_to_send)


def send(
    comm: Communicator,
    source: int,
    dest: int,
    nbytes: float,
    tag: int = 0,
    payload: _t.Any = None,
) -> _t.Generator[Event, _t.Any, Message]:
    """Blocking send from ``source`` to ``dest``.

    Returns the sent :class:`~repro.mpi.datatypes.Message` (useful for
    tests).  Eager sends complete locally — MPI's buffered-send
    semantics for small messages; rendezvous sends complete only after
    the payload has been pulled by a matching receive.
    """
    comm.check_rank(source)
    comm.check_rank(dest)
    node = comm._nodes[source]
    engine = comm.engine
    message = Message(source, dest, tag, nbytes, payload)

    # Host CPU cost of initiating the message (copies, packetization).
    overhead = node.message_overhead_seconds(nbytes)
    yield Timeout(engine, overhead)
    node.account_comm(overhead)
    comm.record_send(source, nbytes)

    if nbytes <= node.nic_spec.eager_threshold_bytes:
        # Nobody joins the delivery task, so run it detached: same
        # start position in the queue, no Process event to finalize.
        engine.detach(_eager_delivery(comm, message))
        return message

    clear_to_send = Event(engine)
    engine.detach(_rndv_announce(comm, message, clear_to_send))
    yield clear_to_send
    node_ids = comm._node_ids
    yield comm.network.transfer(node_ids[source], node_ids[dest], nbytes)
    comm.matchers[dest].complete_rendezvous(message)
    return message


def recv(
    comm: Communicator,
    rank: int,
    source: int = ANY_SOURCE,
    tag: int = ANY_TAG,
) -> _t.Generator[Event, _t.Any, Message]:
    """Blocking receive at ``rank``.

    ``source`` and ``tag`` accept the :data:`~repro.mpi.comm.ANY_SOURCE`
    / :data:`~repro.mpi.comm.ANY_TAG` wildcards.  Returns the received
    :class:`~repro.mpi.datatypes.Message`.
    """
    comm.check_rank(rank)
    if source != ANY_SOURCE:
        comm.check_rank(source)
    delivered = comm.matchers[rank].post_recv(source, tag)
    message: Message = yield delivered
    # Host CPU cost of draining the message out of the NIC buffers.
    node = comm._nodes[rank]
    overhead = node.message_overhead_seconds(message.nbytes)
    yield Timeout(comm.engine, overhead)
    node.account_comm(overhead)
    return message


def sendrecv(
    comm: Communicator,
    rank: int,
    dest: int,
    send_nbytes: float,
    source: int,
    send_tag: int = 0,
    recv_tag: int = ANY_TAG,
    payload: _t.Any = None,
) -> _t.Generator[Event, _t.Any, Message]:
    """Concurrent send+receive (the workhorse of exchange algorithms).

    The send and receive progress simultaneously, like
    ``MPI_Sendrecv``; the call completes when both have.  Returns the
    received message.
    """
    send_proc = comm.engine.process(
        send(comm, rank, dest, send_nbytes, send_tag, payload)
    )
    recv_proc = comm.engine.process(recv(comm, rank, source, recv_tag))
    yield comm.engine.all_of([send_proc, recv_proc])
    return recv_proc.value
