"""Communicators: the binding between ranks and cluster nodes.

A :class:`Communicator` names a set of participating nodes and owns the
per-rank :class:`~repro.mpi.matching.MessageMatcher` state.  Ranks map
to nodes one-to-one (the paper runs one MPI process per node), but the
mapping is explicit so sub-communicators over a larger machine work.

:meth:`Communicator.split` provides ``MPI_Comm_split`` semantics: a
collective that partitions the ranks by *color* into disjoint
sub-communicators (the row/column communicators of 2-D decompositions).
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import Cluster
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.mpi.matching import MessageMatcher
from repro.sim.events import Event

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator"]

#: Wildcard source for receives (matches any sender).
ANY_SOURCE = -1
#: Wildcard tag for receives (matches any tag).
ANY_TAG = -1


class Communicator:
    """A group of ranks on a cluster.

    Parameters
    ----------
    cluster:
        The machine the job runs on.
    node_ids:
        The nodes participating, in rank order.  Defaults to all nodes.
    """

    def __init__(
        self, cluster: Cluster, node_ids: _t.Sequence[int] | None = None
    ) -> None:
        self.cluster = cluster
        if node_ids is None:
            node_ids = list(range(cluster.n_nodes))
        node_ids = [int(n) for n in node_ids]
        if not node_ids:
            raise ConfigurationError("communicator needs at least one rank")
        if len(set(node_ids)) != len(node_ids):
            raise ConfigurationError(f"duplicate node ids: {node_ids}")
        for n in node_ids:
            cluster.node(n)  # bounds check
        self._node_ids = tuple(node_ids)
        # Hot-path caches: every p2p operation resolves these several
        # times, so pay the lookups once at construction.
        self._size = len(node_ids)
        self._nodes = tuple(cluster.node(n) for n in node_ids)
        self.engine = cluster.engine
        self.network = cluster.network
        self.matchers = [
            MessageMatcher(cluster.engine, rank)
            for rank in range(len(node_ids))
        ]
        #: Per-rank phase labels (set by the rank contexts) used to
        #: attribute sends to application phases.
        self._current_phase: list[str] = [""] * len(node_ids)
        #: Send statistics: ``{(rank, phase_label): [count, bytes]}``.
        self._send_stats: dict[tuple[int, str], list[float]] = {}
        #: In-progress MPI_Comm_split registrations (None = idle).
        self._pending_split: (
            dict[int, tuple[_t.Hashable, int, Event]] | None
        ) = None

    # -- send accounting -----------------------------------------------------

    def set_phase(self, rank: int, label: str) -> None:
        """Record the phase a rank is currently executing."""
        self._current_phase[self.check_rank(rank)] = str(label)

    def record_send(self, rank: int, nbytes: float) -> None:
        """Attribute one sent message to the rank's current phase."""
        key = (self.check_rank(rank), self._current_phase[rank])
        entry = self._send_stats.setdefault(key, [0.0, 0.0])
        entry[0] += 1.0
        entry[1] += float(nbytes)

    def send_stats(self) -> dict[tuple[int, str], tuple[float, float]]:
        """``{(rank, phase): (message_count, total_bytes)}`` (a copy)."""
        return {k: (v[0], v[1]) for k, v in self._send_stats.items()}

    # -- shape ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self._size

    def check_rank(self, rank: int) -> int:
        """Validate a rank id and return it."""
        if not 0 <= rank < self._size:
            raise ConfigurationError(
                f"rank {rank} out of range [0, {self._size})"
            )
        return int(rank)

    def node_of(self, rank: int) -> Node:
        """The cluster node a rank runs on."""
        return self._nodes[self.check_rank(rank)]

    def port_of(self, rank: int) -> int:
        """The network port of a rank's node."""
        return self._node_ids[self.check_rank(rank)]

    def matcher_of(self, rank: int) -> MessageMatcher:
        """The matching engine of a rank."""
        return self.matchers[self.check_rank(rank)]

    # -- MPI_Comm_split ---------------------------------------------------

    def split(self, rank: int, color: _t.Hashable, key: int = 0) -> Event:
        """Collective split: partition ranks by ``color``.

        Every rank of this communicator must call ``split`` exactly
        once per split operation (like ``MPI_Comm_split``).  The
        returned event triggers — once the *last* rank has called —
        with a tuple ``(sub_communicator, sub_rank)`` for this rank's
        color group, ordered by ``(key, parent rank)``.  A ``None``
        color opts the rank out (``MPI_UNDEFINED``): its event delivers
        ``(None, -1)``.

        Successive splits are matched in call order per rank, so
        loosely synchronous programs may split repeatedly.
        """
        self.check_rank(rank)
        if self._pending_split is None:
            self._pending_split = {}
        if rank in self._pending_split:
            raise ConfigurationError(
                f"rank {rank} called split twice in one split operation"
            )
        ev = Event(self.cluster.engine)
        self._pending_split[rank] = (color, int(key), ev)
        if len(self._pending_split) == self.size:
            pending, self._pending_split = self._pending_split, None
            self._complete_split(pending)
        return ev

    def _complete_split(
        self,
        pending: dict[int, tuple[_t.Hashable, int, Event]],
    ) -> None:
        groups: dict[_t.Hashable, list[tuple[int, int]]] = {}
        for parent_rank, (color, key, _ev) in pending.items():
            if color is None:
                continue
            groups.setdefault(color, []).append((key, parent_rank))
        subcomms: dict[_t.Hashable, Communicator] = {}
        rank_in_sub: dict[int, int] = {}
        for color, members in groups.items():
            members.sort()
            node_ids = [self._node_ids[r] for _k, r in members]
            subcomms[color] = Communicator(self.cluster, node_ids)
            for sub_rank, (_k, parent_rank) in enumerate(members):
                rank_in_sub[parent_rank] = sub_rank
        for parent_rank, (color, _key, ev) in pending.items():
            if color is None:
                ev.succeed((None, -1))
            else:
                ev.succeed((subcomms[color], rank_in_sub[parent_rank]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator size={self.size} nodes={self._node_ids}>"
