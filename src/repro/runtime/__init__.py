"""Campaign execution runtime: parallelism, caching, fault tolerance.

This subsystem turns :func:`repro.experiments.platform.
measure_campaign` from a serial, per-process-cached loop into a
runtime with four layers:

* :mod:`repro.runtime.runner` — fans grid cells out over a persistent
  process pool, merges results deterministically, and survives worker
  exceptions, hangs and crashes via per-cell retries, timeouts and
  crash recovery.
* :mod:`repro.runtime.diskcache` — a content-addressed on-disk cache
  under ``.repro_cache/`` with checksummed, quarantine-on-corruption
  entries and a bounded LRU footprint, so *warm processes skip
  simulation entirely*.
* :mod:`repro.runtime.metrics` — per-cell timing, cache-hit and
  fault-tolerance counters for the benchmark harness.
* :mod:`repro.runtime.faults` — a deterministic, seeded
  fault-injection harness (``REPRO_FAULTS``) that makes the other
  three testable.

Configuration resolves in priority order: explicit call argument →
:func:`configure` (what the CLI's ``--jobs`` / ``--no-disk-cache`` /
``--retries`` / ``--cell-timeout`` / ``--allow-partial`` /
``--backend`` set) → environment (``REPRO_JOBS``,
``REPRO_DISK_CACHE``, ``REPRO_CACHE_DIR``, ``REPRO_RETRIES``,
``REPRO_CELL_TIMEOUT``, ``REPRO_ALLOW_PARTIAL``,
``REPRO_RETRY_BACKOFF_S``, ``REPRO_BACKEND``, ``REPRO_FABRIC``,
``REPRO_PLATFORM``) →
defaults.  Auto
parallelism only engages for grids of at least
:data:`MIN_CELLS_AUTO_PARALLEL` cells on multi-core hosts — tiny
campaigns are faster serial than through a pool.
"""

from __future__ import annotations

import os
import pathlib
import typing as _t

from repro.runtime.diskcache import (
    DEFAULT_MAX_ENTRIES,
    SCHEMA_VERSION,
    DiskCache,
    benchmark_digest,
    cache_stats,
    campaign_digest,
    reset_cache_stats,
    spec_digest,
)
from repro.runtime.faults import (
    FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    InjectedFaultError,
    active_fault_plan,
    install_fault_plan,
    mark_server_process,
    parse_fault_plan,
    server_process_context,
    unmark_server_process,
)
from repro.runtime.metrics import (
    METRICS,
    CampaignRecord,
    campaign_metrics,
    reset_campaign_metrics,
)
from repro.runtime.runner import (
    BACKENDS,
    DEFAULT_RETRIES,
    DEFAULT_RETRY_BACKOFF_S,
    CampaignExecution,
    CellAttempt,
    check_backend,
    execute_campaign,
    execute_cells,
    shutdown_executor,
)

__all__ = [
    "BACKENDS",
    "SCHEMA_VERSION",
    "MIN_CELLS_AUTO_PARALLEL",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_RETRIES",
    "DEFAULT_RETRY_BACKOFF_S",
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "DiskCache",
    "CampaignRecord",
    "CampaignExecution",
    "CellAttempt",
    "FaultPlan",
    "InjectedFaultError",
    "benchmark_digest",
    "campaign_digest",
    "spec_digest",
    "cache_stats",
    "reset_cache_stats",
    "campaign_metrics",
    "reset_campaign_metrics",
    "execute_campaign",
    "execute_cells",
    "shutdown_executor",
    "parse_fault_plan",
    "install_fault_plan",
    "active_fault_plan",
    "mark_server_process",
    "unmark_server_process",
    "server_process_context",
    "check_backend",
    "configure",
    "resolve_backend",
    "resolve_platform",
    "resolve_fabric",
    "resolve_jobs",
    "resolve_plan_window",
    "resolve_retries",
    "resolve_cell_timeout",
    "resolve_retry_backoff",
    "resolve_allow_partial",
    "disk_cache_enabled",
    "cache_dir",
    "disk_cache",
]

#: Below this many cells, auto mode stays serial (pool + pickling
#: overhead beats the win on small grids).
MIN_CELLS_AUTO_PARALLEL = 10

_UNSET: _t.Any = object()

_jobs: int | None = None
_disk_cache: bool | None = None
_cache_dir: pathlib.Path | None = None
_retries: int | None = None
_cell_timeout: float | None = None
_allow_partial: bool | None = None
_retry_backoff_s: float | None = None
_backend: str | None = None
_fabric: bool | None = None
_platform: str | None = None


def configure(
    jobs: int | None = _UNSET,
    disk_cache: bool | None = _UNSET,
    cache_dir: str | os.PathLike | None = _UNSET,
    retries: int | None = _UNSET,
    cell_timeout: float | None = _UNSET,
    allow_partial: bool | None = _UNSET,
    retry_backoff_s: float | None = _UNSET,
    backend: str | None = _UNSET,
    fabric: bool | None = _UNSET,
    platform: str | None = _UNSET,
) -> None:
    """Set process-wide runtime defaults (``None`` restores auto).

    Only the arguments actually passed are changed.
    """
    global _jobs, _disk_cache, _cache_dir
    global _retries, _cell_timeout, _allow_partial, _retry_backoff_s
    global _backend, _fabric, _platform
    if backend is not _UNSET:
        _backend = None if backend is None else check_backend(backend)
    if platform is not _UNSET:
        if platform is None:
            _platform = None
        else:
            from repro.platforms import check_platform

            _platform = check_platform(platform)
    if fabric is not _UNSET:
        _fabric = None if fabric is None else bool(fabric)
    if jobs is not _UNSET:
        _jobs = None if jobs is None else max(1, int(jobs))
    if disk_cache is not _UNSET:
        _disk_cache = disk_cache
    if cache_dir is not _UNSET:
        _cache_dir = (
            None if cache_dir is None else pathlib.Path(cache_dir)
        )
    if retries is not _UNSET:
        _retries = None if retries is None else max(0, int(retries))
    if cell_timeout is not _UNSET:
        _cell_timeout = (
            None if cell_timeout is None else float(cell_timeout)
        )
    if allow_partial is not _UNSET:
        _allow_partial = allow_partial
    if retry_backoff_s is not _UNSET:
        _retry_backoff_s = (
            None
            if retry_backoff_s is None
            else max(0.0, float(retry_backoff_s))
        )


def _env_number(
    name: str, convert: _t.Callable[[str], _t.Any]
) -> _t.Any | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return convert(raw)
    except ValueError:
        return None


def resolve_jobs(explicit: int | None, n_cells: int) -> int:
    """Worker count for a campaign of ``n_cells`` grid cells."""
    jobs = explicit if explicit is not None else _jobs
    if jobs is None:
        jobs = _env_number("REPRO_JOBS", int)
    if jobs is None:  # auto
        if n_cells < MIN_CELLS_AUTO_PARALLEL:
            return 1
        jobs = os.cpu_count() or 1
    return max(1, min(int(jobs), max(1, n_cells)))


def resolve_backend(explicit: str | None = None) -> str:
    """Campaign execution backend: ``"des"``, ``"analytic"`` or ``"auto"``.

    Resolution order: explicit argument → :func:`configure` →
    ``REPRO_BACKEND`` → ``"des"``.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` naming the choices.
    """
    backend = explicit if explicit is not None else _backend
    if backend is None:
        env = os.environ.get("REPRO_BACKEND", "").strip()
        backend = env or "des"
    return check_backend(backend)


def resolve_platform(explicit: str | None = None) -> str:
    """Named platform campaigns run on (see :mod:`repro.platforms`).

    Resolution order: explicit argument → :func:`configure` →
    ``REPRO_PLATFORM`` → ``"paper"``.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` naming the registered
    choices, exactly like :func:`resolve_backend` does for backends.
    """
    from repro.platforms import DEFAULT_PLATFORM, check_platform

    platform = explicit if explicit is not None else _platform
    if platform is None:
        env = os.environ.get("REPRO_PLATFORM", "").strip()
        platform = env or DEFAULT_PLATFORM
    return check_platform(platform)


def resolve_fabric(explicit: bool | None = None) -> bool:
    """Whether DES cells are offered to the distributed worker fleet.

    Resolution order: explicit argument → :func:`configure` →
    ``REPRO_FABRIC`` → ``False``.  Enabling fabric is *safe* even with
    no fleet: the dispatcher falls back to local execution when no
    coordinator is installed or no workers are live.  Fabric is not
    part of the campaign cache identity — it changes where DES cells
    run, never what they compute.
    """
    if explicit is not None:
        return bool(explicit)
    if _fabric is not None:
        return _fabric
    env = os.environ.get("REPRO_FABRIC", "").strip().lower()
    return env in ("1", "true", "yes", "on")


#: Default bounded in-flight window for pipelined planner dispatch.
DEFAULT_PLAN_WINDOW = 4


def resolve_plan_window(explicit: int | None = None) -> int:
    """Concurrent execution groups the planner keeps in flight.

    Only applies when a live worker fleet is dispatching the plan
    (``fabric``); the local-pool path stays strictly sequential.
    Resolution order: explicit argument → ``REPRO_PLAN_WINDOW`` →
    ``4``.  ``1`` disables pipelining.
    """
    window = explicit
    if window is None:
        window = _env_number("REPRO_PLAN_WINDOW", int)
    if window is None:
        window = DEFAULT_PLAN_WINDOW
    return max(1, int(window))


def resolve_retries(explicit: int | None = None) -> int:
    """Extra attempts each cell gets after a failure of its own."""
    retries = explicit if explicit is not None else _retries
    if retries is None:
        retries = _env_number("REPRO_RETRIES", int)
    if retries is None:
        retries = DEFAULT_RETRIES
    return max(0, int(retries))


def resolve_cell_timeout(explicit: float | None = None) -> float | None:
    """Per-cell stall timeout in seconds (``None`` = disabled).

    Non-positive values disable the timeout, matching ``--cell-timeout
    0`` on the CLI.
    """
    timeout = explicit if explicit is not None else _cell_timeout
    if timeout is None:
        timeout = _env_number("REPRO_CELL_TIMEOUT", float)
    if timeout is None or timeout <= 0:
        return None
    return float(timeout)


def resolve_retry_backoff(explicit: float | None = None) -> float:
    """Base of the exponential retry backoff, in seconds."""
    backoff = explicit if explicit is not None else _retry_backoff_s
    if backoff is None:
        backoff = _env_number("REPRO_RETRY_BACKOFF_S", float)
    if backoff is None:
        backoff = DEFAULT_RETRY_BACKOFF_S
    return max(0.0, float(backoff))


def resolve_allow_partial(explicit: bool | None = None) -> bool:
    """Whether exhausted cells degrade to a partial campaign."""
    if explicit is not None:
        return explicit
    if _allow_partial is not None:
        return _allow_partial
    env = os.environ.get("REPRO_ALLOW_PARTIAL", "").strip().lower()
    return env in ("1", "true", "yes", "on")


def disk_cache_enabled(explicit: bool | None = None) -> bool:
    """Whether the on-disk cache tier is active."""
    if explicit is not None:
        return explicit
    if _disk_cache is not None:
        return _disk_cache
    env = os.environ.get("REPRO_DISK_CACHE", "").strip().lower()
    return env not in ("0", "false", "no", "off")


def cache_dir() -> pathlib.Path:
    """Root directory of the on-disk campaign cache."""
    if _cache_dir is not None:
        return _cache_dir
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return pathlib.Path(env) if env else pathlib.Path(".repro_cache")


def disk_cache() -> DiskCache:
    """A :class:`DiskCache` at the currently-configured root."""
    return DiskCache(cache_dir())
