"""Campaign execution runtime: parallelism, caching, metrics.

This subsystem turns :func:`repro.experiments.platform.
measure_campaign` from a serial, per-process-cached loop into a
runtime with three layers:

* :mod:`repro.runtime.runner` — fans grid cells out over a persistent
  process pool and merges results deterministically.
* :mod:`repro.runtime.diskcache` — a content-addressed on-disk cache
  under ``.repro_cache/`` so *warm processes skip simulation
  entirely*.
* :mod:`repro.runtime.metrics` — per-cell timing and cache-hit
  counters for the benchmark harness.

Configuration resolves in priority order: explicit call argument →
:func:`configure` (what the CLI's ``--jobs`` / ``--no-disk-cache``
set) → environment (``REPRO_JOBS``, ``REPRO_DISK_CACHE``,
``REPRO_CACHE_DIR``) → auto.  Auto parallelism only engages for grids
of at least :data:`MIN_CELLS_AUTO_PARALLEL` cells on multi-core
hosts — tiny campaigns are faster serial than through a pool.
"""

from __future__ import annotations

import os
import pathlib
import typing as _t

from repro.runtime.diskcache import (
    SCHEMA_VERSION,
    DiskCache,
    benchmark_digest,
    campaign_digest,
    spec_digest,
)
from repro.runtime.metrics import (
    METRICS,
    CampaignRecord,
    campaign_metrics,
    reset_campaign_metrics,
)
from repro.runtime.runner import execute_campaign, shutdown_executor

__all__ = [
    "SCHEMA_VERSION",
    "MIN_CELLS_AUTO_PARALLEL",
    "DiskCache",
    "CampaignRecord",
    "benchmark_digest",
    "campaign_digest",
    "spec_digest",
    "campaign_metrics",
    "reset_campaign_metrics",
    "execute_campaign",
    "shutdown_executor",
    "configure",
    "resolve_jobs",
    "disk_cache_enabled",
    "cache_dir",
    "disk_cache",
]

#: Below this many cells, auto mode stays serial (pool + pickling
#: overhead beats the win on small grids).
MIN_CELLS_AUTO_PARALLEL = 10

_UNSET: _t.Any = object()

_jobs: int | None = None
_disk_cache: bool | None = None
_cache_dir: pathlib.Path | None = None


def configure(
    jobs: int | None = _UNSET,
    disk_cache: bool | None = _UNSET,
    cache_dir: str | os.PathLike | None = _UNSET,
) -> None:
    """Set process-wide runtime defaults (``None`` restores auto).

    Only the arguments actually passed are changed.
    """
    global _jobs, _disk_cache, _cache_dir
    if jobs is not _UNSET:
        _jobs = None if jobs is None else max(1, int(jobs))
    if disk_cache is not _UNSET:
        _disk_cache = disk_cache
    if cache_dir is not _UNSET:
        _cache_dir = (
            None if cache_dir is None else pathlib.Path(cache_dir)
        )


def resolve_jobs(explicit: int | None, n_cells: int) -> int:
    """Worker count for a campaign of ``n_cells`` grid cells."""
    jobs = explicit if explicit is not None else _jobs
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:  # auto
        if n_cells < MIN_CELLS_AUTO_PARALLEL:
            return 1
        jobs = os.cpu_count() or 1
    return max(1, min(int(jobs), max(1, n_cells)))


def disk_cache_enabled(explicit: bool | None = None) -> bool:
    """Whether the on-disk cache tier is active."""
    if explicit is not None:
        return explicit
    if _disk_cache is not None:
        return _disk_cache
    env = os.environ.get("REPRO_DISK_CACHE", "").strip().lower()
    return env not in ("0", "false", "no", "off")


def cache_dir() -> pathlib.Path:
    """Root directory of the on-disk campaign cache."""
    if _cache_dir is not None:
        return _cache_dir
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return pathlib.Path(env) if env else pathlib.Path(".repro_cache")


def disk_cache() -> DiskCache:
    """A :class:`DiskCache` at the currently-configured root."""
    return DiskCache(cache_dir())
