"""Deterministic fault injection for the campaign runtime.

Fault tolerance that is only exercised by real failures is fault
tolerance that is never exercised.  This module injects the failure
modes the runner must survive — worker exceptions, worker crashes
(``os._exit``), hangs, and corrupt disk-cache entries, plus the
*distributed* modes of the fabric fleet (worker kills, heartbeat
stalls, lease-expiry races, corrupt result payloads, duplicate
completions; see :data:`WORKER_FAULT_KINDS`) — at *deterministic,
seeded* grid cells, so a fault-injected campaign is exactly
reproducible and its recovered results can be asserted bit-identical
to a clean serial run.

A :class:`FaultPlan` decides, per ``(n, f)`` cell and attempt number,
whether to inject and what kind.  Selection is a pure function of the
plan's seed and the cell coordinates (a SHA-256 draw), never of wall
clock, process id or call order.  By default a fault fires only on a
cell's first attempt (``times=1``), so retried cells deterministically
succeed; raise ``times`` to model persistent failures.

Activate a plan either programmatically::

    from repro.runtime import FaultPlan, install_fault_plan
    install_fault_plan(FaultPlan(seed=42, crash=0.2, exception=0.1))

or via the ``REPRO_FAULTS`` environment variable, a comma-separated
``key=value`` list (rates in [0, 1]; cells as ``N@MHz`` joined by
``+``)::

    REPRO_FAULTS="seed=42,crash=0.2,exception=0.1,hang=0.05,hang_s=2"
    REPRO_FAULTS="exception=1,cells=4@600+8@1400,times=2"
    REPRO_FAULTS="corrupt=1"           # corrupt every cache write

Worker processes inherit the plan through ``fork`` and through the
environment, so injection works identically in serial, parallel and
subprocess contexts.  ``crash`` only calls ``os._exit`` inside a
worker process; in the main process it degrades to an exception so a
serial run is never killed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
import typing as _t

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "FaultPlan",
    "InjectedFaultError",
    "parse_fault_plan",
    "install_fault_plan",
    "active_fault_plan",
    "maybe_inject",
    "mark_server_process",
    "unmark_server_process",
    "server_process_context",
]

#: The injectable failure modes, in precedence order (a cell drawn for
#: several kinds gets the first match).
FAULT_KINDS = ("crash", "hang", "exception", "corrupt")

#: Distributed failure modes, injected by fabric *workers* (see
#: :mod:`repro.fabric`), in precedence order: a worker that leased the
#: drawn cell dies outright, stops heartbeating, completes only after
#: its lease expired, ships a corrupted result payload, or sends the
#: same completion twice.
WORKER_FAULT_KINDS = (
    "worker_kill",
    "heartbeat_stall",
    "lease_race",
    "corrupt_result",
    "dup_complete",
)


class InjectedFaultError(RuntimeError):
    """Raised by the harness in place of a real worker failure.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the
    runner's retry path must treat it exactly like any unexpected
    third-party exception.
    """


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Attributes
    ----------
    seed:
        Seeds every selection draw; two plans with the same seed and
        rates pick the same cells.
    exception, crash, hang, corrupt:
        Per-kind injection probability in ``[0, 1]``.  ``exception``,
        ``crash`` and ``hang`` apply to grid cells; ``corrupt``
        applies to disk-cache writes (drawn per entry digest).
    worker_kill, heartbeat_stall, lease_race, corrupt_result, \
    dup_complete:
        Per-kind injection probability for the *distributed* failure
        modes, drawn per grid cell by the fabric worker that leased it
        (:data:`WORKER_FAULT_KINDS`).  Deterministic in the cell, not
        the worker, so the same plan injures the same cells no matter
        how leases were distributed.
    times:
        A cell fault fires on attempts ``0 .. times-1`` only, so the
        default (1) makes every faulted cell succeed on retry.
    hang_s:
        How long an injected hang sleeps.  Finite so that even an
        undetected hang eventually unblocks a test run.
    cells:
        Optional whitelist of ``(n, frequency_hz)`` cells; when set,
        cell faults are restricted to these (rates still apply).
    """

    seed: int = 0
    exception: float = 0.0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    worker_kill: float = 0.0
    heartbeat_stall: float = 0.0
    lease_race: float = 0.0
    corrupt_result: float = 0.0
    dup_complete: float = 0.0
    times: int = 1
    hang_s: float = 5.0
    cells: tuple[tuple[int, float], ...] | None = None

    def _draw(self, kind: str, material: str) -> bool:
        """Deterministic Bernoulli draw for one kind at one target."""
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        blob = f"{self.seed}|{kind}|{material}".encode("utf-8")
        word = int.from_bytes(
            hashlib.sha256(blob).digest()[:8], "big"
        )
        return word / 2.0**64 < rate

    def _covers(self, n: int, f: float) -> bool:
        if self.cells is None:
            return True
        return any(
            m == int(n) and abs(g - float(f)) < 0.5
            for m, g in self.cells
        )

    def fault_for(self, n: int, f: float, attempt: int) -> str | None:
        """The fault kind to inject at this cell/attempt, or ``None``."""
        if attempt >= self.times or not self._covers(n, f):
            return None
        material = f"{int(n)}@{float(f):.6g}"
        for kind in ("crash", "hang", "exception"):
            if self._draw(kind, material):
                return kind
        return None

    def corrupts(self, digest: str) -> bool:
        """Whether the cache entry at ``digest`` should be corrupted."""
        return self._draw("corrupt", digest)

    def worker_fault_for(
        self, n: int, f: float, attempt: int
    ) -> str | None:
        """The distributed fault a fabric worker should inject while
        holding a lease on this cell/attempt, or ``None``.

        Selection is keyed on the cell (and attempt), never on the
        worker identity, so a chaos run is reproducible regardless of
        which worker happens to win each lease.
        """
        if attempt >= self.times or not self._covers(n, f):
            return None
        material = f"{int(n)}@{float(f):.6g}"
        for kind in WORKER_FAULT_KINDS:
            if self._draw(kind, material):
                return kind
        return None


def _parse_cell(token: str) -> tuple[int, float]:
    """Parse one ``N@MHz`` cell token into ``(n, frequency_hz)``."""
    n, sep, megahertz = token.partition("@")
    if not sep:
        raise ValueError(
            f"bad REPRO_FAULTS cell {token!r} (expected N@MHz)"
        )
    return int(n), float(megahertz) * 1e6


def parse_fault_plan(text: str) -> FaultPlan | None:
    """Parse the ``REPRO_FAULTS`` syntax into a :class:`FaultPlan`.

    Returns ``None`` for blank input; raises :class:`ValueError` on
    unknown keys or malformed values — a fault harness that silently
    fails to arm would defeat its purpose.
    """
    text = text.strip()
    if not text:
        return None
    kwargs: dict[str, _t.Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key in ("exception", "crash", "hang", "corrupt") or (
            key in WORKER_FAULT_KINDS
        ):
            kwargs[key] = float(value) if sep else 1.0
        elif key == "seed":
            kwargs["seed"] = int(value)
        elif key == "times":
            kwargs["times"] = int(value)
        elif key == "hang_s":
            kwargs["hang_s"] = float(value)
        elif key == "cells":
            kwargs["cells"] = tuple(
                _parse_cell(token) for token in value.split("+")
            )
        else:
            raise ValueError(f"unknown REPRO_FAULTS key {key!r}")
    return FaultPlan(**kwargs)


# The installed plan is *explicitly per-process*: it is recorded
# together with the installing PID and ignored by any process that did
# not install it itself.  Pool workers never rely on inheriting this
# global — the runner captures the plan in the parent and ships it to
# each worker as an explicit argument (see ``_simulate_cell``) — so
# pid-scoping changes nothing for campaign execution while making the
# ownership of the global unambiguous.
_PLAN: FaultPlan | None = None
_PLAN_PID: int | None = None
_ENV_CACHE: tuple[str, FaultPlan | None] | None = None

# Set by long-lived server processes (``repro-serve``).  A fault plan
# installed inside such a process would corrupt *unrelated* service
# jobs — every campaign that happens to share the process — so
# installation is refused unless the server opted in.
_SERVER_CONTEXT: str | None = None
_SERVER_ALLOWS_FAULTS = False


def mark_server_process(
    context: str = "repro-serve", allow_faults: bool = False
) -> None:
    """Declare this process a long-lived server.

    After the mark, :func:`install_fault_plan` refuses new plans and
    :func:`active_fault_plan` ignores ``REPRO_FAULTS`` — a fault
    harness armed via the environment of a service would otherwise
    silently injure every job the server ever runs.  ``allow_faults``
    opts back in (the service's own fault-tolerance tests need it).

    Raises :class:`RuntimeError` if a plan is already in force and
    faults are not allowed, so a mis-deployed ``REPRO_FAULTS`` fails
    the server at startup instead of corrupting traffic later.
    """
    global _SERVER_CONTEXT, _SERVER_ALLOWS_FAULTS
    if not allow_faults and active_fault_plan() is not None:
        source = (
            "an installed fault plan"
            if _PLAN is not None and _PLAN_PID == os.getpid()
            else f"REPRO_FAULTS={os.environ.get('REPRO_FAULTS', '')!r}"
        )
        raise RuntimeError(
            f"refusing to start long-lived server process {context!r} "
            f"with fault injection armed ({source}); unset REPRO_FAULTS "
            "or start the server with fault injection explicitly allowed"
        )
    _SERVER_CONTEXT = context
    _SERVER_ALLOWS_FAULTS = bool(allow_faults)


def unmark_server_process() -> None:
    """Clear the server mark (test isolation)."""
    global _SERVER_CONTEXT, _SERVER_ALLOWS_FAULTS
    _SERVER_CONTEXT = None
    _SERVER_ALLOWS_FAULTS = False


def server_process_context() -> str | None:
    """The server context declared for this process, if any."""
    return _SERVER_CONTEXT


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Install (or with ``None`` remove) this process's fault plan.

    The plan is owned by the installing process only (forked pool
    workers receive it as an explicit argument from the runner, not
    through this global).  An installed plan takes priority over
    ``REPRO_FAULTS``.

    Raises :class:`RuntimeError` inside a process marked as a
    long-lived server (see :func:`mark_server_process`) unless that
    server explicitly allowed fault injection — removing a plan
    (``None``) is always permitted.
    """
    global _PLAN, _PLAN_PID
    if (
        plan is not None
        and _SERVER_CONTEXT is not None
        and not _SERVER_ALLOWS_FAULTS
    ):
        raise RuntimeError(
            "refusing to install a fault plan inside long-lived server "
            f"process {_SERVER_CONTEXT!r}: injected faults would hit "
            "unrelated service jobs; start the server with fault "
            "injection explicitly allowed to override"
        )
    _PLAN = plan
    _PLAN_PID = None if plan is None else os.getpid()


def active_fault_plan() -> FaultPlan | None:
    """The plan currently in force: installed, else ``REPRO_FAULTS``.

    An installed plan only applies to the process that installed it;
    a server-marked process without fault allowance reports ``None``
    even when ``REPRO_FAULTS`` is set.
    """
    if _PLAN is not None and _PLAN_PID == os.getpid():
        return _PLAN
    if _SERVER_CONTEXT is not None and not _SERVER_ALLOWS_FAULTS:
        return None
    env = os.environ.get("REPRO_FAULTS", "")
    if not env.strip():
        return None
    global _ENV_CACHE
    if _ENV_CACHE is None or _ENV_CACHE[0] != env:
        _ENV_CACHE = (env, parse_fault_plan(env))
    return _ENV_CACHE[1]


def maybe_inject(
    n: int,
    f: float,
    attempt: int,
    plan: FaultPlan | None = None,
) -> None:
    """Execute the planned fault (if any) for this cell attempt.

    Called by the cell worker before simulation starts.  The runner
    passes the plan explicitly (it is pickled along with the cell), so
    injection also reaches pool workers that were forked *before* the
    plan was installed; ``plan=None`` falls back to
    :func:`active_fault_plan`.  ``hang`` sleeps ``hang_s`` then lets
    the cell proceed (a straggler, not a corpse — the runner's timeout
    decides which).  ``crash`` exits the worker process without
    cleanup; in the main process it degrades to an
    :class:`InjectedFaultError` so serial runs survive.
    """
    if plan is None:
        plan = active_fault_plan()
    if plan is None:
        return
    kind = plan.fault_for(n, f, attempt)
    if kind is None:
        return
    where = f"cell (n={int(n)}, f={float(f) / 1e6:.0f} MHz) attempt {attempt}"
    if kind == "hang":
        time.sleep(plan.hang_s)
        return
    if kind == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(86)
        raise InjectedFaultError(
            f"injected crash at {where} (simulated in-process)"
        )
    raise InjectedFaultError(f"injected exception at {where}")
