"""Campaign-runtime metrics: per-cell timings, cache-hit counters and
fault-tolerance accounting.

The runtime keeps one process-global :class:`MetricsRegistry` that the
campaign runner reports into.  The benchmark harness (and the CLI's
``--jobs`` plumbing) reads a :meth:`~MetricsRegistry.snapshot` at the
end of a session to track the perf trajectory across PRs — how many
cells were actually simulated, how many came from each cache tier,
how long the simulated cells took, and what the fault-tolerance layer
had to absorb (retries, timeouts, crash recoveries, permanently
failed cells).
"""

from __future__ import annotations

import dataclasses
import threading
import typing as _t

__all__ = [
    "CampaignRecord",
    "MetricsRegistry",
    "campaign_metrics",
    "reset_campaign_metrics",
]


@dataclasses.dataclass
class CampaignRecord:
    """One ``measure_campaign`` call, as observed by the runtime.

    Attributes
    ----------
    label:
        Campaign label (``benchmark.class``).
    source:
        Where the result came from: ``"memory"``, ``"disk"``,
        ``"simulated"``, ``"planned"`` (assembled from a shared
        cross-experiment batch by :mod:`repro.pipeline`; the batch
        itself reports separately as ``"simulated"``) or ``"failed"``
        (retry budget exhausted without ``allow_partial``).
    cells:
        Number of grid cells in the campaign.
    wall_s:
        Wall-clock spent producing the result (≈0 for cache hits).
    jobs:
        Worker processes used (1 = serial; only meaningful when
        ``source == "simulated"``).
    cell_wall_s:
        Per-cell simulation wall times, in grid order (empty for
        cache hits).
    attempts:
        Total cell attempts across all retry rounds (== ``cells`` on
        a clean simulated run, 0 for cache hits).
    retries:
        Attempts beyond each cell's first.
    timeouts:
        Attempts that ended in a per-cell timeout.
    crash_recoveries:
        Worker-pool breaks survived without discarding finished cells.
    failed_cells:
        Cells that exhausted their budget (> 0 only with
        ``allow_partial`` or ``source == "failed"``).
    cell_attempts:
        Per-cell attempt counts as ``[n, f, attempts]`` triples, grid
        order (empty when every cell took exactly one attempt).
    failures:
        Structured per-cell failure report (see
        :meth:`repro.runtime.runner.CampaignExecution.failure_report`).
    events_processed:
        Engine heap entries executed, summed over simulated cells
        (0 for cache hits).
    processes_spawned:
        Simulated processes started (detached tasks included), summed
        over simulated cells.
    peak_queue_len:
        Largest event-heap high-water mark over the campaign's cells.
    analytic_cells:
        Cells evaluated by the closed-form analytic backend (they
        count toward ``cells`` but not toward *simulated* cells).
    fabric_cells:
        Cells whose result was produced by the distributed worker
        fleet (:mod:`repro.fabric`).
    fabric_workers:
        Distinct fleet workers that contributed results.
    fabric_reassignments:
        Cells requeued after a lost worker or expired lease.
    """

    label: str
    source: str
    cells: int
    wall_s: float
    jobs: int = 1
    analytic_cells: int = 0
    fabric_cells: int = 0
    fabric_workers: int = 0
    fabric_reassignments: int = 0
    cell_wall_s: tuple[float, ...] = ()
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    crash_recoveries: int = 0
    failed_cells: int = 0
    cell_attempts: tuple[tuple[int, float, int], ...] = ()
    failures: tuple[dict[str, _t.Any], ...] = ()
    events_processed: int = 0
    processes_spawned: int = 0
    peak_queue_len: int = 0

    @property
    def events_per_second(self) -> float:
        """Engine throughput over this campaign's simulated cells."""
        wall = sum(self.cell_wall_s)
        return self.events_processed / wall if wall > 0 else 0.0

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready form (what ``BENCH_campaigns.json`` stores)."""
        return {
            "label": self.label,
            "source": self.source,
            "cells": self.cells,
            "wall_s": self.wall_s,
            "jobs": self.jobs,
            "analytic_cells": self.analytic_cells,
            "fabric_cells": self.fabric_cells,
            "fabric_workers": self.fabric_workers,
            "fabric_reassignments": self.fabric_reassignments,
            "cell_wall_s": list(self.cell_wall_s),
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crash_recoveries": self.crash_recoveries,
            "failed_cells": self.failed_cells,
            "cell_attempts": [list(t) for t in self.cell_attempts],
            "failures": list(self.failures),
            "events_processed": self.events_processed,
            "processes_spawned": self.processes_spawned,
            "peak_queue_len": self.peak_queue_len,
            "events_per_second": self.events_per_second,
        }


class MetricsRegistry:
    """Accumulates campaign records and aggregate counters."""

    def __init__(self) -> None:
        # The service records campaigns from worker threads; the lock
        # keeps the aggregate counters exact under that concurrency.
        self._lock = threading.Lock()
        self.records: list[CampaignRecord] = []
        self.memory_hits = 0
        self.disk_hits = 0
        self.simulated_campaigns = 0
        self.simulated_cells = 0
        self.simulated_wall_s = 0.0
        self.failed_campaigns = 0
        self.planned_campaigns = 0
        #: Cells answered by the closed-form analytic backend.
        self.analytic_cells = 0
        #: Cells executed on the distributed worker fleet, and the
        #: fleet's recovery work (lost-worker/expired-lease requeues).
        self.fabric_cells = 0
        self.fabric_reassignments = 0
        # Cross-experiment planner accounting (repro.pipeline): cells
        # requested across all experiments in a plan, cells saved by
        # dedup/caching, cells the batch actually simulated.
        self.plans = 0
        self.planned_cells = 0
        self.deduped_cells = 0
        self.executed_cells = 0
        self.total_retries = 0
        self.total_timeouts = 0
        self.total_crash_recoveries = 0
        self.total_failed_cells = 0
        self.total_events_processed = 0
        self.total_processes_spawned = 0
        self.peak_queue_len = 0
        #: Sum of per-cell simulation wall times (the engine-throughput
        #: denominator; excludes pool startup and harness overhead).
        self.simulated_cell_wall_s = 0.0

    def record(self, record: CampaignRecord) -> None:
        """Append one campaign record and update the aggregates."""
        with self._lock:
            self.records.append(record)
            if record.source == "memory":
                self.memory_hits += 1
            elif record.source == "disk":
                self.disk_hits += 1
            elif record.source == "failed":
                self.failed_campaigns += 1
            elif record.source == "planned":
                self.planned_campaigns += 1
            else:
                self.simulated_campaigns += 1
                self.simulated_cells += (
                    record.cells - record.analytic_cells
                )
                self.simulated_wall_s += record.wall_s
            self.analytic_cells += record.analytic_cells
            self.fabric_cells += record.fabric_cells
            self.fabric_reassignments += record.fabric_reassignments
            self.total_retries += record.retries
            self.total_timeouts += record.timeouts
            self.total_crash_recoveries += record.crash_recoveries
            self.total_failed_cells += record.failed_cells
            self.total_events_processed += record.events_processed
            self.total_processes_spawned += record.processes_spawned
            if record.peak_queue_len > self.peak_queue_len:
                self.peak_queue_len = record.peak_queue_len
            self.simulated_cell_wall_s += sum(record.cell_wall_s)

    def record_plan(
        self, planned: int, deduped: int, executed: int
    ) -> None:
        """Account one cross-experiment plan's cell bookkeeping.

        ``planned`` counts cells over all requested campaigns,
        ``deduped`` the cells dedup and the cache tiers avoided
        simulating, and ``executed`` the cells the shared batch
        actually ran (``planned == deduped + executed`` on a clean
        plan).
        """
        with self._lock:
            self.plans += 1
            self.planned_cells += int(planned)
            self.deduped_cells += int(deduped)
            self.executed_cells += int(executed)

    def reset(self) -> None:
        """Drop all records and zero every counter."""
        self.__init__()

    @property
    def events_per_second(self) -> float:
        """Aggregate engine throughput over all simulated cells."""
        wall = self.simulated_cell_wall_s
        return self.total_events_processed / wall if wall > 0 else 0.0

    def snapshot(self) -> dict[str, _t.Any]:
        """A JSON-ready summary of everything recorded so far.

        ``disk_cache`` reports the *per-process* disk-cache counters
        (:func:`repro.runtime.diskcache.cache_stats`) — unlike the
        per-campaign ``disk_hits``, they also count misses, LRU
        evictions and quarantined entries.
        """
        from repro.runtime.diskcache import cache_stats

        return {
            "disk_cache": cache_stats(),
            "campaigns": len(self.records),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "simulated_campaigns": self.simulated_campaigns,
            "simulated_cells": self.simulated_cells,
            "analytic_cells": self.analytic_cells,
            "fabric_cells": self.fabric_cells,
            "fabric_reassignments": self.fabric_reassignments,
            "simulated_wall_s": self.simulated_wall_s,
            "failed_campaigns": self.failed_campaigns,
            "planned_campaigns": self.planned_campaigns,
            "plans": self.plans,
            "planned_cells": self.planned_cells,
            "deduped_cells": self.deduped_cells,
            "executed_cells": self.executed_cells,
            "retries": self.total_retries,
            "timeouts": self.total_timeouts,
            "crash_recoveries": self.total_crash_recoveries,
            "failed_cells": self.total_failed_cells,
            "events_processed": self.total_events_processed,
            "processes_spawned": self.total_processes_spawned,
            "peak_queue_len": self.peak_queue_len,
            "events_per_second": self.events_per_second,
            "records": [r.as_dict() for r in self.records],
        }

    def summary_line(self) -> str:
        """One-line human summary (the CLI prints this).

        Fault-tolerance counters appear only when something actually
        went wrong, so clean runs keep the familiar short line.
        """
        line = (
            f"{len(self.records)} campaigns: "
            f"{self.simulated_cells} cells simulated in "
            f"{self.simulated_wall_s:.2f}s, "
        )
        if self.analytic_cells:
            line += f"{self.analytic_cells} analytic cells, "
        if self.fabric_cells:
            line += f"{self.fabric_cells} fabric cells, "
            if self.fabric_reassignments:
                line += (
                    f"{self.fabric_reassignments} fleet reassignments, "
                )
        line += (
            f"{self.memory_hits} memory hits, "
            f"{self.disk_hits} disk hits"
        )
        if self.total_events_processed:
            line += (
                f"; engine: {self.total_events_processed / 1e6:.1f}M events"
                f" at {self.events_per_second / 1e3:.0f}k ev/s,"
                f" peak queue {self.peak_queue_len}"
            )
        if self.plans:
            line += (
                f"; plan: {self.planned_cells} cells planned, "
                f"{self.deduped_cells} deduped, "
                f"{self.executed_cells} executed"
            )
        if (
            self.total_retries
            or self.total_timeouts
            or self.total_crash_recoveries
            or self.total_failed_cells
        ):
            line += (
                f"; faults absorbed: {self.total_retries} retries, "
                f"{self.total_timeouts} timeouts, "
                f"{self.total_crash_recoveries} crash recoveries, "
                f"{self.total_failed_cells} failed cells"
            )
        from repro.runtime.diskcache import cache_stats

        disk = cache_stats()
        if any(disk.values()):
            line += (
                f"; disk cache: {disk['hits']}/{disk['hits'] + disk['misses']}"
                f" reads hit, {disk['writes']} writes, "
                f"{disk['evictions']} evictions, "
                f"{disk['quarantines']} quarantines"
            )
        return line


#: The process-global registry the campaign runner reports into.
METRICS = MetricsRegistry()


def campaign_metrics() -> dict[str, _t.Any]:
    """Snapshot of the global campaign-runtime metrics."""
    return METRICS.snapshot()


def reset_campaign_metrics() -> None:
    """Zero the global campaign-runtime metrics."""
    METRICS.reset()
