"""Campaign-runtime metrics: per-cell timings and cache-hit counters.

The runtime keeps one process-global :class:`MetricsRegistry` that the
campaign runner reports into.  The benchmark harness (and the CLI's
``--jobs`` plumbing) reads a :meth:`~MetricsRegistry.snapshot` at the
end of a session to track the perf trajectory across PRs — how many
cells were actually simulated, how many came from each cache tier, and
how long the simulated cells took.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = [
    "CampaignRecord",
    "MetricsRegistry",
    "campaign_metrics",
    "reset_campaign_metrics",
]


@dataclasses.dataclass
class CampaignRecord:
    """One ``measure_campaign`` call, as observed by the runtime.

    Attributes
    ----------
    label:
        Campaign label (``benchmark.class``).
    source:
        Where the result came from: ``"memory"``, ``"disk"`` or
        ``"simulated"``.
    cells:
        Number of grid cells in the campaign.
    wall_s:
        Wall-clock spent producing the result (≈0 for cache hits).
    jobs:
        Worker processes used (1 = serial; only meaningful when
        ``source == "simulated"``).
    cell_wall_s:
        Per-cell simulation wall times, in grid order (empty for
        cache hits).
    """

    label: str
    source: str
    cells: int
    wall_s: float
    jobs: int = 1
    cell_wall_s: tuple[float, ...] = ()

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready form (what ``BENCH_campaigns.json`` stores)."""
        return {
            "label": self.label,
            "source": self.source,
            "cells": self.cells,
            "wall_s": self.wall_s,
            "jobs": self.jobs,
            "cell_wall_s": list(self.cell_wall_s),
        }


class MetricsRegistry:
    """Accumulates campaign records and aggregate counters."""

    def __init__(self) -> None:
        self.records: list[CampaignRecord] = []
        self.memory_hits = 0
        self.disk_hits = 0
        self.simulated_campaigns = 0
        self.simulated_cells = 0
        self.simulated_wall_s = 0.0

    def record(self, record: CampaignRecord) -> None:
        """Append one campaign record and update the aggregates."""
        self.records.append(record)
        if record.source == "memory":
            self.memory_hits += 1
        elif record.source == "disk":
            self.disk_hits += 1
        else:
            self.simulated_campaigns += 1
            self.simulated_cells += record.cells
            self.simulated_wall_s += record.wall_s

    def reset(self) -> None:
        """Drop all records and zero every counter."""
        self.__init__()

    def snapshot(self) -> dict[str, _t.Any]:
        """A JSON-ready summary of everything recorded so far."""
        return {
            "campaigns": len(self.records),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "simulated_campaigns": self.simulated_campaigns,
            "simulated_cells": self.simulated_cells,
            "simulated_wall_s": self.simulated_wall_s,
            "records": [r.as_dict() for r in self.records],
        }

    def summary_line(self) -> str:
        """One-line human summary (the CLI prints this)."""
        return (
            f"{len(self.records)} campaigns: "
            f"{self.simulated_cells} cells simulated in "
            f"{self.simulated_wall_s:.2f}s, "
            f"{self.memory_hits} memory hits, "
            f"{self.disk_hits} disk hits"
        )


#: The process-global registry the campaign runner reports into.
METRICS = MetricsRegistry()


def campaign_metrics() -> dict[str, _t.Any]:
    """Snapshot of the global campaign-runtime metrics."""
    return METRICS.snapshot()


def reset_campaign_metrics() -> None:
    """Zero the global campaign-runtime metrics."""
    METRICS.reset()
