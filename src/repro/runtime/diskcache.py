"""Content-addressed on-disk campaign cache.

Simulation is deterministic, so a campaign is fully described by its
inputs: benchmark name, problem class, the (counts × frequencies)
grid, and every field of the platform spec.  This module hashes that
description into a digest and stores the resulting
:class:`~repro.core.measurements.TimingCampaign` as JSON under
``.repro_cache/`` — warm processes skip simulation entirely.

JSON round-trips Python floats exactly (``json.dumps`` emits the
shortest repr that parses back to the same double), so a reloaded
campaign is bit-identical to the freshly simulated one.

Integrity: every entry embeds a SHA-256 checksum of its canonical
payload, verified on read.  An entry that fails to parse, parses to
the wrong shape, or fails the checksum is *quarantined* — renamed to
``<name>.json.corrupt`` — instead of silently ignored, so corruption
is both harmless (treated as a miss, cell re-simulated) and visible
(the file survives for post-mortem).  The cache is also bounded: once
it exceeds ``max_entries`` (default 4096, override with
``REPRO_CACHE_MAX_ENTRIES``), the least-recently-used entries are
swept after each write; reads refresh an entry's mtime to keep warm
campaigns resident.

Bump :data:`SCHEMA_VERSION` whenever simulation semantics change —
the digest includes it, so old entries are orphaned rather than
served stale.
"""

from __future__ import annotations

import collections.abc as _c
import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile
import threading
import typing as _t

from repro.cluster.machine import ClusterSpec
from repro.core.measurements import TimingCampaign
from repro.runtime import faults

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_MAX_ENTRIES",
    "DiskCache",
    "spec_digest",
    "benchmark_digest",
    "campaign_digest",
    "cache_stats",
    "reset_cache_stats",
]

#: Version of both the digest material and the on-disk JSON layout.
#: Bump when the simulator's outputs or this file format change.
#: (v2: embedded payload checksum.)
SCHEMA_VERSION = 2

#: Default cap on resident entries before the LRU sweep kicks in.
DEFAULT_MAX_ENTRIES = 4096

# Per-process counters, shared by every DiskCache instance.  A campaign
# cache is consulted once per campaign, not per cell, so these stay
# cheap; the lock makes them safe to bump from the service's job
# threads.
_STATS_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0
_EVICTIONS = 0
_QUARANTINES = 0
_WRITES = 0


def _count(kind: str, amount: int = 1) -> None:
    global _HITS, _MISSES, _EVICTIONS, _QUARANTINES, _WRITES
    with _STATS_LOCK:
        if kind == "hit":
            _HITS += amount
        elif kind == "miss":
            _MISSES += amount
        elif kind == "eviction":
            _EVICTIONS += amount
        elif kind == "quarantine":
            _QUARANTINES += amount
        elif kind == "write":
            _WRITES += amount


def cache_stats() -> dict[str, int]:
    """Per-process disk-cache counters (all instances, since start).

    ``hits``/``misses`` count :meth:`DiskCache.get` outcomes (a
    quarantined read counts as both a miss and a quarantine),
    ``writes`` counts successful :meth:`DiskCache.put` calls,
    ``evictions`` the entries removed by the LRU sweep.
    """
    with _STATS_LOCK:
        return {
            "hits": _HITS,
            "misses": _MISSES,
            "evictions": _EVICTIONS,
            "quarantines": _QUARANTINES,
            "writes": _WRITES,
        }


def reset_cache_stats() -> None:
    """Zero the per-process disk-cache counters (test isolation)."""
    global _HITS, _MISSES, _EVICTIONS, _QUARANTINES, _WRITES
    with _STATS_LOCK:
        _HITS = _MISSES = _EVICTIONS = _QUARANTINES = _WRITES = 0


def _digest_material(obj: _t.Any) -> _t.Any:
    """Recursively reduce spec values to stable JSON-able structures.

    Handles what plain ``dataclasses.asdict`` cannot: mapping proxies
    (not deep-copyable), enum keys, and iterable table objects such as
    :class:`~repro.cluster.opoints.OperatingPointTable`.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: _digest_material(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, _c.Mapping):
        return {
            repr(_digest_material(k)): _digest_material(v)
            for k, v in sorted(
                obj.items(), key=lambda item: repr(item[0])
            )
        }
    if isinstance(obj, _c.Iterable):
        return [_digest_material(v) for v in obj]
    return repr(obj)


def _prune_degenerate(material: _t.Any) -> _t.Any:
    """Drop spec fields that sit at their zero-effect defaults.

    Newer ``ClusterSpec``/``MemorySpec`` fields (node groups, the
    memory-wall contention term) default to values with exactly zero
    model effect; omitting them from the digest material keeps the
    paper platform's digest — and therefore every warm cache entry —
    identical to its pre-refactor value.
    """
    if isinstance(material, dict):
        return {
            key: _prune_degenerate(value)
            for key, value in material.items()
            if not (
                (key == "groups" and value == [])
                or (key == "shared_cores" and value == 1)
                or (key == "contention" and value == 0.0)
            )
        }
    if isinstance(material, list):
        return [_prune_degenerate(value) for value in material]
    return material


def spec_digest(spec: ClusterSpec) -> str:
    """Digest of every platform-spec field, ignoring node count.

    Node count is a grid axis, not part of the platform identity, so
    homogeneous specs normalize it away before hashing.  Grouped
    (heterogeneous) specs hash their full group composition — counts
    included — because "the same machine with fewer nodes" is a
    different mix of generations there, and two platforms sharing a
    leading group must never share cache entries.
    """
    normalized = spec if spec.groups else spec.with_nodes(1)
    material = _prune_degenerate(_digest_material(normalized))
    blob = json.dumps(material, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def benchmark_digest(benchmark: _t.Any) -> str:
    """Digest of a benchmark model's full configuration.

    ``(name, problem class)`` alone is not a campaign identity — e.g.
    ``FTBenchmark`` carries a ``decomposition`` option under one name.
    Hash the concrete class plus every instance attribute instead.
    """
    material = {
        "type": f"{type(benchmark).__module__}."
        f"{type(benchmark).__qualname__}",
        "state": _digest_material(vars(benchmark)),
    }
    blob = json.dumps(material, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def campaign_digest(
    benchmark_name: str,
    problem_class: str,
    counts: _t.Sequence[int],
    frequencies: _t.Sequence[float],
    spec: ClusterSpec | str,
    benchmark_state: str = "",
    backend: str = "des",
) -> str:
    """Content address of one campaign (includes the schema version).

    ``spec`` may be a :class:`ClusterSpec` or an already-computed
    :func:`spec_digest` string; ``benchmark_state`` is the
    :func:`benchmark_digest` of the measured model.  ``backend`` is
    part of the identity: the analytic closed forms and the DES agree
    only to documented tolerances, so a grid measured under one
    backend must never silently answer a request for the other.
    """
    material = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark_name,
        "class": problem_class,
        "state": benchmark_state,
        "counts": [int(n) for n in counts],
        "frequencies": [float(f) for f in frequencies],
        "spec": spec if isinstance(spec, str) else spec_digest(spec),
        "backend": str(backend),
    }
    blob = json.dumps(material, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _payload_checksum(document: dict[str, _t.Any]) -> str:
    """Checksum of an entry's canonical payload (checksum field aside)."""
    payload = {k: v for k, v in document.items() if k != "checksum"}
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of ``<digest>.json`` campaign files.

    Entries are written atomically (temp file + rename) and carry a
    payload checksum, so a reader never observes a half-written or
    silently-corrupted campaign even with concurrent processes filling
    the same cache.  Bad entries are quarantined to
    ``<name>.json.corrupt`` and treated as misses.
    """

    def __init__(
        self,
        root: pathlib.Path | str,
        max_entries: int | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        if max_entries is None:
            env = os.environ.get(
                "REPRO_CACHE_MAX_ENTRIES", ""
            ).strip()
            try:
                max_entries = int(env) if env else DEFAULT_MAX_ENTRIES
            except ValueError:
                max_entries = DEFAULT_MAX_ENTRIES
        self.max_entries = max(1, int(max_entries))

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a bad entry aside as ``<name>.corrupt`` (best effort).

        Rename rather than delete: the corrupt bytes stay available
        for post-mortem, and can never again be served as a hit.
        """
        target = path.with_name(path.name + ".corrupt")
        _count("quarantine")
        try:
            os.replace(path, target)
        except OSError:
            try:  # e.g. another process already quarantined it
                path.unlink()
            except OSError:
                pass

    def get(self, digest: str) -> TimingCampaign | None:
        """Load a campaign, or ``None`` on miss.

        Unparseable, wrong-shaped, checksum-failing and structurally
        invalid entries are quarantined; a wrong schema version is an
        ordinary (legitimately orphaned) miss.
        """
        path = self._path(digest)
        try:
            raw = path.read_text()
        except OSError:
            _count("miss")
            return None
        try:
            document = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            _count("miss")
            return None
        if not isinstance(document, dict):
            self._quarantine(path)
            _count("miss")
            return None
        if document.get("schema") != SCHEMA_VERSION:
            _count("miss")
            return None
        if document.get("checksum") != _payload_checksum(document):
            self._quarantine(path)
            _count("miss")
            return None
        try:
            campaign = TimingCampaign(
                times={
                    (n, f): t for n, f, t in document["times"]
                },
                base_frequency_hz=document["base_frequency_hz"],
                energies={
                    (n, f): e for n, f, e in document["energies"]
                },
                label=document.get("label", ""),
            )
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            _count("miss")
            return None
        try:  # LRU recency: a hit keeps the entry resident.
            os.utime(path)
        except OSError:
            pass
        _count("hit")
        return campaign

    def put(self, digest: str, campaign: TimingCampaign) -> None:
        """Store a campaign; failures are non-fatal (cache stays cold)."""
        document = {
            "schema": SCHEMA_VERSION,
            "label": campaign.label,
            "base_frequency_hz": campaign.base_frequency_hz,
            "times": [
                [n, f, t] for (n, f), t in campaign.times.items()
            ],
            "energies": [
                [n, f, e] for (n, f), e in campaign.energies.items()
            ],
        }
        document["checksum"] = _payload_checksum(document)
        plan = faults.active_fault_plan()
        if plan is not None and plan.corrupts(digest):
            # Injected corruption: tamper with the payload *after*
            # sealing the checksum, so the read path must catch it.
            if document["times"]:
                document["times"][0][2] = (
                    float(document["times"][0][2]) + 1.0
                )
            else:
                document["label"] = document["label"] + "!corrupt"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle)
                os.replace(tmp, self._path(digest))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return
        _count("write")
        self._sweep()

    def _sweep(self) -> int:
        """Evict least-recently-used entries beyond ``max_entries``."""
        aged: list[tuple[float, pathlib.Path]] = []
        try:
            entries = list(self.root.glob("*.json"))
        except OSError:
            return 0
        if len(entries) <= self.max_entries:
            return 0
        for path in entries:
            try:
                aged.append((path.stat().st_mtime, path))
            except OSError:
                pass  # raced with another process's eviction
        aged.sort(key=lambda pair: pair[0])
        removed = 0
        for _, path in aged[: max(0, len(aged) - self.max_entries)]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        _count("eviction", removed)
        return removed

    def clear(self) -> int:
        """Delete every entry (quarantined ones included); returns the
        number of live entries removed."""
        removed = 0
        try:
            entries = list(self.root.glob("*.json"))
            corrupt = list(self.root.glob("*.json.corrupt"))
        except OSError:
            return 0
        for path in corrupt:
            try:
                path.unlink()
            except OSError:
                pass
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def quarantined(self) -> int:
        """Number of quarantined (``.json.corrupt``) entries on disk."""
        try:
            return sum(1 for _ in self.root.glob("*.json.corrupt"))
        except OSError:
            return 0

    def stats(self) -> dict[str, int]:
        """Per-process counters plus this root's on-disk footprint.

        The counter fields (:func:`cache_stats`) are process-wide —
        every :class:`DiskCache` instance contributes — because the
        runtime builds a fresh instance per campaign lookup; the
        ``entries``/``quarantined_entries`` fields are live counts for
        *this* cache directory.
        """
        snapshot = cache_stats()
        snapshot["entries"] = len(self)
        snapshot["quarantined_entries"] = self.quarantined()
        return snapshot

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
