"""Content-addressed on-disk campaign cache.

Simulation is deterministic, so a campaign is fully described by its
inputs: benchmark name, problem class, the (counts × frequencies)
grid, and every field of the platform spec.  This module hashes that
description into a digest and stores the resulting
:class:`~repro.core.measurements.TimingCampaign` as JSON under
``.repro_cache/`` — warm processes skip simulation entirely.

JSON round-trips Python floats exactly (``json.dumps`` emits the
shortest repr that parses back to the same double), so a reloaded
campaign is bit-identical to the freshly simulated one.

Bump :data:`SCHEMA_VERSION` whenever simulation semantics change —
the digest includes it, so old entries are orphaned rather than
served stale.
"""

from __future__ import annotations

import collections.abc as _c
import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile
import typing as _t

from repro.cluster.machine import ClusterSpec
from repro.core.measurements import TimingCampaign

__all__ = [
    "SCHEMA_VERSION",
    "DiskCache",
    "spec_digest",
    "benchmark_digest",
    "campaign_digest",
]

#: Version of both the digest material and the on-disk JSON layout.
#: Bump when the simulator's outputs or this file format change.
SCHEMA_VERSION = 1


def _digest_material(obj: _t.Any) -> _t.Any:
    """Recursively reduce spec values to stable JSON-able structures.

    Handles what plain ``dataclasses.asdict`` cannot: mapping proxies
    (not deep-copyable), enum keys, and iterable table objects such as
    :class:`~repro.cluster.opoints.OperatingPointTable`.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: _digest_material(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, _c.Mapping):
        return {
            repr(_digest_material(k)): _digest_material(v)
            for k, v in sorted(
                obj.items(), key=lambda item: repr(item[0])
            )
        }
    if isinstance(obj, _c.Iterable):
        return [_digest_material(v) for v in obj]
    return repr(obj)


def spec_digest(spec: ClusterSpec) -> str:
    """Digest of every platform-spec field, ignoring node count.

    Node count is a grid axis, not part of the platform identity, so
    it is normalized away before hashing.
    """
    material = _digest_material(spec.with_nodes(1))
    blob = json.dumps(material, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def benchmark_digest(benchmark: _t.Any) -> str:
    """Digest of a benchmark model's full configuration.

    ``(name, problem class)`` alone is not a campaign identity — e.g.
    ``FTBenchmark`` carries a ``decomposition`` option under one name.
    Hash the concrete class plus every instance attribute instead.
    """
    material = {
        "type": f"{type(benchmark).__module__}."
        f"{type(benchmark).__qualname__}",
        "state": _digest_material(vars(benchmark)),
    }
    blob = json.dumps(material, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def campaign_digest(
    benchmark_name: str,
    problem_class: str,
    counts: _t.Sequence[int],
    frequencies: _t.Sequence[float],
    spec: ClusterSpec | str,
    benchmark_state: str = "",
) -> str:
    """Content address of one campaign (includes the schema version).

    ``spec`` may be a :class:`ClusterSpec` or an already-computed
    :func:`spec_digest` string; ``benchmark_state`` is the
    :func:`benchmark_digest` of the measured model.
    """
    material = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark_name,
        "class": problem_class,
        "state": benchmark_state,
        "counts": [int(n) for n in counts],
        "frequencies": [float(f) for f in frequencies],
        "spec": spec if isinstance(spec, str) else spec_digest(spec),
    }
    blob = json.dumps(material, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of ``<digest>.json`` campaign files.

    Entries are written atomically (temp file + rename), so a reader
    never observes a half-written campaign even with concurrent
    processes filling the same cache.
    """

    def __init__(self, root: pathlib.Path | str) -> None:
        self.root = pathlib.Path(root)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> TimingCampaign | None:
        """Load a campaign, or ``None`` on miss/corruption."""
        path = self._path(digest)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if document.get("schema") != SCHEMA_VERSION:
            return None
        try:
            return TimingCampaign(
                times={
                    (n, f): t for n, f, t in document["times"]
                },
                base_frequency_hz=document["base_frequency_hz"],
                energies={
                    (n, f): e for n, f, e in document["energies"]
                },
                label=document.get("label", ""),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, digest: str, campaign: TimingCampaign) -> None:
        """Store a campaign; failures are non-fatal (cache stays cold)."""
        document = {
            "schema": SCHEMA_VERSION,
            "label": campaign.label,
            "base_frequency_hz": campaign.base_frequency_hz,
            "times": [
                [n, f, t] for (n, f), t in campaign.times.items()
            ],
            "energies": [
                [n, f, e] for (n, f), e in campaign.energies.items()
            ],
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle)
                os.replace(tmp, self._path(digest))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        try:
            entries = list(self.root.glob("*.json"))
        except OSError:
            return 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
