"""Fault-tolerant parallel campaign cell execution.

Every (processor count, frequency) cell of a measurement campaign is an
independent deterministic simulation — embarrassingly parallel.  This
module fans cells out across a persistent :class:`~concurrent.futures.
ProcessPoolExecutor` and merges the results back in *grid order*, so a
parallel run is bit-identical to a serial one: same floats, same dict
insertion order.

On top of the fan-out sits a fault-tolerance layer:

* **Per-cell retries with exponential backoff.**  A cell whose worker
  raises gets re-submitted (with an incremented attempt number, which
  the fault-injection harness keys on) up to ``retries`` more times.
* **Per-cell timeouts.**  If no cell completes within ``cell_timeout``
  seconds, every still-running cell is declared hung; the pool is
  hard-reset (hung workers are *terminated*, not waited on) and the
  stuck cells retried.  Cells that never started are re-queued without
  consuming an attempt.
* **Crash recovery.**  A worker dying (segfault, ``os._exit``) breaks
  the whole pool, but futures that already completed keep their
  results — only the unfinished cells are re-submitted to a fresh
  pool.  Two fruitless crash rounds in a row drop the remainder to
  the serial path.
* **Graceful degradation.**  With ``allow_partial`` the surviving
  cells are returned together with per-cell
  :class:`~repro.errors.CellExecutionError` failure records; without
  it the campaign raises :class:`~repro.errors.CampaignExecutionError`
  carrying the same records.

Because simulation is deterministic, a cell that succeeds on retry
produces exactly the bytes it would have produced on a clean first
run, so a fault-ridden campaign that completes is bit-identical to an
undisturbed one.

The pool is created lazily, reused across campaigns (startup cost is
paid once per process, not per campaign) and torn down at interpreter
exit — with ``wait=True`` there, so no forked child outlives the
interpreter.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import dataclasses
import multiprocessing
import pickle
import time
import typing as _t

from repro.cluster.machine import Cluster, ClusterSpec
from repro.errors import (
    CampaignExecutionError,
    CellExecutionError,
    CellTimeoutError,
    ConfigurationError,
)
from repro.npb.base import BenchmarkModel
from repro.runtime import faults

__all__ = [
    "BACKENDS",
    "DEFAULT_RETRIES",
    "DEFAULT_RETRY_BACKOFF_S",
    "CellAttempt",
    "CampaignExecution",
    "check_backend",
    "execute_campaign",
    "execute_cells",
    "shutdown_executor",
]

Cell = tuple[int, float]

#: Campaign execution backends: ``"des"`` simulates every cell in the
#: discrete-event simulator, ``"analytic"`` evaluates the closed forms
#: (:mod:`repro.analytic`) without spawning any pool, and ``"auto"``
#: routes each cell analytically when the closed form models it and
#: falls back to the DES otherwise.
BACKENDS = ("des", "analytic", "auto")


def check_backend(backend: str) -> str:
    """Validate a backend name, returning it normalised.

    Raises :class:`~repro.errors.ConfigurationError` naming the valid
    choices for anything outside :data:`BACKENDS`.
    """
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}: valid choices are "
            + ", ".join(repr(b) for b in BACKENDS)
        )
    return name

#: Extra attempts a cell gets after its first failure.
DEFAULT_RETRIES = 2

#: Base of the exponential backoff between retry rounds, in seconds.
DEFAULT_RETRY_BACKOFF_S = 0.05

#: After this many consecutive pool breaks that harvested zero new
#: results, the remaining cells run serially instead.
_MAX_FRUITLESS_CRASHES = 2

_EXECUTOR: concurrent.futures.ProcessPoolExecutor | None = None
_EXECUTOR_JOBS = 0


@dataclasses.dataclass(frozen=True)
class CellAttempt:
    """One try at one grid cell, as observed by the runner.

    Attributes
    ----------
    cell:
        The ``(n, frequency_hz)`` grid cell.
    attempt:
        0-based attempt number (0 = first try).
    outcome:
        ``"ok"``, ``"exception"``, ``"timeout"`` or ``"crash"`` from
        the local runner; fabric execution adds ``"lost"`` (the
        worker holding the cell's lease died or let it expire — not
        billed to the cell's retry budget, like a pool crash) and
        ``"corrupt"`` (the result payload failed its checksum and was
        quarantined — billed, like an exception).
    error:
        Error text for failed attempts (empty for ``"ok"``).
    wall_s:
        Wall-clock the attempt took where known (0.0 for crashes and
        cancelled waits).
    """

    cell: Cell
    attempt: int
    outcome: str
    error: str = ""
    wall_s: float = 0.0

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready form (what failure reports embed)."""
        return {
            "cell": [self.cell[0], self.cell[1]],
            "attempt": self.attempt,
            "outcome": self.outcome,
            "error": self.error,
            "wall_s": self.wall_s,
        }


@dataclasses.dataclass
class CampaignExecution:
    """Everything one ``execute_campaign`` call produced and endured.

    Attributes
    ----------
    times, energies:
        Per-cell results in grid order; failed cells (only possible
        with ``allow_partial``) are absent.
    cell_wall_s:
        Simulation wall time of each *successful* cell, grid order.
    jobs:
        Worker processes actually used (the live pool size capped by
        the cell count — may exceed the requested jobs if an earlier
        campaign grew the pool).
    attempts:
        Complete :class:`CellAttempt` log across all retry rounds.
    failures:
        One :class:`~repro.errors.CellExecutionError` per permanently
        failed cell (empty unless ``allow_partial`` let them through).
    crash_recoveries:
        Pool-break events survived (completed results were kept and
        only unfinished cells re-submitted).
    analytic_cells:
        Cells evaluated by the closed-form analytic backend instead of
        the simulator (nonzero only for ``backend="analytic"`` or
        ``"auto"``).
    cell_engine_stats:
        Per successful cell (grid order), the simulation engine's
        throughput counters — ``events_processed``,
        ``processes_spawned``, ``peak_queue_len`` (see
        :meth:`Engine.stats <repro.sim.engine.Engine.stats>`).
    fabric_cells:
        Cells whose accepted result came from the worker fleet
        (:mod:`repro.fabric`) rather than the local pool.
    fabric_workers:
        Distinct fleet workers that contributed accepted results.
    fabric_reassignments:
        Cells requeued after a lost worker or expired lease — the
        fleet's analogue of ``crash_recoveries``.
    """

    times: dict[Cell, float]
    energies: dict[Cell, float]
    cell_wall_s: tuple[float, ...]
    jobs: int
    attempts: tuple[CellAttempt, ...] = ()
    failures: tuple[CellExecutionError, ...] = ()
    crash_recoveries: int = 0
    cell_engine_stats: tuple[dict[str, int], ...] = ()
    analytic_cells: int = 0
    fabric_cells: int = 0
    fabric_workers: int = 0
    fabric_reassignments: int = 0

    @property
    def events_processed(self) -> int:
        """Engine heap entries executed, summed over successful cells."""
        return sum(s["events_processed"] for s in self.cell_engine_stats)

    @property
    def processes_spawned(self) -> int:
        """Simulated processes started, summed over successful cells."""
        return sum(s["processes_spawned"] for s in self.cell_engine_stats)

    @property
    def peak_queue_len(self) -> int:
        """Largest event-heap high-water mark over all cells."""
        return max(
            (s["peak_queue_len"] for s in self.cell_engine_stats), default=0
        )

    @property
    def events_per_second(self) -> float:
        """Engine throughput: events processed per simulation-wall second.

        Wall time is the *sum* of per-cell simulation times (the work
        done), not elapsed campaign time, so the figure is comparable
        between serial and parallel runs.
        """
        wall = sum(self.cell_wall_s)
        return self.events_processed / wall if wall > 0 else 0.0

    @property
    def retry_count(self) -> int:
        """Attempts beyond each cell's first (the re-submissions)."""
        return len(self.attempts) - len(
            {a.cell for a in self.attempts}
        )

    @property
    def timeout_count(self) -> int:
        """Attempts that ended in a per-cell timeout."""
        return sum(1 for a in self.attempts if a.outcome == "timeout")

    def cell_attempts(self) -> dict[Cell, int]:
        """Attempts consumed per cell (1 everywhere on a clean run)."""
        counts: dict[Cell, int] = {}
        for a in self.attempts:
            counts[a.cell] = counts.get(a.cell, 0) + 1
        return counts

    def failure_report(self) -> list[dict[str, _t.Any]]:
        """Structured per-cell failure report (JSON-ready)."""
        return [
            {
                "cell": [err.cell[0], err.cell[1]],
                "error": str(err),
                "timeout": isinstance(err, CellTimeoutError),
                "attempts": [
                    a.as_dict()
                    for a in err.attempts
                    if isinstance(a, CellAttempt)
                ],
            }
            for err in self.failures
        ]


def _simulate_cell(
    benchmark: BenchmarkModel,
    n: int,
    f: float,
    spec: ClusterSpec,
    attempt: int = 0,
    plan: faults.FaultPlan | None = None,
) -> tuple[float, float, float, dict[str, int]]:
    """Run one grid cell.

    Returns ``(elapsed_s, energy_j, sim wall s, engine stats)`` where
    the stats dict is :meth:`Engine.stats <repro.sim.engine.Engine.stats>`
    for the cell's (fresh) engine — events processed, processes
    spawned, peak queue length.  ``plan`` ships the caller's fault plan
    into the worker explicitly, so injection works even in pool
    processes forked before the plan was installed.
    """
    start = time.perf_counter()
    faults.maybe_inject(n, f, attempt, plan)
    cluster = Cluster(spec.with_nodes(n), frequency_hz=f)
    result = benchmark.run(cluster)
    return (
        result.elapsed_s,
        result.energy_j,
        time.perf_counter() - start,
        cluster.engine.stats(),
    )


def _get_executor(jobs: int) -> concurrent.futures.ProcessPoolExecutor:
    global _EXECUTOR, _EXECUTOR_JOBS
    if _EXECUTOR is None or _EXECUTOR_JOBS < jobs:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        _EXECUTOR = concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        )
        _EXECUTOR_JOBS = jobs
    return _EXECUTOR


def shutdown_executor(wait: bool = False) -> None:
    """Tear down the worker pool (idempotent; pool restarts on demand).

    Mid-run resets use ``wait=False`` so a broken pool never blocks
    recovery; the interpreter-exit hook passes ``wait=True`` so forked
    children are reaped rather than orphaned past exit.
    """
    global _EXECUTOR, _EXECUTOR_JOBS
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=wait, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_JOBS = 0


def _shutdown_at_exit() -> None:
    shutdown_executor(wait=True)


atexit.register(_shutdown_at_exit)


def _hard_reset_executor() -> None:
    """Terminate every worker outright and discard the pool.

    The only way to clear a *hung* worker: ``shutdown`` (with or
    without ``wait``) never interrupts a task that is already
    running.  Terminated children are then reaped by ``wait=True``.
    """
    global _EXECUTOR, _EXECUTOR_JOBS
    executor = _EXECUTOR
    _EXECUTOR = None
    _EXECUTOR_JOBS = 0
    if executor is None:
        return
    for process in list(getattr(executor, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - racing process death
            pass
    try:
        executor.shutdown(wait=True, cancel_futures=True)
    except Exception:  # pragma: no cover - pool already broken
        pass


def _own_fault_attempts(log: list[CellAttempt], cell: Cell) -> int:
    """Failed attempts attributable to the cell itself.

    Crash outcomes are excluded: when a pool breaks, every unfinished
    future reports :class:`BrokenProcessPool` and the runner cannot
    tell the guilty cell from innocent bystanders, so crashes are
    bounded by the round limit instead of the per-cell budget.
    """
    return sum(
        1
        for a in log
        if a.cell == cell and a.outcome in ("exception", "timeout")
    )


def _run_serial_attempts(
    benchmark: BenchmarkModel,
    cells: _t.Sequence[Cell],
    spec: ClusterSpec,
    *,
    retries: int,
    backoff_s: float,
    attempt_index: dict[Cell, int],
    log: list[CellAttempt],
    results: dict[Cell, tuple[float, float, float, dict]],
    plan: faults.FaultPlan | None = None,
) -> None:
    """Serial execution with the same retry accounting as parallel.

    Timeouts are not enforceable in-process (a hang blocks the caller)
    — that protection requires ``jobs > 1``.  Injected crashes degrade
    to exceptions in the main process, so they retry like any error.
    """
    for cell in cells:
        if cell in results:
            continue
        n, f = cell
        while True:
            attempt = attempt_index[cell]
            attempt_index[cell] = attempt + 1
            start = time.perf_counter()
            try:
                results[cell] = _simulate_cell(
                    benchmark, n, f, spec, attempt, plan
                )
            except Exception as exc:
                log.append(
                    CellAttempt(
                        cell,
                        attempt,
                        "exception",
                        error=repr(exc),
                        wall_s=time.perf_counter() - start,
                    )
                )
                if _own_fault_attempts(log, cell) > retries:
                    break
                if backoff_s > 0:
                    time.sleep(backoff_s * 2**attempt)
            else:
                log.append(
                    CellAttempt(
                        cell, attempt, "ok", wall_s=results[cell][2]
                    )
                )
                break


def _run_analytic_cells(
    benchmark: BenchmarkModel,
    cells: _t.Sequence[Cell],
    spec: ClusterSpec,
    *,
    attempt_index: dict[Cell, int],
    log: list[CellAttempt],
    results: dict[Cell, tuple[float, float, float, dict]],
) -> None:
    """Evaluate cells through the closed-form analytic backend.

    One vectorized numpy pass over the whole cell list — no process
    pool, no retries (the evaluation is pure arithmetic; any failure is
    a configuration error and raises immediately).  Per-cell wall time
    is the pass's elapsed time split evenly, and engine stats are zero:
    no simulation events happen on this path.
    """
    from repro.analytic import AnalyticCampaignModel

    start = time.perf_counter()
    evaluation = AnalyticCampaignModel(benchmark, spec).evaluate_cells(
        cells
    )
    wall_share = (time.perf_counter() - start) / max(len(cells), 1)
    times = evaluation.times_by_cell()
    energies = evaluation.energies_by_cell()
    for cell in cells:
        attempt = attempt_index[cell]
        attempt_index[cell] = attempt + 1
        results[cell] = (
            times[cell],
            energies[cell],
            wall_share,
            {
                "events_processed": 0,
                "processes_spawned": 0,
                "peak_queue_len": 0,
            },
        )
        log.append(CellAttempt(cell, attempt, "ok", wall_s=wall_share))


def _harvest_round(
    futures: dict[concurrent.futures.Future, Cell],
    *,
    cell_timeout: float | None,
    attempt_of: dict[concurrent.futures.Future, int],
    log: list[CellAttempt],
    results: dict[Cell, tuple[float, float, float, dict]],
) -> tuple[bool, bool]:
    """Collect one round of futures; returns (pool_broken, hung).

    Waits for completions one ``FIRST_COMPLETED`` step at a time.  If
    *no* future completes within ``cell_timeout`` the still-running
    cells are recorded as timed out (queued-but-unstarted futures are
    cancelled without consuming an attempt) and the round ends with
    ``hung=True`` so the caller can hard-reset the pool.
    """
    outstanding = dict(futures)
    pool_broken = False
    while outstanding:
        done, _ = concurrent.futures.wait(
            outstanding,
            timeout=cell_timeout,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        if not done:
            for future, cell in outstanding.items():
                if future.cancel():
                    continue  # never started: retry costs no attempt
                log.append(
                    CellAttempt(
                        cell,
                        attempt_of[future],
                        "timeout",
                        error=(
                            f"no completion within {cell_timeout}s; "
                            "worker terminated"
                        ),
                    )
                )
            return pool_broken, True
        for future in done:
            cell = outstanding.pop(future)
            try:
                results[cell] = future.result()
            except concurrent.futures.process.BrokenProcessPool:
                pool_broken = True
                log.append(
                    CellAttempt(
                        cell,
                        attempt_of[future],
                        "crash",
                        error="worker process died (pool broken)",
                    )
                )
            except concurrent.futures.CancelledError:
                pass  # re-queued by the caller, no attempt consumed
            except Exception as exc:
                log.append(
                    CellAttempt(
                        cell,
                        attempt_of[future],
                        "exception",
                        error=repr(exc),
                    )
                )
            else:
                log.append(
                    CellAttempt(
                        cell,
                        attempt_of[future],
                        "ok",
                        wall_s=results[cell][2],
                    )
                )
    return pool_broken, False


def _run_parallel_resilient(
    benchmark: BenchmarkModel,
    cells: _t.Sequence[Cell],
    spec: ClusterSpec,
    jobs: int,
    *,
    retries: int,
    cell_timeout: float | None,
    backoff_s: float,
    attempt_index: dict[Cell, int],
    log: list[CellAttempt],
    results: dict[Cell, tuple[float, float, float, dict]],
) -> tuple[int, int]:
    """Retry loop over the process pool; returns (jobs_used, crashes)."""
    plan = faults.active_fault_plan()
    crash_recoveries = 0
    fruitless_crashes = 0
    jobs_used = jobs
    max_rounds = retries + 1 + _MAX_FRUITLESS_CRASHES
    for round_no in range(max_rounds):
        pending = [
            cell
            for cell in cells
            if cell not in results
            and _own_fault_attempts(log, cell) <= retries
        ]
        if not pending:
            break
        if round_no > 0 and backoff_s > 0:
            time.sleep(backoff_s * 2 ** (round_no - 1))
        if fruitless_crashes >= _MAX_FRUITLESS_CRASHES:
            _run_serial_attempts(
                benchmark,
                pending,
                spec,
                retries=retries,
                backoff_s=backoff_s,
                attempt_index=attempt_index,
                log=log,
                results=results,
                plan=plan,
            )
            break
        executor = _get_executor(jobs)
        jobs_used = max(jobs_used, min(_EXECUTOR_JOBS, len(cells)))
        futures: dict[concurrent.futures.Future, Cell] = {}
        attempt_of: dict[concurrent.futures.Future, int] = {}
        for cell in pending:
            n, f = cell
            attempt = attempt_index[cell]
            attempt_index[cell] = attempt + 1
            future = executor.submit(
                _simulate_cell, benchmark, n, f, spec, attempt, plan
            )
            futures[future] = cell
            attempt_of[future] = attempt
        harvested_before = len(results)
        pool_broken, hung = _harvest_round(
            futures,
            cell_timeout=cell_timeout,
            attempt_of=attempt_of,
            log=log,
            results=results,
        )
        # Cancelled/never-started cells did not consume their attempt.
        for future, cell in futures.items():
            if future.cancelled():
                attempt_index[cell] -= 1
        if hung:
            _hard_reset_executor()
        elif pool_broken:
            shutdown_executor(wait=False)
        if pool_broken:
            crash_recoveries += 1
            if len(results) == harvested_before:
                fruitless_crashes += 1
            else:
                fruitless_crashes = 0
    return jobs_used, crash_recoveries


def execute_campaign(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int],
    frequencies: _t.Sequence[float],
    spec: ClusterSpec | None = None,
    jobs: int = 1,
    *,
    retries: int = DEFAULT_RETRIES,
    cell_timeout: float | None = None,
    backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    allow_partial: bool = False,
    backend: str | None = None,
    fabric: bool | None = None,
    platform: str | None = None,
) -> CampaignExecution:
    """Simulate every grid cell with retries, timeouts and recovery.

    Returns a :class:`CampaignExecution`.  The result dicts are always
    populated in grid order (outer loop counts, inner loop
    frequencies) regardless of worker completion order or how many
    retry rounds a cell needed, so parallel, serial and fault-recovered
    runs are all bit-identical.

    ``retries`` is the extra attempts a cell gets after a failure of
    its own (exception or timeout); pool-wide crashes don't bill
    innocent cells but are bounded by a round limit.  ``cell_timeout``
    (seconds; ``None`` disables) bounds the *stall* time — it fires
    when no cell at all completes for that long — and requires
    ``jobs > 1`` since an in-process hang cannot be interrupted.  On
    exhausted budgets the campaign raises
    :class:`~repro.errors.CampaignExecutionError` unless
    ``allow_partial``, in which case surviving cells are returned
    alongside per-cell failure records.

    ``backend`` picks the execution path per :data:`BACKENDS`
    (``None`` resolves through :func:`repro.runtime.resolve_backend`);
    ``fabric`` offers the cells to the distributed worker fleet first
    (``None`` resolves through :func:`repro.runtime.resolve_fabric`).
    With ``spec=None`` the platform resolves by name instead —
    ``platform`` → :func:`repro.runtime.resolve_platform` →
    ``REPRO_PLATFORM`` → the paper cluster.
    """
    cells = [(int(n), float(f)) for n in counts for f in frequencies]
    return execute_cells(
        benchmark,
        cells,
        spec,
        jobs,
        retries=retries,
        cell_timeout=cell_timeout,
        backoff_s=backoff_s,
        allow_partial=allow_partial,
        backend=backend,
        fabric=fabric,
        platform=platform,
    )


def execute_cells(
    benchmark: BenchmarkModel,
    cells: _t.Sequence[Cell],
    spec: ClusterSpec | None = None,
    jobs: int = 1,
    *,
    retries: int = DEFAULT_RETRIES,
    cell_timeout: float | None = None,
    backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    allow_partial: bool = False,
    backend: str | None = None,
    fabric: bool | None = None,
    platform: str | None = None,
) -> CampaignExecution:
    """Simulate an explicit cell list (not necessarily a full grid).

    The batch entry point behind :func:`execute_campaign` and the
    experiment planner (:mod:`repro.pipeline`): callers that already
    know exactly which ``(n, frequency_hz)`` cells they are missing —
    e.g. the union of several experiments' grids minus the cached
    cells — submit just those.  Results come back in the order the
    cells were given, with the same retry/timeout/crash-recovery
    behaviour and the same bit-identical determinism as a full
    campaign.

    ``backend="analytic"`` evaluates every cell through the vectorized
    closed forms (raising :class:`~repro.errors.ModelError` if any
    cell falls outside the analytic model); ``"auto"`` evaluates the
    modelable cells analytically and simulates the rest; ``"des"``
    simulates everything.  ``None`` resolves the process default via
    :func:`repro.runtime.resolve_backend`.

    ``fabric`` (``None`` resolves through
    :func:`repro.runtime.resolve_fabric`) offers the cells to the
    distributed worker fleet first — the analytic and DES slices are
    submitted as separate backend-tagged batches *before* either is
    waited on, so the coordinator pipelines them across the fleet
    (adaptively-sized leases: huge for analytic cells, small for
    DES).  The fleet is an *accelerator*,
    never a point of failure: with no installed coordinator, no live
    workers, or an unpicklable payload the cells run locally, and any
    cells the fleet strands (every worker died mid-batch, or a cell
    was lost too many times) are finished on the local pool — results
    stay bit-identical either way, because every path runs the same
    deterministic per-cell simulation.
    """
    from repro import runtime as _runtime

    if spec is None:
        from repro.platforms import get_platform

        spec = get_platform(_runtime.resolve_platform(platform))
    elif platform is not None:
        raise ConfigurationError(
            f"pass either spec= or platform={platform!r}, not both"
        )
    backend = _runtime.resolve_backend(backend)
    fabric = _runtime.resolve_fabric(fabric)
    cells = [(int(n), float(f)) for n, f in cells]
    if backend == "analytic":
        analytic_cells: list[Cell] = list(cells)
        des_cells: list[Cell] = []
    elif backend == "auto":
        from repro.analytic import partition_cells

        analytic_cells, des_cells, _ = partition_cells(
            benchmark, cells, spec
        )
    else:
        analytic_cells, des_cells = [], list(cells)

    jobs = max(1, min(int(jobs), len(des_cells))) if des_cells else 1
    retries = max(0, int(retries))
    if jobs > 1 or fabric:
        try:
            pickle.dumps((benchmark, spec))
        except Exception:
            jobs = 1  # e.g. locally-defined benchmark classes
            fabric = False  # the fleet ships the same pickle

    attempt_index: dict[Cell, int] = {cell: 0 for cell in cells}
    log: list[CellAttempt] = []
    results: dict[Cell, tuple[float, float, float, dict]] = {}
    crash_recoveries = 0
    fabric_cells = fabric_workers = fabric_reassignments = 0
    analytic_local = list(analytic_cells)
    if (analytic_cells or des_cells) and fabric:
        # Local import: repro.fabric itself imports this module.
        from repro.fabric.dispatch import (
            collect_fabric_batch,
            submit_fabric_cells,
        )

        label = f"{getattr(benchmark, 'name', benchmark)!s}"
        # Pipelined dispatch: both backends' batches are queued on
        # the coordinator before either is waited on, so the fleet
        # streams the cheap analytic wave while DES cells simulate.
        pending = [
            (
                kind,
                submit_fabric_cells(
                    benchmark,
                    kind_cells,
                    spec,
                    retries=retries,
                    backoff_s=backoff_s,
                    label=label,
                    backend=kind,
                ),
            )
            for kind, kind_cells in (
                ("analytic", analytic_cells),
                ("des", des_cells),
            )
            if kind_cells
        ]
        fleet_worker_ids: set[str] = set()
        for kind, batch in pending:
            if batch is None:
                continue  # no usable fleet — this slice runs locally
            outcome = collect_fabric_batch(batch)
            results.update(outcome.results)
            log.extend(outcome.attempts)
            fabric_cells += len(outcome.results)
            fleet_worker_ids |= set(outcome.worker_ids)
            fabric_reassignments += outcome.reassignments
            # Local attempt numbering continues after the fleet's.
            for a in outcome.attempts:
                attempt_index[a.cell] = max(
                    attempt_index.get(a.cell, 0), a.attempt + 1
                )
            # Stranded cells (fleet died / loss bound hit) finish
            # locally; fleet-failed cells exhausted their own retry
            # budget and are accounted as failures below.
            if kind == "analytic":
                analytic_local = list(outcome.stranded)
            else:
                des_cells = list(outcome.stranded)
        fabric_workers = len(fleet_worker_ids)
    if analytic_local:
        _run_analytic_cells(
            benchmark,
            analytic_local,
            spec,
            attempt_index=attempt_index,
            log=log,
            results=results,
        )
    if des_cells and jobs > 1:
        jobs, crash_recoveries = _run_parallel_resilient(
            benchmark,
            des_cells,
            spec,
            jobs,
            retries=retries,
            cell_timeout=cell_timeout,
            backoff_s=backoff_s,
            attempt_index=attempt_index,
            log=log,
            results=results,
        )
    elif des_cells:
        _run_serial_attempts(
            benchmark,
            des_cells,
            spec,
            retries=retries,
            backoff_s=backoff_s,
            attempt_index=attempt_index,
            log=log,
            results=results,
        )

    failures = []
    for cell in cells:
        if cell in results:
            continue
        history = tuple(a for a in log if a.cell == cell)
        timed_out = any(a.outcome == "timeout" for a in history)
        error_cls = CellTimeoutError if timed_out else CellExecutionError
        failures.append(error_cls(cell, history))
    if failures and not allow_partial:
        raise CampaignExecutionError(failures, completed=len(results))

    ok_cells = [cell for cell in cells if cell in results]
    return CampaignExecution(
        times={cell: results[cell][0] for cell in ok_cells},
        energies={cell: results[cell][1] for cell in ok_cells},
        cell_wall_s=tuple(results[cell][2] for cell in ok_cells),
        jobs=jobs,
        attempts=tuple(log),
        failures=tuple(failures),
        crash_recoveries=crash_recoveries,
        cell_engine_stats=tuple(results[cell][3] for cell in ok_cells),
        analytic_cells=len(set(analytic_cells)),
        fabric_cells=fabric_cells,
        fabric_workers=fabric_workers,
        fabric_reassignments=fabric_reassignments,
    )
