"""Parallel campaign cell execution.

Every (processor count, frequency) cell of a measurement campaign is an
independent deterministic simulation — embarrassingly parallel.  This
module fans cells out across a persistent :class:`~concurrent.futures.
ProcessPoolExecutor` and merges the results back in *grid order*, so a
parallel run is bit-identical to a serial one: same floats, same dict
insertion order.

The pool is created lazily, reused across campaigns (startup cost is
paid once per process, not per campaign) and torn down at interpreter
exit.  Anything that cannot be parallelized safely — unpicklable
benchmark objects, a broken pool — falls back to the serial path
rather than failing the measurement.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import multiprocessing
import pickle
import time
import typing as _t

from repro.cluster.machine import Cluster, ClusterSpec
from repro.npb.base import BenchmarkModel

__all__ = ["execute_campaign", "shutdown_executor"]

Cell = tuple[int, float]

_EXECUTOR: concurrent.futures.ProcessPoolExecutor | None = None
_EXECUTOR_JOBS = 0


def _simulate_cell(
    benchmark: BenchmarkModel, n: int, f: float, spec: ClusterSpec
) -> tuple[float, float, float]:
    """Run one grid cell; returns (elapsed_s, energy_j, sim wall s)."""
    start = time.perf_counter()
    cluster = Cluster(spec.with_nodes(n), frequency_hz=f)
    result = benchmark.run(cluster)
    return result.elapsed_s, result.energy_j, time.perf_counter() - start


def _get_executor(jobs: int) -> concurrent.futures.ProcessPoolExecutor:
    global _EXECUTOR, _EXECUTOR_JOBS
    if _EXECUTOR is None or _EXECUTOR_JOBS < jobs:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        _EXECUTOR = concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        )
        _EXECUTOR_JOBS = jobs
    return _EXECUTOR


def shutdown_executor() -> None:
    """Tear down the worker pool (idempotent; pool restarts on demand)."""
    global _EXECUTOR, _EXECUTOR_JOBS
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_JOBS = 0


atexit.register(shutdown_executor)


def _run_serial(
    benchmark: BenchmarkModel,
    cells: _t.Sequence[Cell],
    spec: ClusterSpec,
) -> dict[Cell, tuple[float, float, float]]:
    return {
        (n, f): _simulate_cell(benchmark, n, f, spec) for n, f in cells
    }


def _run_parallel(
    benchmark: BenchmarkModel,
    cells: _t.Sequence[Cell],
    spec: ClusterSpec,
    jobs: int,
) -> dict[Cell, tuple[float, float, float]]:
    executor = _get_executor(jobs)
    futures = {
        (n, f): executor.submit(_simulate_cell, benchmark, n, f, spec)
        for n, f in cells
    }
    return {cell: future.result() for cell, future in futures.items()}


def execute_campaign(
    benchmark: BenchmarkModel,
    counts: _t.Sequence[int],
    frequencies: _t.Sequence[float],
    spec: ClusterSpec,
    jobs: int = 1,
) -> tuple[
    dict[Cell, float], dict[Cell, float], tuple[float, ...], int
]:
    """Simulate every grid cell, serially or across worker processes.

    Returns ``(times, energies, per-cell wall times, jobs actually
    used)``.  The returned dicts are always populated in grid order
    (outer loop counts, inner loop frequencies) regardless of worker
    completion order, so parallel and serial runs are bit-identical.
    """
    cells = [(int(n), float(f)) for n in counts for f in frequencies]
    jobs = max(1, min(int(jobs), len(cells))) if cells else 1
    if jobs > 1:
        try:
            pickle.dumps((benchmark, spec))
        except Exception:
            jobs = 1  # e.g. locally-defined benchmark classes
    if jobs > 1:
        try:
            results = _run_parallel(benchmark, cells, spec, jobs)
        except concurrent.futures.process.BrokenProcessPool:
            shutdown_executor()
            jobs = 1
            results = _run_serial(benchmark, cells, spec)
    else:
        results = _run_serial(benchmark, cells, spec)

    times = {cell: results[cell][0] for cell in cells}
    energies = {cell: results[cell][1] for cell in cells}
    cell_wall = tuple(results[cell][2] for cell in cells)
    return times, energies, cell_wall, jobs
