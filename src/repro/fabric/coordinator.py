"""The fabric coordinator: leases, heartbeats, lost-worker recovery.

One :class:`FabricCoordinator` instance lives inside the service
process and owns the fleet state:

* **workers** register and are considered live while they heartbeat;
  a worker silent for ``worker_timeout_s`` is declared dead and every
  lease it held is expired.
* **batches** of content-addressed cells are submitted by the runner's
  fabric execution path (:mod:`repro.fabric.dispatch`); cells queue in
  input order and are handed out in **leases** with a TTL.  Heartbeats
  extend the TTL, so a lease stays valid exactly as long as its worker
  demonstrates liveness — the distributed analogue of the local
  runner's stall-based cell timeout.
* **lease sizing is adaptive**: the coordinator keeps an EWMA of the
  observed per-cell wall time *per backend* (``"analytic"`` cells are
  microseconds, ``"des"`` cells are tens of milliseconds and up) and
  sizes each lease so it should take about ``target_lease_s`` of work
  (default ~2× the heartbeat interval), scaled by the worker's
  registered process capacity.  Cheap analytic cells therefore ship
  in leases of hundreds of cells — amortizing payload pickling and
  HTTP round trips — while expensive DES cells get small leases so a
  lost worker strands little work.  ``max_lease_cells`` is a *cap*
  on that policy, not the policy itself; ``target_lease_s=0``
  disables adaptation (every lease is filled to the cap).
* **completions** stream back per cell, each carrying a checksum over
  the result values.  A checksum mismatch *quarantines* the
  completion (the cell is re-leased and the corrupt payload never
  enters the merge); a completion for an already-finished cell is a
  deduplicated straggler; a completion for an expired lease is
  accepted if (and only if) the cell is still pending — simulation is
  deterministic, so any verified result for a cell is *the* result.
* **recovery** preserves semantics across machine loss: expired
  leases requeue their unfinished cells with the attempt history
  intact and the per-cell exponential backoff carried over from the
  local runner's :class:`~repro.runtime.runner.CellAttempt` machinery.
  Lost-worker attempts (outcome ``"lost"``) do not bill the cell's
  own retry budget — like pool crashes in the local runner, the cell
  is an innocent bystander — but are bounded: past
  ``max_cell_losses`` the cell is *stranded* and handed back for
  local execution instead of ping-ponging between dying workers.

Every method is thread-safe (one lock, no blocking inside): the
service's event loop calls the protocol methods, job threads submit
batches and wait, and the reaper runs from both the service's
housekeeping task and the dispatcher's wait loop.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import pickle
import threading
import time
import typing as _t

from repro.runtime.runner import CellAttempt

__all__ = [
    "DEFAULT_BOOTSTRAP_LEASE_CELLS",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_MAX_LEASE_CELLS",
    "DEFAULT_TARGET_LEASE_FACTOR",
    "LEASE_EWMA_ALPHA",
    "FabricBatch",
    "FabricCoordinator",
    "Lease",
    "UnknownWorkerError",
    "WorkerInfo",
    "result_checksum",
]

Cell = tuple[int, float]

#: Interval at which workers are asked to heartbeat, in seconds.
DEFAULT_HEARTBEAT_S = 1.0

#: Lease time-to-live; heartbeats extend it by the same amount.
DEFAULT_LEASE_TTL_S = 5.0

#: Hard cap on cells per lease.  Adaptive sizing picks the actual
#: count (see :class:`FabricCoordinator`); the cap only bounds it.
DEFAULT_MAX_LEASE_CELLS = 256

#: Cells per capacity slot handed out before any wall-time
#: observation exists for a backend.
DEFAULT_BOOTSTRAP_LEASE_CELLS = 4

#: ``target_lease_s`` defaults to this multiple of the heartbeat
#: interval, so a lease's work roughly spans two liveness proofs.
DEFAULT_TARGET_LEASE_FACTOR = 2.0

#: Smoothing factor for the per-backend cell wall-time EWMA.
LEASE_EWMA_ALPHA = 0.25

#: Lost-worker attempts a cell absorbs before it is stranded back to
#: local execution.
DEFAULT_MAX_CELL_LOSSES = 3


class UnknownWorkerError(KeyError):
    """A lease/heartbeat named a worker the coordinator has never seen
    (or has garbage-collected) — the worker must re-register."""

    def __str__(self) -> str:
        return Exception.__str__(self)


def result_checksum(
    n: int, f: float, time_s: float, energy_j: float
) -> str:
    """Checksum of one cell result's exact float values.

    ``repr`` of a Python float is shortest-round-trip, so two results
    checksum equal iff they are bit-identical doubles — the integrity
    check behind corrupt-payload quarantine.
    """
    material = (
        f"{int(n)}|{float(f)!r}|{float(time_s)!r}|{float(energy_j)!r}"
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass
class WorkerInfo:
    """One registered fleet member, as observed by the coordinator."""

    id: str
    name: str
    registered_s: float
    last_seen_s: float
    state: str = "live"  # "live" | "dead"
    capacity: int = 1  # local simulation processes (lease multiplier)
    leases_issued: int = 0
    cells_completed: int = 0
    cells_failed: int = 0

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready form (the ``/metrics`` worker listing)."""
        return {
            "worker_id": self.id,
            "name": self.name,
            "state": self.state,
            "capacity": self.capacity,
            "leases_issued": self.leases_issued,
            "cells_completed": self.cells_completed,
            "cells_failed": self.cells_failed,
        }


@dataclasses.dataclass
class Lease:
    """One worker's claim on a set of cells, bounded by a deadline."""

    id: str
    worker_id: str
    batch_id: str
    cells: dict[Cell, int]  # cell -> attempt number
    issued_s: float
    deadline_s: float


class FabricBatch:
    """One runner-submitted unit of fleet work (a cell union).

    Tracks, per cell: the attempt counter, failures billed to the
    cell's own retry budget (exceptions and quarantined payloads),
    lost-worker counts, and the earliest time the cell may be leased
    again (exponential backoff).  ``done`` fires when every cell is
    completed, permanently failed, or stranded.
    """

    def __init__(
        self,
        batch_id: str,
        label: str,
        payload_b64: str,
        cells: _t.Sequence[Cell],
        *,
        retries: int,
        backoff_s: float,
        max_cell_losses: int = DEFAULT_MAX_CELL_LOSSES,
        backend: str = "des",
    ) -> None:
        self.id = batch_id
        self.label = label
        self.backend = str(backend) or "des"
        self.payload_b64 = payload_b64
        self.cells: tuple[Cell, ...] = tuple(cells)
        self.retries = max(0, int(retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.max_cell_losses = max(1, int(max_cell_losses))
        self.queue: list[Cell] = list(self.cells)
        self.not_before: dict[Cell, float] = {}
        self.attempt_next: dict[Cell, int] = {c: 0 for c in self.cells}
        self.own_failures: dict[Cell, int] = {c: 0 for c in self.cells}
        self.losses: dict[Cell, int] = {c: 0 for c in self.cells}
        self.results: dict[Cell, tuple[float, float, float, dict]] = {}
        self.attempts: list[CellAttempt] = []
        self.failed: set[Cell] = set()
        self.stranded: list[Cell] = []
        self.workers_used: set[str] = set()
        self.reassignments = 0
        self.done = threading.Event()

    def pending(self) -> list[Cell]:
        """Cells not yet completed, failed or stranded (grid order)."""
        settled = (
            set(self.results) | self.failed | set(self.stranded)
        )
        return [c for c in self.cells if c not in settled]

    def _check_done(self) -> None:
        if not self.pending():
            self.done.set()

    def settle_locally(self, cells: _t.Iterable[Cell]) -> None:
        """Mark cells as taken back for local execution (reclaim)."""
        for cell in cells:
            if cell not in self.results and cell not in self.failed:
                if cell not in self.stranded:
                    self.stranded.append(cell)
        self._check_done()


class FabricCoordinator:
    """Fleet state machine behind the ``/fabric/*`` endpoints."""

    def __init__(
        self,
        *,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        worker_timeout_s: float | None = None,
        max_lease_cells: int = DEFAULT_MAX_LEASE_CELLS,
        max_cell_losses: int = DEFAULT_MAX_CELL_LOSSES,
        target_lease_s: float | None = None,
    ) -> None:
        self.lease_ttl_s = max(0.1, float(lease_ttl_s))
        self.heartbeat_s = max(0.05, float(heartbeat_s))
        # A worker is dead after missing ~3 heartbeats (but never
        # sooner than a lease TTL, so lease expiry leads detection).
        self.worker_timeout_s = (
            float(worker_timeout_s)
            if worker_timeout_s is not None
            else max(3.0 * self.heartbeat_s, self.lease_ttl_s)
        )
        self.max_lease_cells = max(1, int(max_lease_cells))
        self.max_cell_losses = max(1, int(max_cell_losses))
        # Adaptive lease sizing: aim each lease at ~target_lease_s of
        # work using the per-backend wall-time EWMA.  0 disables the
        # policy (leases are filled to the cap, the pre-adaptive
        # behaviour).
        self.target_lease_s = (
            DEFAULT_TARGET_LEASE_FACTOR * self.heartbeat_s
            if target_lease_s is None
            else max(0.0, float(target_lease_s))
        )
        self._cell_wall_ewma: dict[str, float] = {}
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        self._leases: dict[str, Lease] = {}
        self._batches: dict[str, FabricBatch] = {}
        self._batch_order: list[str] = []
        self._worker_counter = 0
        self._lease_counter = 0
        self._batch_counter = 0
        self._draining = False
        # Aggregate counters (monotonic; survive batch completion).
        self.leases_issued = 0
        self.leases_expired = 0
        self.workers_lost = 0
        self.cells_completed = 0
        self.cells_failed = 0
        self.duplicate_completions = 0
        self.corrupt_payloads = 0
        self.late_completions = 0
        self.reassigned_cells = 0
        self.batches_submitted = 0
        self.batches_completed = 0
        self.leases_by_backend: dict[str, int] = {}

    # -- worker protocol ---------------------------------------------------

    def register(
        self, name: str = "", capacity: int | None = None
    ) -> dict[str, _t.Any]:
        """Register a worker; returns its id and the fleet timings.

        ``capacity`` is the worker's local simulation-process count
        (``--procs``); adaptive sizing hands a 4-proc worker leases
        four times as large so its pool stays fed.
        """
        now = time.monotonic()
        with self._lock:
            self._worker_counter += 1
            worker = WorkerInfo(
                id=f"w-{self._worker_counter:04d}",
                name=str(name) or f"worker-{self._worker_counter}",
                registered_s=now,
                last_seen_s=now,
                capacity=max(1, int(capacity or 1)),
            )
            self._workers[worker.id] = worker
        return {
            "worker_id": worker.id,
            "heartbeat_s": self.heartbeat_s,
            "lease_ttl_s": self.lease_ttl_s,
            "worker_timeout_s": self.worker_timeout_s,
            "max_lease_cells": self.max_lease_cells,
            "target_lease_s": self.target_lease_s,
        }

    def _touch(self, worker_id: str, now: float) -> WorkerInfo:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise UnknownWorkerError(
                f"unknown worker {worker_id!r}; re-register"
            )
        worker.last_seen_s = now
        if worker.state == "dead":
            # A presumed-dead worker speaking again is alive after
            # all — but its leases were already reassigned; it will
            # be handed fresh ones.
            worker.state = "live"
        return worker

    def _lease_limit_locked(
        self,
        batch: FabricBatch,
        worker: WorkerInfo,
        explicit: int | None,
    ) -> int:
        """How many cells of ``batch`` to lease to ``worker``.

        Adaptive policy: target ``target_lease_s`` of work per lease
        using the backend's observed per-cell wall-time EWMA, times
        the worker's process capacity, bounded by ``max_lease_cells``
        (and any explicit per-request ``max_cells``).  Before the
        first observation a small bootstrap lease seeds the EWMA.
        """
        cap = self.max_lease_cells
        if explicit is not None:
            cap = min(cap, explicit)
        if self.target_lease_s <= 0.0:
            return cap  # fixed-size mode: fill to the cap
        capacity = max(1, worker.capacity)
        ewma = self._cell_wall_ewma.get(batch.backend)
        if ewma is None:
            size = DEFAULT_BOOTSTRAP_LEASE_CELLS * capacity
        else:
            per_cell = max(ewma, 1e-7)
            size = int(self.target_lease_s / per_cell) * capacity
        return max(1, min(cap, size))

    def lease(
        self, worker_id: str, max_cells: int | None = None
    ) -> dict[str, _t.Any]:
        """Hand out an adaptively-sized lease of one batch's cells.

        Returns a lease document, ``{"idle": true}`` when nothing is
        leasable right now (backoff hint included), or
        ``{"drain": true}`` when the coordinator is shutting down.
        """
        now = time.monotonic()
        explicit = (
            max(1, int(max_cells)) if max_cells else None
        )
        with self._lock:
            self._reap_locked(now)
            worker = self._touch(worker_id, now)
            if self._draining:
                return {"drain": True}
            for batch_id in self._batch_order:
                batch = self._batches[batch_id]
                limit = self._lease_limit_locked(
                    batch, worker, explicit
                )
                ready: list[Cell] = []
                for cell in list(batch.queue):
                    if len(ready) >= limit:
                        break
                    if batch.not_before.get(cell, 0.0) > now:
                        continue
                    ready.append(cell)
                if not ready:
                    continue
                for cell in ready:
                    batch.queue.remove(cell)
                self._lease_counter += 1
                lease = Lease(
                    id=f"l-{self._lease_counter:06d}",
                    worker_id=worker_id,
                    batch_id=batch.id,
                    cells={
                        cell: batch.attempt_next[cell]
                        for cell in ready
                    },
                    issued_s=now,
                    deadline_s=now + self.lease_ttl_s,
                )
                for cell in ready:
                    batch.attempt_next[cell] += 1
                self._leases[lease.id] = lease
                worker.leases_issued += 1
                self.leases_issued += 1
                self.leases_by_backend[batch.backend] = (
                    self.leases_by_backend.get(batch.backend, 0) + 1
                )
                return {
                    "lease_id": lease.id,
                    "batch_id": batch.id,
                    "label": batch.label,
                    "backend": batch.backend,
                    "payload": batch.payload_b64,
                    "lease_ttl_s": self.lease_ttl_s,
                    "cells": [
                        {
                            "cell": [cell[0], cell[1]],
                            "attempt": lease.cells[cell],
                        }
                        for cell in ready
                    ],
                }
            # Nothing leasable: idle, with a backoff hint.
            hint = self.heartbeat_s
            for batch in self._batches.values():
                for cell in batch.queue:
                    wait = batch.not_before.get(cell, 0.0) - now
                    if 0.0 < wait < hint:
                        hint = wait
            return {"idle": True, "backoff_s": hint}

    def heartbeat(
        self, worker_id: str, lease_id: str | None = None
    ) -> dict[str, _t.Any]:
        """Record worker liveness; extend the named lease's TTL."""
        now = time.monotonic()
        with self._lock:
            self._touch(worker_id, now)
            extended = False
            if lease_id is not None:
                lease = self._leases.get(lease_id)
                if lease is not None and lease.worker_id == worker_id:
                    lease.deadline_s = now + self.lease_ttl_s
                    extended = True
            return {"ok": True, "lease_extended": extended}

    def complete(
        self,
        worker_id: str,
        lease_id: str,
        batch_id: str,
        results: _t.Sequence[dict[str, _t.Any]] = (),
        failures: _t.Sequence[dict[str, _t.Any]] = (),
    ) -> dict[str, _t.Any]:
        """Ingest streamed per-cell results (and failure reports).

        Tolerates every straggler shape: duplicates are dropped by
        cell digest, completions for expired leases are accepted only
        while the cell is still pending, and checksum mismatches are
        quarantined and the cell re-leased.  The response carries the
        per-call accounting so workers (and tests) can observe what
        happened to each payload.
        """
        now = time.monotonic()
        accepted = duplicates = corrupt = late = failed = 0
        with self._lock:
            unknown_worker = False
            try:
                worker = self._touch(worker_id, now)
            except UnknownWorkerError:
                worker = None
                unknown_worker = True
            batch = self._batches.get(batch_id)
            lease = self._leases.get(lease_id)
            lease_live = (
                lease is not None and lease.worker_id == worker_id
            )
            if not lease_live:
                late += len(results)
                self.late_completions += len(results)
            if batch is not None:
                for doc in results:
                    outcome = self._ingest_result(
                        batch, lease if lease_live else None,
                        worker, doc, now,
                    )
                    if outcome == "ok":
                        accepted += 1
                    elif outcome == "duplicate":
                        duplicates += 1
                    elif outcome == "corrupt":
                        corrupt += 1
                for doc in failures:
                    self._ingest_failure(
                        batch, lease if lease_live else None,
                        worker, doc, now,
                    )
                    failed += 1
                batch._check_done()
                if batch.done.is_set():
                    self._retire_batch(batch)
            if lease_live and not lease.cells:
                self._leases.pop(lease.id, None)
            return {
                "accepted": accepted,
                "duplicates": duplicates,
                "corrupt": corrupt,
                "late": late,
                "failed": failed,
                "reregister": unknown_worker,
            }

    # -- completion internals ----------------------------------------------

    @staticmethod
    def _parse_cell(doc: dict[str, _t.Any]) -> Cell:
        raw = doc.get("cell", ())
        return (int(raw[0]), float(raw[1]))

    def _ingest_result(
        self,
        batch: FabricBatch,
        lease: Lease | None,
        worker: WorkerInfo | None,
        doc: dict[str, _t.Any],
        now: float,
    ) -> str:
        cell = self._parse_cell(doc)
        attempt = int(doc.get("attempt", 0))
        if lease is not None:
            attempt = lease.cells.pop(cell, attempt)
        if cell in batch.results or cell not in batch.attempt_next:
            self.duplicate_completions += 1
            return "duplicate"
        time_s = float(doc["time_s"])
        energy_j = float(doc["energy_j"])
        checksum = str(doc.get("checksum", ""))
        if checksum != result_checksum(
            cell[0], cell[1], time_s, energy_j
        ):
            # Quarantine: the payload never enters the merge; the
            # cell is billed one failed attempt and re-leased after
            # backoff.
            self.corrupt_payloads += 1
            batch.attempts.append(
                CellAttempt(
                    cell,
                    attempt,
                    "corrupt",
                    error="result payload failed checksum; quarantined",
                )
            )
            self._requeue_locked(batch, cell, now, billed=True)
            return "corrupt"
        wall_s = float(doc.get("wall_s", 0.0))
        if wall_s > 0.0:
            # Feed the lease-sizing policy: smoothed per-cell wall
            # time, tracked per backend.
            prev = self._cell_wall_ewma.get(batch.backend)
            self._cell_wall_ewma[batch.backend] = (
                wall_s
                if prev is None
                else prev + LEASE_EWMA_ALPHA * (wall_s - prev)
            )
        stats = doc.get("engine_stats") or {
            "events_processed": 0,
            "processes_spawned": 0,
            "peak_queue_len": 0,
        }
        batch.results[cell] = (
            time_s,
            energy_j,
            float(doc.get("wall_s", 0.0)),
            {k: int(v) for k, v in stats.items()},
        )
        batch.attempts.append(
            CellAttempt(
                cell,
                attempt,
                "ok",
                wall_s=float(doc.get("wall_s", 0.0)),
            )
        )
        # The cell may still sit in another (expired) lease's cell
        # set or in the requeue queue; completion supersedes both.
        if cell in batch.queue:
            batch.queue.remove(cell)
        for other in self._leases.values():
            other.cells.pop(cell, None)
        if worker is not None:
            worker.cells_completed += 1
            batch.workers_used.add(worker.id)
        self.cells_completed += 1
        return "ok"

    def _ingest_failure(
        self,
        batch: FabricBatch,
        lease: Lease | None,
        worker: WorkerInfo | None,
        doc: dict[str, _t.Any],
        now: float,
    ) -> None:
        cell = self._parse_cell(doc)
        attempt = int(doc.get("attempt", 0))
        if lease is not None:
            attempt = lease.cells.pop(cell, attempt)
        if cell in batch.results or cell not in batch.attempt_next:
            return
        batch.attempts.append(
            CellAttempt(
                cell,
                attempt,
                "exception",
                error=str(doc.get("error", "worker reported failure")),
            )
        )
        if worker is not None:
            worker.cells_failed += 1
        self._requeue_locked(batch, cell, now, billed=True)

    def _requeue_locked(
        self,
        batch: FabricBatch,
        cell: Cell,
        now: float,
        *,
        billed: bool,
    ) -> None:
        """Return a cell to the queue (or settle it as failed/stranded).

        ``billed`` failures (exceptions, quarantined payloads) count
        against the cell's own retry budget; unbilled ones (lost
        workers, expired leases) count against the loss bound only.
        """
        if billed:
            batch.own_failures[cell] += 1
            if batch.own_failures[cell] > batch.retries:
                batch.failed.add(cell)
                self.cells_failed += 1
                batch._check_done()
                return
        else:
            batch.losses[cell] += 1
            self.reassigned_cells += 1
            batch.reassignments += 1
            if batch.losses[cell] >= batch.max_cell_losses:
                if cell not in batch.stranded:
                    batch.stranded.append(cell)
                batch._check_done()
                return
        prior = batch.own_failures[cell] + batch.losses[cell]
        if batch.backoff_s > 0 and prior > 0:
            batch.not_before[cell] = (
                now + batch.backoff_s * 2 ** (prior - 1)
            )
        if cell not in batch.queue:
            batch.queue.append(cell)

    # -- batches -----------------------------------------------------------

    def submit_batch(
        self,
        benchmark: _t.Any,
        cells: _t.Sequence[Cell],
        spec: _t.Any,
        *,
        label: str = "",
        retries: int = 2,
        backoff_s: float = 0.0,
        backend: str = "des",
    ) -> FabricBatch:
        """Queue a cell union for the fleet; returns the live batch."""
        payload = base64.b64encode(
            pickle.dumps((benchmark, spec))
        ).decode("ascii")
        with self._lock:
            self._batch_counter += 1
            batch = FabricBatch(
                f"b-{self._batch_counter:04d}",
                label,
                payload,
                cells,
                retries=retries,
                backoff_s=backoff_s,
                max_cell_losses=self.max_cell_losses,
                backend=backend,
            )
            self._batches[batch.id] = batch
            self._batch_order.append(batch.id)
            self.batches_submitted += 1
            batch._check_done()  # empty batch is done immediately
            if batch.done.is_set():
                self._retire_batch(batch)
        return batch

    def _retire_batch(self, batch: FabricBatch) -> None:
        """Drop a finished batch from the leasable set (lock held)."""
        if batch.id in self._batches:
            del self._batches[batch.id]
            self._batch_order.remove(batch.id)
            self.batches_completed += 1

    def reclaim_batch(self, batch: FabricBatch) -> list[Cell]:
        """Take every unfinished cell back for local execution.

        The fleet-shrank-to-zero fallback: pending cells (queued *and*
        leased — a dead worker's completion would be deduplicated
        anyway) are stranded and the batch completes.  Returns the
        reclaimed cells in grid order.
        """
        with self._lock:
            pending = batch.pending()
            batch.settle_locally(pending)
            for lease in list(self._leases.values()):
                if lease.batch_id == batch.id:
                    self._leases.pop(lease.id, None)
            if batch.done.is_set():
                self._retire_batch(batch)
            return pending

    # -- liveness ----------------------------------------------------------

    def reap(self, now: float | None = None) -> None:
        """Expire overdue leases, declare silent workers dead, requeue.

        Idempotent and cheap; called from the service housekeeping
        task and from the dispatcher's wait loop.
        """
        with self._lock:
            self._reap_locked(
                time.monotonic() if now is None else now
            )

    def _reap_locked(self, now: float) -> None:
        for worker in self._workers.values():
            if (
                worker.state == "live"
                and now - worker.last_seen_s > self.worker_timeout_s
            ):
                worker.state = "dead"
                self.workers_lost += 1
        for lease in list(self._leases.values()):
            worker = self._workers.get(lease.worker_id)
            worker_dead = worker is None or worker.state == "dead"
            if now <= lease.deadline_s and not worker_dead:
                continue
            self._leases.pop(lease.id, None)
            self.leases_expired += 1
            batch = self._batches.get(lease.batch_id)
            if batch is None:
                continue
            reason = (
                "worker lost (missed heartbeats)"
                if worker_dead
                else "lease expired (TTL passed without completion)"
            )
            for cell, attempt in lease.cells.items():
                if cell in batch.results or cell in batch.failed:
                    continue
                batch.attempts.append(
                    CellAttempt(cell, attempt, "lost", error=reason)
                )
                self._requeue_locked(batch, cell, now, billed=False)
            batch._check_done()
            if batch.done.is_set():
                self._retire_batch(batch)

    def live_workers(self) -> int:
        """Workers currently considered alive (reaps first)."""
        with self._lock:
            self._reap_locked(time.monotonic())
            return sum(
                1
                for w in self._workers.values()
                if w.state == "live"
            )

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> None:
        """Stop handing out work; workers see ``drain`` and exit."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        """Whether the coordinator has stopped issuing leases."""
        return self._draining

    def stats(self) -> dict[str, _t.Any]:
        """JSON-ready fleet counters for the ``/metrics`` endpoint."""
        with self._lock:
            live = [
                w for w in self._workers.values() if w.state == "live"
            ]
            return {
                "workers": {
                    "registered": len(self._workers),
                    "live": len(live),
                    "dead": len(self._workers) - len(live),
                    "lost": self.workers_lost,
                    "fleet": [
                        w.as_dict() for w in self._workers.values()
                    ],
                },
                "leases": {
                    "issued": self.leases_issued,
                    "active": len(self._leases),
                    "expired": self.leases_expired,
                    "ttl_s": self.lease_ttl_s,
                    "issued_by_backend": dict(self.leases_by_backend),
                },
                "lease_sizing": {
                    "target_lease_s": self.target_lease_s,
                    "max_lease_cells": self.max_lease_cells,
                    "ewma_cell_wall_s": dict(self._cell_wall_ewma),
                },
                "cells": {
                    "queued": sum(
                        len(b.queue) for b in self._batches.values()
                    ),
                    "leased": sum(
                        len(l.cells) for l in self._leases.values()
                    ),
                    "completed": self.cells_completed,
                    "failed": self.cells_failed,
                    "reassigned": self.reassigned_cells,
                    "duplicates": self.duplicate_completions,
                    "corrupt_payloads": self.corrupt_payloads,
                    "late_completions": self.late_completions,
                },
                "batches": {
                    "submitted": self.batches_submitted,
                    "completed": self.batches_completed,
                    "active": len(self._batches),
                },
                "draining": self._draining,
            }
