"""The fabric worker loop (``repro-worker``).

A worker registers with the coordinator, leases a slice of cells,
simulates them, and **streams completions back as each cell finishes**
— per-cell for serial DES work, per-completed-wave when fanning cells
across its local process pool — so the coordinator's straggler and
requeue logic always sees fresh progress, not a silent worker that
dumps everything at lease end.

Scale comes from two places:

* **A per-worker process pool** (``--procs`` / ``REPRO_WORKER_PROCS``,
  default ``os.cpu_count()``): DES cells of a lease are fanned across
  ``procs`` local processes with the same recovery semantics as the
  local runner — a crashed pool is rebuilt and its unfinished cells
  re-run (bounded rounds, then in-process serial fallback), cell
  exceptions are shipped as billed failure reports, and an optional
  stall timeout declares silent rounds hung.  The worker registers
  ``procs`` as its *capacity* so the coordinator sizes leases to keep
  the pool fed.
* **Backend-aware leases**: a lease tagged ``backend="analytic"`` is
  evaluated in one vectorized numpy pass in the worker parent —
  hundreds of closed-form cells per HTTP round trip.

The worker is also the injection point for the distributed failure
modes (:data:`repro.runtime.faults.WORKER_FAULT_KINDS`): when a fault
plan is armed (``REPRO_FAULTS`` in the worker's environment, or a plan
passed explicitly in tests) and a leased cell draws a distributed
fault, the worker misbehaves *on purpose* — dies mid-lease, stops
heartbeating, completes after its lease expired, corrupts a payload
after checksumming it, or sends the same completion twice.  Draws are
keyed on the cell, so a chaos fleet is reproducible no matter which
worker wins each lease.  The resolved plan is also passed *into* pool
children explicitly (plans are pid-scoped), so in-cell fault kinds
(``crash``/``hang``/``exception``/``corrupt``) fire inside worker
subprocesses exactly as they do in the local runner's pool.

``kill_mode`` selects how ``worker_kill`` dies: ``"exit"`` calls
``os._exit`` (subprocess fleets, the real failure), ``"stop"`` ends
the loop abruptly without completing (in-thread test workers, where
``os._exit`` would take the test process down with it).
"""

from __future__ import annotations

import argparse
import base64
import concurrent.futures
import multiprocessing
import os
import pickle
import threading
import time
import typing as _t

from repro.fabric.coordinator import result_checksum
from repro.runtime import faults
from repro.runtime.runner import _simulate_cell
from repro.service.client import ServiceClient, ServiceError

__all__ = ["FabricWorker", "main", "resolve_worker_procs"]

#: Pool-crash rebuild rounds before a lease falls back to in-process
#: serial simulation (mirrors the local runner's fruitless-crash cap).
_MAX_POOL_REBUILDS = 2


def resolve_worker_procs(explicit: int | None = None) -> int:
    """Local simulation processes per worker.

    Precedence: explicit ``--procs`` > ``REPRO_WORKER_PROCS`` >
    ``os.cpu_count()``.
    """
    if explicit is not None:
        return max(1, int(explicit))
    raw = os.environ.get("REPRO_WORKER_PROCS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class _WorkerKilled(Exception):
    """Internal unwind for ``worker_kill`` in ``kill_mode="stop"``."""


class FabricWorker:
    """One fleet member: lease → simulate → stream completions → repeat."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        name: str = "",
        kill_mode: str = "exit",
        max_idle_s: float | None = None,
        plan: faults.FaultPlan | None = None,
        timeout_s: float = 30.0,
        procs: int | None = None,
        stall_timeout_s: float | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = name or f"pid-{os.getpid()}"
        if kill_mode not in ("exit", "stop"):
            raise ValueError(
                f"kill_mode must be 'exit' or 'stop', not {kill_mode!r}"
            )
        self.kill_mode = kill_mode
        self.max_idle_s = max_idle_s
        self._plan = plan
        # procs defaults to 1 here (in-thread test fleets stay
        # serial); the CLI resolves env/cpu_count via
        # resolve_worker_procs before constructing.
        self.procs = max(1, int(procs or 1))
        self.stall_timeout_s = (
            float(stall_timeout_s)
            if stall_timeout_s and stall_timeout_s > 0
            else None
        )
        self.worker_id: str | None = None
        self.heartbeat_s = 1.0
        self.lease_ttl_s = 5.0
        self.worker_timeout_s = 5.0
        self.cells_done = 0
        self.leases_taken = 0
        self.pool_rebuilds = 0
        self._client = ServiceClient(
            host, port, timeout_s=timeout_s, retries=4
        )
        self._hb_client: ServiceClient | None = None
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._stop = threading.Event()
        self._hb_suppressed = threading.Event()
        self._hb_lease: str | None = None
        self._hb_thread: threading.Thread | None = None

    # -- plumbing -----------------------------------------------------------

    @property
    def reconnects(self) -> int:
        """Keep-alive connections re-established across both HTTP
        clients (lease loop + heartbeat thread)."""
        count = self._client.reconnects
        if self._hb_client is not None:
            count += self._hb_client.reconnects
        return count

    def _post(self, path: str, body: dict[str, _t.Any]) -> _t.Any:
        # Fabric POSTs are all safe to retry: completions deduplicate
        # by cell, a duplicate registration is a harmless extra worker
        # record, and an orphaned lease simply expires.
        return self._client.request("POST", path, body, retry=True)

    def _register(self) -> None:
        doc = self._post(
            "/fabric/register",
            {"name": self.name, "capacity": self.procs},
        )
        self.worker_id = doc["worker_id"]
        self.heartbeat_s = float(doc.get("heartbeat_s", 1.0))
        self.lease_ttl_s = float(doc.get("lease_ttl_s", 5.0))
        self.worker_timeout_s = float(
            doc.get("worker_timeout_s", self.lease_ttl_s)
        )

    def _stall_s(self) -> float:
        """Sleep long enough that the coordinator must act: past both
        the lease TTL and the worker death window, with margin."""
        return 1.5 * max(self.lease_ttl_s, self.worker_timeout_s)

    def _heartbeat_loop(self) -> None:
        # Own client: ServiceClient is not thread-safe.
        self._hb_client = ServiceClient(
            self.host, self.port, timeout_s=10.0, retries=2
        )
        with self._hb_client as client:
            while not self._stop.is_set():
                if self._stop.wait(self.heartbeat_s):
                    return
                if self._hb_suppressed.is_set():
                    continue
                if self.worker_id is None:
                    continue
                try:
                    client.request(
                        "POST",
                        "/fabric/heartbeat",
                        {
                            "worker_id": self.worker_id,
                            "lease_id": self._hb_lease,
                        },
                        retry=True,
                    )
                except (ServiceError, OSError):
                    continue  # the lease loop handles re-registration

    def stop(self) -> None:
        """Ask the worker loop to exit (in-thread fleets)."""
        self._stop.set()

    # -- the local pool -----------------------------------------------------

    def _get_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                context = multiprocessing.get_context()
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.procs, mp_context=context
            )
        return self._pool

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.pool_rebuilds += 1

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- the loop -----------------------------------------------------------

    def run(self) -> int:
        """Work until drained, stopped, or idle past ``max_idle_s``.

        Returns the number of cells completed (handy for tests and
        for the console script's log line).
        """
        self._register()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"fabric-hb-{self.name}",
            daemon=True,
        )
        self._hb_thread.start()
        idle_since: float | None = None
        outage_since: float | None = None
        try:
            while not self._stop.is_set():
                try:
                    doc = self._post(
                        "/fabric/lease", {"worker_id": self.worker_id}
                    )
                except ServiceError as error:
                    if error.error_type == "unknown_worker":
                        # Declared dead while we stalled; rejoin.
                        try:
                            self._register()
                        except OSError:
                            pass  # charged as an outage below
                        continue
                    raise
                except OSError:
                    # Coordinator unreachable past the client's retry
                    # budget.  Wait for it to come back — a restart
                    # must not shed the fleet — but charge the outage
                    # against max_idle_s so an orphaned worker still
                    # terminates instead of dying with a traceback.
                    now = time.monotonic()
                    if outage_since is None:
                        outage_since = now
                    if (
                        self.max_idle_s is not None
                        and now - outage_since >= self.max_idle_s
                    ):
                        return self.cells_done
                    self._stop.wait(self.heartbeat_s)
                    continue
                outage_since = None
                if doc.get("drain"):
                    return self.cells_done
                if doc.get("idle"):
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if (
                        self.max_idle_s is not None
                        and now - idle_since >= self.max_idle_s
                    ):
                        return self.cells_done
                    self._stop.wait(
                        min(
                            float(
                                doc.get("backoff_s", self.heartbeat_s)
                            ),
                            self.heartbeat_s,
                        )
                    )
                    continue
                idle_since = None
                self.leases_taken += 1
                self._process_lease(doc)
        except _WorkerKilled:
            pass
        finally:
            self._stop.set()
            self._shutdown_pool()
        return self.cells_done

    def _die(self) -> None:
        if self.kill_mode == "exit":
            os._exit(86)
        raise _WorkerKilled()

    # -- lease processing ---------------------------------------------------

    def _ship(
        self,
        lease_id: str,
        batch_id: str,
        results: list[dict[str, _t.Any]],
        failures: list[dict[str, _t.Any]],
    ) -> None:
        """Stream one completion wave back to the coordinator."""
        if not results and not failures:
            return
        response = self._post(
            "/fabric/complete",
            {
                "worker_id": self.worker_id,
                "lease_id": lease_id,
                "batch_id": batch_id,
                "results": results,
                "failures": failures,
            },
        )
        self.cells_done += len(results)
        if response.get("reregister"):
            self._register()

    @staticmethod
    def _completion(
        n: int,
        f: float,
        attempt: int,
        time_s: float,
        energy_j: float,
        wall_s: float,
        stats: dict[str, int],
    ) -> dict[str, _t.Any]:
        return {
            "cell": [n, f],
            "attempt": attempt,
            "time_s": time_s,
            "energy_j": energy_j,
            "wall_s": wall_s,
            "engine_stats": stats,
            "checksum": result_checksum(n, f, time_s, energy_j),
        }

    @staticmethod
    def _failure(
        n: int, f: float, attempt: int, error: BaseException | str
    ) -> dict[str, _t.Any]:
        message = (
            error
            if isinstance(error, str)
            else f"{type(error).__name__}: {error}"
        )
        return {"cell": [n, f], "attempt": attempt, "error": message}

    def _apply_worker_fault(
        self,
        kind: str | None,
        completion: dict[str, _t.Any],
        duplicates: list[dict[str, _t.Any]],
        deferred: list[dict[str, _t.Any]],
    ) -> bool:
        """Mutate a completion per its distributed fault draw.

        Returns True when the completion must be *deferred* (the
        lease_race straggler: delivered only after the lease expired)
        instead of streamed now.
        """
        if kind == "corrupt_result":
            # Checksummed first, corrupted second: exactly the
            # bit-flip-in-flight the quarantine exists for.
            completion["energy_j"] = completion["energy_j"] + 1.0
        elif kind == "dup_complete":
            duplicates.append(dict(completion))
        elif kind == "lease_race":
            deferred.append(completion)
            return True
        return False

    def _process_lease(self, doc: dict[str, _t.Any]) -> None:
        benchmark, spec = pickle.loads(
            base64.b64decode(doc["payload"])
        )
        lease_id = doc["lease_id"]
        batch_id = doc["batch_id"]
        backend = str(doc.get("backend", "des"))
        self._hb_lease = lease_id
        plan = (
            self._plan
            if self._plan is not None
            else faults.active_fault_plan()
        )
        items = [
            (
                int(item["cell"][0]),
                float(item["cell"][1]),
                int(item.get("attempt", 0)),
            )
            for item in doc.get("cells", ())
        ]
        try:
            # Distributed fault kinds are evaluated in the parent, in
            # lease order, before any simulation: worker_kill and
            # heartbeat_stall abandon the remainder of the lease (the
            # coordinator reassigns it), the payload faults mutate
            # individual completions below.
            kinds: dict[tuple[int, float], str | None] = {}
            for n, f, attempt in items:
                kind = (
                    plan.worker_fault_for(n, f, attempt)
                    if plan is not None
                    else None
                )
                if kind == "worker_kill":
                    self._die()
                if kind == "heartbeat_stall":
                    # Go silent mid-lease and abandon it: the
                    # coordinator must declare us dead and reassign
                    # every unfinished cell of this lease.
                    self._hb_suppressed.set()
                    self._stop.wait(self._stall_s())
                    return
                kinds[(n, f)] = kind
            duplicates: list[dict[str, _t.Any]] = []
            deferred: list[dict[str, _t.Any]] = []
            if backend == "analytic":
                self._run_analytic_lease(
                    benchmark, spec, items, lease_id, batch_id,
                    kinds, duplicates, deferred,
                )
            elif self.procs > 1 and len(items) > 1:
                self._run_pooled_lease(
                    benchmark, spec, items, plan, lease_id, batch_id,
                    kinds, duplicates, deferred,
                )
            else:
                self._run_serial_lease(
                    benchmark, spec, items, plan, lease_id, batch_id,
                    kinds, duplicates, deferred,
                )
            if duplicates:
                self._post(
                    "/fabric/complete",
                    {
                        "worker_id": self.worker_id,
                        "lease_id": lease_id,
                        "batch_id": batch_id,
                        "results": duplicates,
                        "failures": [],
                    },
                )
            if deferred:
                # Finish the work but deliver it only after the lease
                # has expired: the straggler double-assignment race.
                self._hb_suppressed.set()
                self._stop.wait(self._stall_s())
                self._ship(lease_id, batch_id, deferred, [])
        finally:
            self._hb_lease = None
            self._hb_suppressed.clear()

    def _run_serial_lease(
        self,
        benchmark: _t.Any,
        spec: _t.Any,
        items: list[tuple[int, float, int]],
        plan: faults.FaultPlan | None,
        lease_id: str,
        batch_id: str,
        kinds: dict[tuple[int, float], str | None],
        duplicates: list[dict[str, _t.Any]],
        deferred: list[dict[str, _t.Any]],
    ) -> None:
        """Simulate cells one at a time, streaming each completion."""
        for n, f, attempt in items:
            try:
                time_s, energy_j, wall_s, stats = _simulate_cell(
                    benchmark, n, f, spec, attempt, plan
                )
            except Exception as error:  # ship it; don't die
                self._ship(
                    lease_id, batch_id, [],
                    [self._failure(n, f, attempt, error)],
                )
                continue
            completion = self._completion(
                n, f, attempt, time_s, energy_j, wall_s, stats
            )
            if self._apply_worker_fault(
                kinds.get((n, f)), completion, duplicates, deferred
            ):
                continue
            self._ship(lease_id, batch_id, [completion], [])

    def _run_pooled_lease(
        self,
        benchmark: _t.Any,
        spec: _t.Any,
        items: list[tuple[int, float, int]],
        plan: faults.FaultPlan | None,
        lease_id: str,
        batch_id: str,
        kinds: dict[tuple[int, float], str | None],
        duplicates: list[dict[str, _t.Any]],
        deferred: list[dict[str, _t.Any]],
    ) -> None:
        """Fan one lease's cells across the local process pool.

        Streams each completed wave back immediately.  Recovery
        mirrors the local runner: a broken pool is rebuilt and its
        unfinished cells re-run with a bumped attempt number (so a
        seeded in-cell crash does not re-fire forever), bounded by
        ``_MAX_POOL_REBUILDS`` rounds before falling back to
        in-process serial simulation; a round that is silent past
        ``stall_timeout_s`` is declared hung — running cells are
        shipped as billed failures, unstarted ones re-run.
        """
        todo = list(items)
        rebuilds = 0
        while todo:
            if rebuilds > _MAX_POOL_REBUILDS:
                # The pool keeps dying: finish what is left serially
                # in the parent (same degradation as the local
                # runner's fruitless-crash fallback).
                self._run_serial_lease(
                    benchmark, spec, todo, plan, lease_id, batch_id,
                    kinds, duplicates, deferred,
                )
                return
            pool = self._get_pool()
            pending = {
                pool.submit(
                    _simulate_cell, benchmark, n, f, spec, attempt,
                    plan,
                ): (n, f, attempt)
                for n, f, attempt in todo
            }
            broken: list[tuple[int, float, int]] = []
            requeued: list[tuple[int, float, int]] = []
            hung = False
            while pending:
                done, _ = concurrent.futures.wait(
                    pending,
                    timeout=self.stall_timeout_s,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if not done:
                    # Stall: no completion within the window.  Bill
                    # the running cells (the coordinator retries
                    # them), requeue the unstarted ones for free.
                    hung = True
                    failures = []
                    for future, (n, f, attempt) in list(
                        pending.items()
                    ):
                        if future.cancel():
                            requeued.append((n, f, attempt))
                        else:
                            failures.append(
                                self._failure(
                                    n, f, attempt,
                                    "cell stalled past worker "
                                    "timeout; pool reset",
                                )
                            )
                    self._ship(lease_id, batch_id, [], failures)
                    pending.clear()
                    break
                wave: list[dict[str, _t.Any]] = []
                failures = []
                for future in done:
                    n, f, attempt = pending.pop(future)
                    try:
                        time_s, energy_j, wall_s, stats = (
                            future.result()
                        )
                    except concurrent.futures.process.BrokenProcessPool:
                        broken.append((n, f, attempt))
                        continue
                    except concurrent.futures.CancelledError:
                        requeued.append((n, f, attempt))
                        continue
                    except Exception as error:
                        failures.append(
                            self._failure(n, f, attempt, error)
                        )
                        continue
                    completion = self._completion(
                        n, f, attempt, time_s, energy_j, wall_s,
                        stats,
                    )
                    if not self._apply_worker_fault(
                        kinds.get((n, f)), completion, duplicates,
                        deferred,
                    ):
                        wave.append(completion)
                self._ship(lease_id, batch_id, wave, failures)
            if hung or broken:
                self._reset_pool()
                rebuilds += 1
            # A pool crash is not the cell's fault, but re-running a
            # seeded in-cell crash at the same attempt would re-fire
            # it forever — bump the attempt locally (the coordinator
            # overrides reported attempts with the lease's own, so
            # this only affects fault draws).
            todo = [(n, f, a + 1) for n, f, a in broken] + requeued

    def _run_analytic_lease(
        self,
        benchmark: _t.Any,
        spec: _t.Any,
        items: list[tuple[int, float, int]],
        lease_id: str,
        batch_id: str,
        kinds: dict[tuple[int, float], str | None],
        duplicates: list[dict[str, _t.Any]],
        deferred: list[dict[str, _t.Any]],
    ) -> None:
        """Evaluate an analytic lease in one vectorized pass.

        The closed-form kernels are elementwise, so evaluating a
        lease-sized subset is bit-identical to evaluating the whole
        grid — the wall time is split evenly across cells, exactly
        like the local analytic path.
        """
        from repro.analytic import AnalyticCampaignModel

        cells = [(n, f) for n, f, _ in items]
        start = time.perf_counter()
        try:
            evaluation = AnalyticCampaignModel(
                benchmark, spec
            ).evaluate_cells(cells)
        except Exception as error:
            self._ship(
                lease_id, batch_id, [],
                [
                    self._failure(n, f, attempt, error)
                    for n, f, attempt in items
                ],
            )
            return
        wall_share = (time.perf_counter() - start) / max(
            len(cells), 1
        )
        times = evaluation.times_by_cell()
        energies = evaluation.energies_by_cell()
        wave: list[dict[str, _t.Any]] = []
        for n, f, attempt in items:
            completion = self._completion(
                n,
                f,
                attempt,
                times[(n, f)],
                energies[(n, f)],
                wall_share,
                {
                    "events_processed": 0,
                    "processes_spawned": 0,
                    "peak_queue_len": 0,
                },
            )
            if not self._apply_worker_fault(
                kinds.get((n, f)), completion, duplicates, deferred
            ):
                wave.append(completion)
        self._ship(lease_id, batch_id, wave, [])


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Console entry point: ``repro-worker`` / ``python -m repro worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Join a repro-serve campaign fabric as a worker: lease "
            "grid cells, simulate them across a local process pool, "
            "stream results back."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--name", default="", help="worker name shown in /metrics"
    )
    parser.add_argument(
        "--max-idle-s",
        type=float,
        default=None,
        help="exit after this long with no leasable work "
        "(default: run until drained)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="local simulation processes (default: "
        "REPRO_WORKER_PROCS or os.cpu_count())",
    )
    parser.add_argument(
        "--stall-timeout-s",
        type=float,
        default=None,
        help="declare a pool round hung after this long without a "
        "completion (default: disabled)",
    )
    args = parser.parse_args(argv)
    worker = FabricWorker(
        args.host,
        args.port,
        name=args.name,
        max_idle_s=args.max_idle_s,
        procs=resolve_worker_procs(args.procs),
        stall_timeout_s=args.stall_timeout_s,
    )
    done = worker.run()
    print(
        f"repro-worker {worker.name}: {done} cells completed "
        f"({worker.leases_taken} leases, {worker.procs} procs, "
        f"{worker.reconnects} reconnects)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
