"""The fabric worker loop (``repro-worker``).

A worker is deliberately dumb: register with the coordinator, lease a
handful of cells, simulate them serially with the very same
:func:`~repro.runtime.runner._simulate_cell` the local pool uses,
stream the results back (each with a payload checksum), repeat.  A
background thread heartbeats the active lease so a *busy* worker never
loses it; a *dead* worker stops heartbeating and the coordinator
reassigns its cells — no worker-side recovery logic exists, because
none is needed.

The worker is also the injection point for the distributed failure
modes (:data:`repro.runtime.faults.WORKER_FAULT_KINDS`): when a fault
plan is armed (``REPRO_FAULTS`` in the worker's environment, or a plan
passed explicitly in tests) and a leased cell draws a distributed
fault, the worker misbehaves *on purpose* — dies mid-lease, stops
heartbeating, completes after its lease expired, corrupts a payload
after checksumming it, or sends the same completion twice.  Draws are
keyed on the cell, so a chaos fleet is reproducible no matter which
worker wins each lease.

``kill_mode`` selects how ``worker_kill`` dies: ``"exit"`` calls
``os._exit`` (subprocess fleets, the real failure), ``"stop"`` ends
the loop abruptly without completing (in-thread test workers, where
``os._exit`` would take the test process down with it).
"""

from __future__ import annotations

import argparse
import base64
import os
import pickle
import threading
import time
import typing as _t

from repro.fabric.coordinator import result_checksum
from repro.runtime import faults
from repro.runtime.runner import _simulate_cell
from repro.service.client import ServiceClient, ServiceError

__all__ = ["FabricWorker", "main"]


class _WorkerKilled(Exception):
    """Internal unwind for ``worker_kill`` in ``kill_mode="stop"``."""


class FabricWorker:
    """One fleet member: lease → simulate → complete → repeat."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        name: str = "",
        kill_mode: str = "exit",
        max_idle_s: float | None = None,
        plan: faults.FaultPlan | None = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = name or f"pid-{os.getpid()}"
        if kill_mode not in ("exit", "stop"):
            raise ValueError(
                f"kill_mode must be 'exit' or 'stop', not {kill_mode!r}"
            )
        self.kill_mode = kill_mode
        self.max_idle_s = max_idle_s
        self._plan = plan
        self.worker_id: str | None = None
        self.heartbeat_s = 1.0
        self.lease_ttl_s = 5.0
        self.worker_timeout_s = 5.0
        self.cells_done = 0
        self.leases_taken = 0
        self._client = ServiceClient(
            host, port, timeout_s=timeout_s, retries=4
        )
        self._stop = threading.Event()
        self._hb_suppressed = threading.Event()
        self._hb_lease: str | None = None
        self._hb_thread: threading.Thread | None = None

    # -- plumbing -----------------------------------------------------------

    def _post(self, path: str, body: dict[str, _t.Any]) -> _t.Any:
        # Fabric POSTs are all safe to retry: completions deduplicate
        # by cell, a duplicate registration is a harmless extra worker
        # record, and an orphaned lease simply expires.
        return self._client.request("POST", path, body, retry=True)

    def _register(self) -> None:
        doc = self._post("/fabric/register", {"name": self.name})
        self.worker_id = doc["worker_id"]
        self.heartbeat_s = float(doc.get("heartbeat_s", 1.0))
        self.lease_ttl_s = float(doc.get("lease_ttl_s", 5.0))
        self.worker_timeout_s = float(
            doc.get("worker_timeout_s", self.lease_ttl_s)
        )

    def _stall_s(self) -> float:
        """Sleep long enough that the coordinator must act: past both
        the lease TTL and the worker death window, with margin."""
        return 1.5 * max(self.lease_ttl_s, self.worker_timeout_s)

    def _heartbeat_loop(self) -> None:
        # Own client: ServiceClient is not thread-safe.
        with ServiceClient(
            self.host, self.port, timeout_s=10.0, retries=2
        ) as client:
            while not self._stop.is_set():
                if self._stop.wait(self.heartbeat_s):
                    return
                if self._hb_suppressed.is_set():
                    continue
                if self.worker_id is None:
                    continue
                try:
                    client.request(
                        "POST",
                        "/fabric/heartbeat",
                        {
                            "worker_id": self.worker_id,
                            "lease_id": self._hb_lease,
                        },
                        retry=True,
                    )
                except (ServiceError, OSError):
                    continue  # the lease loop handles re-registration

    def stop(self) -> None:
        """Ask the worker loop to exit (in-thread fleets)."""
        self._stop.set()

    # -- the loop -----------------------------------------------------------

    def run(self) -> int:
        """Work until drained, stopped, or idle past ``max_idle_s``.

        Returns the number of cells completed (handy for tests and
        for the console script's log line).
        """
        self._register()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"fabric-hb-{self.name}",
            daemon=True,
        )
        self._hb_thread.start()
        idle_since: float | None = None
        outage_since: float | None = None
        try:
            while not self._stop.is_set():
                try:
                    doc = self._post(
                        "/fabric/lease", {"worker_id": self.worker_id}
                    )
                except ServiceError as error:
                    if error.error_type == "unknown_worker":
                        # Declared dead while we stalled; rejoin.
                        try:
                            self._register()
                        except OSError:
                            pass  # charged as an outage below
                        continue
                    raise
                except OSError:
                    # Coordinator unreachable past the client's retry
                    # budget.  Wait for it to come back — a restart
                    # must not shed the fleet — but charge the outage
                    # against max_idle_s so an orphaned worker still
                    # terminates instead of dying with a traceback.
                    now = time.monotonic()
                    if outage_since is None:
                        outage_since = now
                    if (
                        self.max_idle_s is not None
                        and now - outage_since >= self.max_idle_s
                    ):
                        return self.cells_done
                    self._stop.wait(self.heartbeat_s)
                    continue
                outage_since = None
                if doc.get("drain"):
                    return self.cells_done
                if doc.get("idle"):
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if (
                        self.max_idle_s is not None
                        and now - idle_since >= self.max_idle_s
                    ):
                        return self.cells_done
                    self._stop.wait(
                        min(
                            float(
                                doc.get("backoff_s", self.heartbeat_s)
                            ),
                            self.heartbeat_s,
                        )
                    )
                    continue
                idle_since = None
                self.leases_taken += 1
                self._process_lease(doc)
        except _WorkerKilled:
            pass
        finally:
            self._stop.set()
        return self.cells_done

    def _die(self) -> None:
        if self.kill_mode == "exit":
            os._exit(86)
        raise _WorkerKilled()

    def _process_lease(self, doc: dict[str, _t.Any]) -> None:
        benchmark, spec = pickle.loads(
            base64.b64decode(doc["payload"])
        )
        lease_id = doc["lease_id"]
        batch_id = doc["batch_id"]
        self._hb_lease = lease_id
        plan = (
            self._plan
            if self._plan is not None
            else faults.active_fault_plan()
        )
        results: list[dict[str, _t.Any]] = []
        failures: list[dict[str, _t.Any]] = []
        duplicates: list[dict[str, _t.Any]] = []
        race = False
        try:
            for item in doc.get("cells", ()):
                n = int(item["cell"][0])
                f = float(item["cell"][1])
                attempt = int(item.get("attempt", 0))
                kind = (
                    plan.worker_fault_for(n, f, attempt)
                    if plan is not None
                    else None
                )
                if kind == "worker_kill":
                    self._die()
                if kind == "heartbeat_stall":
                    # Go silent mid-lease and abandon it: the
                    # coordinator must declare us dead and reassign
                    # every cell of this lease, completed or not.
                    self._hb_suppressed.set()
                    self._stop.wait(self._stall_s())
                    return
                try:
                    time_s, energy_j, wall_s, stats = _simulate_cell(
                        benchmark, n, f, spec, attempt, None
                    )
                except Exception as error:  # ship it; don't die
                    failures.append(
                        {
                            "cell": [n, f],
                            "attempt": attempt,
                            "error": f"{type(error).__name__}: {error}",
                        }
                    )
                    continue
                completion = {
                    "cell": [n, f],
                    "attempt": attempt,
                    "time_s": time_s,
                    "energy_j": energy_j,
                    "wall_s": wall_s,
                    "engine_stats": stats,
                    "checksum": result_checksum(
                        n, f, time_s, energy_j
                    ),
                }
                if kind == "corrupt_result":
                    # Checksummed first, corrupted second: exactly the
                    # bit-flip-in-flight the quarantine exists for.
                    completion["energy_j"] = energy_j + 1.0
                elif kind == "dup_complete":
                    duplicates.append(dict(completion))
                elif kind == "lease_race":
                    race = True
                results.append(completion)
                self.cells_done += 1
            if race:
                # Finish the work but deliver it only after the lease
                # has expired: the straggler double-assignment race.
                self._hb_suppressed.set()
                self._stop.wait(self._stall_s())
            body = {
                "worker_id": self.worker_id,
                "lease_id": lease_id,
                "batch_id": batch_id,
                "results": results,
                "failures": failures,
            }
            response = self._post("/fabric/complete", body)
            if duplicates:
                self._post(
                    "/fabric/complete",
                    {**body, "results": duplicates, "failures": []},
                )
            if response.get("reregister"):
                self._register()
        finally:
            self._hb_lease = None
            self._hb_suppressed.clear()


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Console entry point: ``repro-worker`` / ``python -m repro worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Join a repro-serve campaign fabric as a worker: lease "
            "grid cells, simulate them, stream results back."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--name", default="", help="worker name shown in /metrics"
    )
    parser.add_argument(
        "--max-idle-s",
        type=float,
        default=None,
        help="exit after this long with no leasable work "
        "(default: run until drained)",
    )
    args = parser.parse_args(argv)
    worker = FabricWorker(
        args.host,
        args.port,
        name=args.name,
        max_idle_s=args.max_idle_s,
    )
    done = worker.run()
    print(f"repro-worker {worker.name}: {done} cells completed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
