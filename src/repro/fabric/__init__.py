"""Distributed campaign fabric: a lease-based worker fleet.

The campaign grids are embarrassingly shardable — every ``(n, f)``
cell is an independent deterministic simulation and the merge order is
fixed by the input grid — so execution need not stop at one machine's
process pool.  This subsystem shards cell execution across *remote
workers* over the existing service HTTP stack:

* :mod:`repro.fabric.coordinator` — the server-side state machine.
  Workers register, **lease** content-addressed cell batches with a
  TTL, stream per-cell results back (each carrying a payload checksum)
  and heartbeat.  Expired leases and dead workers are detected and
  their unfinished cells reassigned — attempt history preserved, the
  per-cell exponential backoff of the local runner carried over —
  while straggler double-completions are deduplicated by cell digest
  so the grid-order merge stays bit-identical to a clean serial run.
  Corrupt result payloads (checksum mismatch) are quarantined and the
  cell re-leased.
* :mod:`repro.fabric.worker` — the worker loop behind the
  ``repro-worker`` console script and ``python -m repro worker``:
  register, lease, simulate serially, stream completions, heartbeat
  from a background thread; survives coordinator restarts through
  :class:`~repro.service.client.ServiceClient`'s retry layer.
* :mod:`repro.fabric.dispatch` — the runner-side bridge.
  :func:`repro.runtime.execute_cells` hands DES cells to the fleet
  when fabric execution is enabled and a coordinator with live
  workers is installed; if the fleet shrinks to zero mid-batch the
  unfinished cells are reclaimed and finished on the local pool, so a
  fabric campaign *degrades*, never dies.

The coordinator lives inside the service process (``repro-serve``
installs one and exposes ``/fabric/register``, ``/fabric/lease``,
``/fabric/complete`` and ``/fabric/heartbeat``; ``/metrics`` carries
the worker/lease counters).  Fault injection extends to the
distributed failure modes via ``REPRO_FAULTS`` —
``worker_kill``, ``heartbeat_stall``, ``lease_race``,
``corrupt_result``, ``dup_complete`` (see
:data:`repro.runtime.faults.WORKER_FAULT_KINDS`) — keyed on cells,
not workers, so chaos runs are reproducible.

The wire payload for a batch is a pickled (benchmark, platform spec)
pair: the fabric trusts its workers exactly as much as the process
pool trusts its forked children, and is meant for the same trust
domain (one user's cluster), not the open internet.
"""

from repro.fabric.coordinator import (
    FabricBatch,
    FabricCoordinator,
    Lease,
    UnknownWorkerError,
    WorkerInfo,
    result_checksum,
)
from repro.fabric.dispatch import FabricOutcome, run_fabric_cells
from repro.fabric.worker import FabricWorker

__all__ = [
    "FabricBatch",
    "FabricCoordinator",
    "FabricOutcome",
    "FabricWorker",
    "Lease",
    "UnknownWorkerError",
    "WorkerInfo",
    "active_coordinator",
    "install_coordinator",
    "result_checksum",
    "run_fabric_cells",
]

#: The process-global coordinator (installed by the service at
#: startup).  The runner's fabric execution path dispatches to this —
#: when it is ``None`` (or has no live workers) fabric campaigns fall
#: back to the local pool.
_COORDINATOR: FabricCoordinator | None = None


def install_coordinator(
    coordinator: FabricCoordinator | None,
) -> None:
    """Install (or with ``None`` remove) the process coordinator."""
    global _COORDINATOR
    _COORDINATOR = coordinator


def active_coordinator() -> FabricCoordinator | None:
    """The coordinator fabric campaigns in this process dispatch to."""
    return _COORDINATOR
