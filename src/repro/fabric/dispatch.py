"""Runner-side bridge: hand cell batches to the fleet, wait, merge.

:func:`run_fabric_cells` is called by
:func:`repro.runtime.execute_cells` when fabric execution is enabled.
It is deliberately conservative about *when* the fleet is used at
all — no installed coordinator, a draining coordinator, or zero live
workers each return ``None`` so the caller falls straight through to
the local pool — and about *how* a degrading fleet is handled: while
waiting it keeps reaping (so lease expiry and worker death are
detected even when no service housekeeping task is running), and the
moment the fleet shrinks to zero live workers the unfinished cells
are reclaimed and reported back as ``stranded`` for local execution.
A fabric campaign can therefore lose every worker mid-batch and still
complete, bit-identical, on the local pool.

Submission and collection are split (:func:`submit_fabric_cells` /
:func:`collect_fabric_batch`) so callers can *pipeline*: the runner
submits its analytic and DES batches before waiting on either, and
the planner keeps a bounded window of execution groups in flight so
the fleet never drains between groups.  :func:`run_fabric_cells`
remains the submit-then-wait convenience wrapper.
"""

from __future__ import annotations

import dataclasses
import time
import typing as _t

from repro.fabric.coordinator import FabricBatch, FabricCoordinator
from repro.runtime.runner import CellAttempt

__all__ = [
    "FabricOutcome",
    "PendingFabricBatch",
    "collect_fabric_batch",
    "run_fabric_cells",
    "submit_fabric_cells",
]

Cell = tuple[int, float]


@dataclasses.dataclass
class FabricOutcome:
    """What came back from the fleet for one submitted batch.

    ``stranded`` cells are the graceful-degradation residue — cells
    the fleet could not finish (all workers died, or a cell was lost
    too many times) — in grid order, for the caller to run locally.
    ``failed`` cells exhausted their own retry budget on real
    simulation errors; the caller accounts them exactly like local
    failures (``allow_partial`` applies).
    """

    results: dict[Cell, tuple[float, float, float, dict]]
    attempts: list[CellAttempt]
    failed_cells: set[Cell]
    stranded: list[Cell]
    workers_used: int
    reassignments: int
    worker_ids: frozenset[str] = frozenset()


@dataclasses.dataclass
class PendingFabricBatch:
    """A batch in flight on the fleet, awaiting collection."""

    coordinator: FabricCoordinator
    batch: FabricBatch


def submit_fabric_cells(
    benchmark: _t.Any,
    cells: _t.Sequence[Cell],
    spec: _t.Any,
    *,
    retries: int,
    backoff_s: float,
    label: str = "",
    backend: str = "des",
    coordinator: FabricCoordinator | None = None,
) -> PendingFabricBatch | None:
    """Queue ``cells`` on the fleet without waiting.

    ``None`` means "no fleet, run locally instead": no installed
    coordinator, a draining one, no cells, or zero live workers.
    """
    if coordinator is None:
        from repro.fabric import active_coordinator

        coordinator = active_coordinator()
    if coordinator is None or coordinator.draining:
        return None
    if not cells:
        return None
    if coordinator.live_workers() == 0:
        return None
    batch = coordinator.submit_batch(
        benchmark,
        cells,
        spec,
        label=label,
        retries=retries,
        backoff_s=backoff_s,
        backend=backend,
    )
    return PendingFabricBatch(coordinator=coordinator, batch=batch)


def collect_fabric_batch(
    pending: PendingFabricBatch,
    *,
    poll_s: float = 0.02,
    max_wait_s: float | None = None,
) -> FabricOutcome:
    """Wait for a submitted batch and merge its outcome.

    The wait loop reaps on every poll so the coordinator's failure
    detection does not depend on any background task, and reclaims
    the batch the moment no live worker remains (or ``max_wait_s``
    elapses, when given) — reclaimed cells come back ``stranded``.
    """
    coordinator, batch = pending.coordinator, pending.batch
    deadline = (
        time.monotonic() + max_wait_s
        if max_wait_s is not None
        else None
    )
    while not batch.done.wait(poll_s):
        coordinator.reap()
        overdue = (
            deadline is not None and time.monotonic() > deadline
        )
        if (
            coordinator.live_workers() == 0
            or coordinator.draining
            or overdue
        ):
            # The fleet is gone (or we are out of patience): take
            # every unfinished cell back for local execution.
            coordinator.reclaim_batch(batch)
            break
    return FabricOutcome(
        results=dict(batch.results),
        attempts=list(batch.attempts),
        failed_cells=set(batch.failed),
        stranded=list(batch.stranded),
        workers_used=len(batch.workers_used),
        reassignments=batch.reassignments,
        worker_ids=frozenset(batch.workers_used),
    )


def run_fabric_cells(
    benchmark: _t.Any,
    cells: _t.Sequence[Cell],
    spec: _t.Any,
    *,
    retries: int,
    backoff_s: float,
    label: str = "",
    backend: str = "des",
    coordinator: FabricCoordinator | None = None,
    poll_s: float = 0.02,
    max_wait_s: float | None = None,
) -> FabricOutcome | None:
    """Submit-then-wait convenience: execute ``cells`` on the fleet;
    ``None`` means "no fleet, run locally instead"."""
    pending = submit_fabric_cells(
        benchmark,
        cells,
        spec,
        retries=retries,
        backoff_s=backoff_s,
        label=label,
        backend=backend,
        coordinator=coordinator,
    )
    if pending is None:
        return None
    return collect_fabric_batch(
        pending, poll_s=poll_s, max_wait_s=max_wait_s
    )
