"""Exception hierarchy for :mod:`repro`.

All library-defined exceptions derive from :class:`ReproError` so callers
can catch everything the library raises with a single ``except`` clause
while still being able to distinguish the broad failure domains:

* :class:`ConfigurationError` — an object was constructed with invalid
  parameters (negative sizes, unknown frequencies, ...).
* :class:`SimulationError` — the discrete-event simulator reached an
  inconsistent state (deadlock, unmatched messages, time travel).
* :class:`ModelError` — the analytical model was asked something it cannot
  answer (missing parameters, divide-by-zero workloads).
* :class:`MeasurementError` — a measurement campaign is missing data needed
  by a parameterization step.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "ModelError",
    "MeasurementError",
    "UnknownExperimentError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An object was configured with invalid or inconsistent parameters."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    Typically raised when a simulated MPI program posts a receive that is
    never matched by a send (or vice versa), the simulated analogue of a
    hung ``mpirun``.
    """


class ModelError(ReproError, ValueError):
    """The analytical model cannot produce an answer from its inputs."""


class MeasurementError(ReproError, KeyError):
    """A required measurement is missing from a campaign.

    Parameterization methods (SP and FP, paper §5) consume measurement
    campaigns; this error identifies exactly which (N, f) sample was
    required but absent.
    """

    def __str__(self) -> str:  # KeyError quotes its message; undo that.
        return Exception.__str__(self)


class UnknownExperimentError(ReproError, KeyError):
    """An experiment id was requested that the registry does not know."""

    def __str__(self) -> str:
        return Exception.__str__(self)
