"""Exception hierarchy for :mod:`repro`.

All library-defined exceptions derive from :class:`ReproError` so callers
can catch everything the library raises with a single ``except`` clause
while still being able to distinguish the broad failure domains:

* :class:`ConfigurationError` — an object was constructed with invalid
  parameters (negative sizes, unknown frequencies, ...).
* :class:`SimulationError` — the discrete-event simulator reached an
  inconsistent state (deadlock, unmatched messages, time travel).
* :class:`ModelError` — the analytical model was asked something it cannot
  answer (missing parameters, divide-by-zero workloads).
* :class:`MeasurementError` — a measurement campaign is missing data needed
  by a parameterization step.
* :class:`CampaignExecutionError` / :class:`CellExecutionError` /
  :class:`CellTimeoutError` — the fault-tolerant campaign runtime
  exhausted its retry budget; these carry the exact (n, f) cell and
  the full attempt history for post-mortem analysis.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "ModelError",
    "MeasurementError",
    "UnknownExperimentError",
    "CellExecutionError",
    "CellTimeoutError",
    "CampaignExecutionError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An object was configured with invalid or inconsistent parameters."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    Typically raised when a simulated MPI program posts a receive that is
    never matched by a send (or vice versa), the simulated analogue of a
    hung ``mpirun``.
    """


class ModelError(ReproError, ValueError):
    """The analytical model cannot produce an answer from its inputs."""


class MeasurementError(ReproError, KeyError):
    """A required measurement is missing from a campaign.

    Parameterization methods (SP and FP, paper §5) consume measurement
    campaigns; this error identifies exactly which (N, f) sample was
    required but absent.
    """

    def __str__(self) -> str:  # KeyError quotes its message; undo that.
        return Exception.__str__(self)


class UnknownExperimentError(ReproError, KeyError):
    """An experiment id was requested that the registry does not know."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class CellExecutionError(ReproError, RuntimeError):
    """One campaign grid cell failed every attempt it was given.

    Attributes
    ----------
    cell:
        The ``(n, frequency_hz)`` grid cell that failed.
    attempts:
        The cell's full attempt history — a tuple of
        :class:`repro.runtime.runner.CellAttempt` records, one per
        try, each carrying the outcome (``"exception"``,
        ``"timeout"``, ``"crash"``) and the error text.
    """

    def __init__(
        self,
        cell: tuple[int, float],
        attempts: _t.Sequence[_t.Any] = (),
        message: str | None = None,
    ) -> None:
        self.cell = (int(cell[0]), float(cell[1]))
        self.attempts = tuple(attempts)
        if message is None:
            last = (
                getattr(self.attempts[-1], "error", "")
                if self.attempts
                else ""
            )
            message = (
                f"cell (n={self.cell[0]}, "
                f"f={self.cell[1] / 1e6:.0f} MHz) failed after "
                f"{len(self.attempts)} attempt(s)"
                + (f": {last}" if last else "")
            )
        super().__init__(message)


class CellTimeoutError(CellExecutionError):
    """A grid cell exceeded the per-cell timeout on its final attempt.

    The hung worker process is terminated and the pool rebuilt; this
    error reports the cell whose retries never beat the deadline.
    """


class CampaignExecutionError(ReproError, RuntimeError):
    """A campaign could not complete within its fault-tolerance budget.

    Attributes
    ----------
    failures:
        One :class:`CellExecutionError` per permanently-failed cell,
        each with its (n, f) coordinates and attempt history.
    completed:
        Number of cells that *did* produce results (they are not
        discarded — re-running the campaign with ``allow_partial``
        returns them).
    """

    def __init__(
        self,
        failures: _t.Sequence[CellExecutionError],
        completed: int = 0,
        message: str | None = None,
    ) -> None:
        self.failures = tuple(failures)
        self.completed = int(completed)
        if message is None:
            cells = ", ".join(
                f"(n={err.cell[0]}, f={err.cell[1] / 1e6:.0f} MHz)"
                for err in self.failures[:4]
            )
            if len(self.failures) > 4:
                cells += ", ..."
            message = (
                f"{len(self.failures)} campaign cell(s) failed after "
                f"retries ({self.completed} completed): {cells}"
            )
        super().__init__(message)
