"""The built-in platform presets.

* ``paper`` — the paper's experimental platform (§4.1), byte-for-byte
  the spec every campaign ran on before the registry existed: its
  digest (and therefore every warm cache entry) is unchanged.
* ``paper-memwall`` — the same nodes re-imagined as dual-core parts
  sharing the memory bus: OFF-chip latency inflated by the
  Furtunato-style contention term ``1 + α·(c − 1)`` with ``c = 2``
  sharers and ``α = 0.35``.  Everything else is identical, so the
  platform isolates the memory-wall effect.
* ``hetero-2gen`` — a mixed-generation 8 + 8 cluster: eight paper
  (``gen0``) nodes plus eight ``gen1`` nodes one process shrink newer.
  ``gen1`` keeps the same five SpeedStep frequencies (so cluster-wide
  grids stay meaningful) at ~12 % lower voltage, has a better core
  (lower effective CPIs), a faster memory system with no bus-downshift
  quirk, and a leaner power envelope.
"""

from __future__ import annotations

from repro.cluster.cpu import CpuSpec
from repro.cluster.machine import (
    ClusterSpec,
    NodeGroupSpec,
    paper_spec,
)
from repro.cluster.memory import MemorySpec
from repro.cluster.opoints import (
    PENTIUM_M_OPERATING_POINTS,
    OperatingPoint,
    OperatingPointTable,
)
from repro.cluster.power import PowerSpec
from repro.platforms.registry import register_platform
from repro.units import gib, mib

__all__ = [
    "gen1_operating_points",
    "paper_memwall_spec",
    "hetero_2gen_spec",
    "register_builtin_platforms",
]

#: Voltage scale of the ``gen1`` process shrink relative to the
#: Pentium M table (same frequency ladder, lower V_dd per point).
GEN1_VOLTAGE_SCALE = 0.88

#: Memory-wall parameters of ``paper-memwall``: two cores per bus at a
#: contention coefficient of 0.35 → OFF-chip latency × 1.35.
MEMWALL_SHARED_CORES = 2
MEMWALL_CONTENTION = 0.35


def gen1_operating_points() -> OperatingPointTable:
    """The ``gen1`` DVFS table: paper frequencies, shrunk voltages."""
    return OperatingPointTable(
        tuple(
            OperatingPoint(
                point.frequency_hz,
                round(point.voltage_v * GEN1_VOLTAGE_SCALE, 3),
            )
            for point in PENTIUM_M_OPERATING_POINTS
        )
    )


def paper_memwall_spec(n_nodes: int = 16) -> ClusterSpec:
    """The paper platform with a saturated shared memory bus."""
    return ClusterSpec(
        n_nodes=n_nodes,
        memory=MemorySpec(
            shared_cores=MEMWALL_SHARED_CORES,
            contention=MEMWALL_CONTENTION,
        ),
    )


def _gen1_group(count: int) -> NodeGroupSpec:
    table = gen1_operating_points()
    return NodeGroupSpec(
        count=count,
        cpu=CpuSpec(
            operating_points=table,
            cpi_cpu=1.1,
            cpi_l1=2.4,
            cpi_l2=8.0,
            dvfs_transition_s=30e-6,
        ),
        memory=MemorySpec(
            l2_bytes=mib(2),
            ram_bytes=gib(2),
            off_chip_ns=90.0,
            off_chip_ns_overrides={},
        ),
        power=PowerSpec(
            cpu_dynamic_max_w=15.0,
            cpu_static_max_w=2.5,
            system_base_w=12.0,
            peak=table.peak,
        ),
        name="gen1",
    )


def hetero_2gen_spec() -> ClusterSpec:
    """An 8 + 8 mixed-generation cluster (``gen0`` = paper nodes)."""
    return ClusterSpec.heterogeneous(
        [
            NodeGroupSpec(count=8, name="gen0"),
            _gen1_group(8),
        ]
    )


def register_builtin_platforms() -> None:
    """Register the three built-in presets (idempotent)."""
    register_platform(
        "paper",
        paper_spec,
        "the paper's homogeneous 16-node Pentium M cluster (§4.1)",
        replace=True,
    )
    register_platform(
        "paper-memwall",
        paper_memwall_spec,
        "paper nodes with a contended shared memory bus "
        f"(OFF-chip latency × {1 + MEMWALL_CONTENTION * (MEMWALL_SHARED_CORES - 1):.2f})",
        replace=True,
    )
    register_platform(
        "hetero-2gen",
        hetero_2gen_spec,
        "mixed-generation 8 + 8 cluster: paper gen0 nodes plus a "
        "lower-voltage, faster-memory gen1 shrink",
        replace=True,
    )
