"""The named-platform registry.

Every layer that used to assume "the paper's 16-node cluster" now
resolves a *platform name* through this registry instead: the runner
(``platform=`` / ``REPRO_PLATFORM`` / ``--platform``), campaign
requests and cache identity, the analytic backend, the governor's
power caps and the service.  A platform is a name bound to a factory
producing a :class:`~repro.cluster.machine.ClusterSpec`; the built-in
presets (:mod:`repro.platforms.presets`) register ``paper``,
``paper-memwall`` and ``hetero-2gen``, and ablation studies may
register their own.

Unknown names raise :class:`~repro.errors.ConfigurationError` naming
the valid choices, mirroring the runtime's ``backend=`` error pattern.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.machine import ClusterSpec
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_PLATFORM",
    "PlatformEntry",
    "register_platform",
    "unregister_platform",
    "platform_names",
    "check_platform",
    "get_platform",
    "platform_entry",
    "platform_summaries",
]

#: The platform campaigns run on when nothing names one — the paper's
#: homogeneous 16-node Pentium M cluster.
DEFAULT_PLATFORM = "paper"


@dataclasses.dataclass(frozen=True)
class PlatformEntry:
    """One registered platform: a name, a blurb, and a spec factory."""

    name: str
    description: str
    factory: _t.Callable[[], ClusterSpec]


_REGISTRY: dict[str, PlatformEntry] = {}


def register_platform(
    name: str,
    factory: _t.Callable[[], ClusterSpec],
    description: str = "",
    *,
    replace: bool = False,
) -> None:
    """Bind ``name`` to a :class:`ClusterSpec` factory.

    Names are normalised to lowercase.  Re-registering an existing
    name raises unless ``replace`` is set (tests swap platforms in and
    out; production code should never collide).
    """
    key = str(name).strip().lower()
    if not key:
        raise ConfigurationError("platform name must be non-empty")
    if key in _REGISTRY and not replace:
        raise ConfigurationError(
            f"platform {key!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[key] = PlatformEntry(
        name=key, description=str(description), factory=factory
    )


def unregister_platform(name: str) -> None:
    """Remove a registered platform (test isolation)."""
    _REGISTRY.pop(str(name).strip().lower(), None)


def platform_names() -> tuple[str, ...]:
    """All registered platform names, sorted."""
    return tuple(sorted(_REGISTRY))


def check_platform(platform: str) -> str:
    """Validate a platform name, returning it normalised.

    Raises :class:`~repro.errors.ConfigurationError` naming the valid
    registered choices for anything unknown — the same shape as the
    runtime's ``check_backend``.
    """
    name = str(platform).strip().lower()
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown platform {platform!r}: valid choices are "
            + ", ".join(repr(n) for n in platform_names())
        )
    return name


def platform_entry(platform: str) -> PlatformEntry:
    """The registry entry for a (validated) platform name."""
    return _REGISTRY[check_platform(platform)]


def get_platform(platform: str) -> ClusterSpec:
    """Build the :class:`ClusterSpec` a platform name stands for."""
    return platform_entry(platform).factory()


def platform_summaries() -> list[dict[str, _t.Any]]:
    """JSON-ready descriptions of every registered platform.

    Backs the service's ``/platforms`` listing and the CLI's platform
    report: name, description, shape, per-group layout and the spec
    digest (the cache-identity component, so operators can audit that
    two platforms never share entries).
    """
    from repro.runtime import spec_digest

    summaries = []
    for name in platform_names():
        spec = get_platform(name)
        summaries.append(
            {
                "name": name,
                "description": _REGISTRY[name].description,
                "n_nodes": spec.n_nodes,
                "heterogeneous": spec.is_heterogeneous,
                "frequencies_mhz": [
                    f / 1e6 for f in spec.common_frequencies()
                ],
                "groups": [
                    {
                        "name": group.name,
                        "count": group.count,
                        "memory_contention": (
                            group.memory.contention_multiplier
                        ),
                    }
                    for group in spec.node_groups()
                ],
                "spec_digest": spec_digest(spec),
            }
        )
    return summaries
