"""Named cluster platforms.

Importing this package registers the built-in presets (``paper``,
``paper-memwall``, ``hetero-2gen``); see :mod:`repro.platforms.presets`
for what each one is and :mod:`repro.platforms.registry` for the
registry API.
"""

from repro.platforms.presets import (
    gen1_operating_points,
    hetero_2gen_spec,
    paper_memwall_spec,
    register_builtin_platforms,
)
from repro.platforms.registry import (
    DEFAULT_PLATFORM,
    PlatformEntry,
    check_platform,
    get_platform,
    platform_entry,
    platform_names,
    platform_summaries,
    register_platform,
    unregister_platform,
)

register_builtin_platforms()

__all__ = [
    "DEFAULT_PLATFORM",
    "PlatformEntry",
    "check_platform",
    "get_platform",
    "platform_entry",
    "platform_names",
    "platform_summaries",
    "register_platform",
    "unregister_platform",
    "register_builtin_platforms",
    "gen1_operating_points",
    "hetero_2gen_spec",
    "paper_memwall_spec",
]
