"""Units and unit helpers used throughout :mod:`repro`.

The paper (and this library) mixes quantities measured at very different
scales: CPU frequencies in MHz/GHz, per-instruction times in nanoseconds,
phase and application times in seconds, message sizes in doubles or bytes
and energies in joules.  To keep the arithmetic honest the library adopts
a small set of *canonical units* and this module provides named converters
to and from them.

Canonical units
---------------

===============  ==================  =================================
Quantity         Canonical unit      Helper(s)
===============  ==================  =================================
frequency        hertz (cycles/s)    :func:`mhz`, :func:`ghz`
time             seconds             :func:`ns`, :func:`us`, :func:`ms`
data size        bytes               :func:`kib`, :func:`mib`, :func:`doubles`
bandwidth        bytes/second        :func:`mbit_per_s`, :func:`mbyte_per_s`
power            watts               (native)
energy           joules              (native)
voltage          volts               (native)
===============  ==================  =================================

All helpers accept ints or floats and return floats; they are trivially
vectorizable over numpy arrays as well because they only use ``*`` and
``/``.
"""

from __future__ import annotations

__all__ = [
    "KHZ",
    "MHZ",
    "GHZ",
    "NS",
    "US",
    "MS",
    "KIB",
    "MIB",
    "GIB",
    "DOUBLE_BYTES",
    "mhz",
    "ghz",
    "to_mhz",
    "to_ghz",
    "ns",
    "us",
    "ms",
    "to_ns",
    "to_us",
    "to_ms",
    "kib",
    "mib",
    "gib",
    "doubles",
    "to_doubles",
    "mbit_per_s",
    "mbyte_per_s",
    "to_mbit_per_s",
    "seconds_per_cycle",
    "cycles",
]

#: One kilohertz in hertz.
KHZ = 1.0e3
#: One megahertz in hertz.
MHZ = 1.0e6
#: One gigahertz in hertz.
GHZ = 1.0e9

#: One nanosecond in seconds.
NS = 1.0e-9
#: One microsecond in seconds.
US = 1.0e-6
#: One millisecond in seconds.
MS = 1.0e-3

#: One kibibyte in bytes.
KIB = 1024.0
#: One mebibyte in bytes.
MIB = 1024.0 * 1024.0
#: One gibibyte in bytes.
GIB = 1024.0 * 1024.0 * 1024.0

#: Size of one IEEE-754 double-precision value in bytes.  NPB codes report
#: message sizes in "doubles" (e.g. LU sends 310 doubles per message); this
#: constant converts those counts into wire bytes.
DOUBLE_BYTES = 8.0


# ---------------------------------------------------------------------------
# frequency
# ---------------------------------------------------------------------------

def mhz(value: float) -> float:
    """Convert a frequency expressed in MHz to hertz.

    >>> mhz(600)
    600000000.0
    """
    return float(value) * MHZ


def ghz(value: float) -> float:
    """Convert a frequency expressed in GHz to hertz.

    >>> ghz(1.4)
    1400000000.0
    """
    return float(value) * GHZ


def to_mhz(hertz: float) -> float:
    """Convert a frequency in hertz to MHz."""
    return float(hertz) / MHZ


def to_ghz(hertz: float) -> float:
    """Convert a frequency in hertz to GHz."""
    return float(hertz) / GHZ


# ---------------------------------------------------------------------------
# time
# ---------------------------------------------------------------------------

def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return float(value) * NS


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * US


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * MS


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return float(seconds) / NS


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return float(seconds) / US


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) / MS


# ---------------------------------------------------------------------------
# data size
# ---------------------------------------------------------------------------

def kib(value: float) -> float:
    """Convert kibibytes to bytes."""
    return float(value) * KIB


def mib(value: float) -> float:
    """Convert mebibytes to bytes."""
    return float(value) * MIB


def gib(value: float) -> float:
    """Convert gibibytes to bytes."""
    return float(value) * GIB


def doubles(count: float) -> float:
    """Convert a count of double-precision values to bytes.

    >>> doubles(310)
    2480.0
    """
    return float(count) * DOUBLE_BYTES


def to_doubles(nbytes: float) -> float:
    """Convert bytes to an (possibly fractional) count of doubles."""
    return float(nbytes) / DOUBLE_BYTES


# ---------------------------------------------------------------------------
# bandwidth
# ---------------------------------------------------------------------------

def mbit_per_s(value: float) -> float:
    """Convert megabits/second (network convention, 10^6) to bytes/second.

    >>> mbit_per_s(100)
    12500000.0
    """
    return float(value) * 1.0e6 / 8.0


def mbyte_per_s(value: float) -> float:
    """Convert megabytes/second (10^6 bytes) to bytes/second."""
    return float(value) * 1.0e6


def to_mbit_per_s(bytes_per_s: float) -> float:
    """Convert bytes/second to megabits/second."""
    return float(bytes_per_s) * 8.0 / 1.0e6


# ---------------------------------------------------------------------------
# cycle arithmetic
# ---------------------------------------------------------------------------

def seconds_per_cycle(frequency_hz: float) -> float:
    """Duration of one clock cycle at ``frequency_hz``.

    Raises
    ------
    ValueError
        If the frequency is not strictly positive.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return 1.0 / float(frequency_hz)


def cycles(time_s: float, frequency_hz: float) -> float:
    """Number of clock cycles elapsing in ``time_s`` at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return float(time_s) * float(frequency_hz)
