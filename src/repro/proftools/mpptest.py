"""MPPTEST-style message-passing performance measurement.

Step 2 of the fine-grain parameterization also needs per-message times:
"To measure communication workload time, we measure the seconds per
communication for different message sizes using the MPPTEST toolset."

:class:`MppTest` runs ping-pong exchanges between two simulated nodes
across message sizes and frequencies; :class:`MessageTimeTable` holds
the measured ``(size, frequency) → seconds`` surface and interpolates
between measured sizes (per-message cost is affine in size under the
α–β network model, so linear interpolation is exact between samples).

The table reproduces the paper's Table 6 observations: small-message
time is frequency-insensitive; large-message time rises at the lowest
frequency because the host-CPU share of messaging slows down.
"""

from __future__ import annotations

import bisect
import typing as _t

from repro.cluster.machine import Cluster, ClusterSpec, paper_spec
from repro.errors import ConfigurationError, MeasurementError
from repro.mpi.program import run_program

__all__ = ["MppTest", "MessageTimeTable"]


class MessageTimeTable:
    """Measured per-message times over (size, frequency).

    Parameters
    ----------
    samples:
        ``{frequency_hz: {nbytes: seconds}}``.
    """

    def __init__(
        self, samples: _t.Mapping[float, _t.Mapping[float, float]]
    ) -> None:
        if not samples:
            raise ConfigurationError("message-time table cannot be empty")
        self._by_f: dict[float, list[tuple[float, float]]] = {}
        for f, sizes in samples.items():
            if not sizes:
                raise ConfigurationError(
                    f"no size samples at frequency {f}"
                )
            pairs = sorted(
                (float(s), float(t)) for s, t in sizes.items()
            )
            self._by_f[float(f)] = pairs

    @property
    def frequencies(self) -> tuple[float, ...]:
        """Measured frequencies, ascending."""
        return tuple(sorted(self._by_f))

    def sizes(self, frequency_hz: float) -> tuple[float, ...]:
        """Measured message sizes at one frequency."""
        return tuple(s for s, _ in self._lookup_f(frequency_hz))

    def _lookup_f(self, frequency_hz: float) -> list[tuple[float, float]]:
        f = float(frequency_hz)
        try:
            return self._by_f[f]
        except KeyError:
            raise MeasurementError(
                f"no message timings at {f / 1e6:.0f} MHz; measured: "
                f"{[fi / 1e6 for fi in self.frequencies]} MHz"
            ) from None

    def time(self, nbytes: float, frequency_hz: float) -> float:
        """Per-message seconds for ``nbytes`` at ``frequency_hz``.

        Linear interpolation between measured sizes; linear
        extrapolation from the two nearest samples outside the range
        (clamped at the smallest sample for tiny messages).
        """
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {nbytes}")
        pairs = self._lookup_f(frequency_hz)
        sizes = [s for s, _ in pairs]
        if len(pairs) == 1:
            return pairs[0][1]
        i = bisect.bisect_left(sizes, nbytes)
        if i == 0:
            return pairs[0][1]
        if i == len(pairs):
            (s0, t0), (s1, t1) = pairs[-2], pairs[-1]
        else:
            (s0, t0), (s1, t1) = pairs[i - 1], pairs[i]
        if s1 == s0:  # pragma: no cover - sorted unique sizes
            return t0
        slope = (t1 - t0) / (s1 - s0)
        return max(t0 + slope * (nbytes - s0), 0.0)

    def as_dict(self) -> dict[float, dict[float, float]]:
        """The raw samples (copies)."""
        return {f: dict(pairs) for f, pairs in self._by_f.items()}


class MppTest:
    """Ping-pong message timing on the simulated cluster."""

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = (spec or paper_spec()).with_nodes(2)

    def pingpong_time(
        self, nbytes: float, frequency_hz: float, repetitions: int = 20
    ) -> float:
        """One-way per-message time from a ping-pong loop.

        Sends the payload back and forth ``repetitions`` times and
        halves the per-round-trip average, like MPPTEST's default
        pattern.
        """
        if repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1: {repetitions}"
            )
        cluster = Cluster(self.spec, frequency_hz=frequency_hz)

        def program(ctx):
            for rep in range(repetitions):
                if ctx.rank == 0:
                    yield from ctx.send(1, nbytes=nbytes, tag=1)
                    yield from ctx.recv(source=1, tag=2)
                else:
                    yield from ctx.recv(source=0, tag=1)
                    yield from ctx.send(0, nbytes=nbytes, tag=2)

        result = run_program(cluster, program)
        return result.elapsed_s / (2.0 * repetitions)

    def measure(
        self,
        sizes: _t.Iterable[float],
        frequencies: _t.Iterable[float] | None = None,
        repetitions: int = 20,
    ) -> MessageTimeTable:
        """Measure the full (size, frequency) surface."""
        if frequencies is None:
            frequencies = self.spec.cpu.operating_points.frequencies
        sizes = [float(s) for s in sizes]
        if not sizes:
            raise ConfigurationError("need at least one message size")
        samples: dict[float, dict[float, float]] = {}
        for f in frequencies:
            samples[float(f)] = {
                s: self.pingpong_time(s, f, repetitions) for s in sizes
            }
        return MessageTimeTable(samples)
