"""Per-phase profiling of simulated runs.

DVS scheduling (paper §1, [15]) needs to know *which phases* of a code
are communication-bound — those are where the processor can slow down
almost for free.  :func:`profile_benchmark` runs a benchmark with
tracing enabled and aggregates per-phase compute/communication times;
:class:`PhaseProfile` answers the scheduling-relevant queries
(communication fraction per phase, phases above a boundedness
threshold).

Phase labels are normalized by stripping the ``[iteration]`` suffix,
so ``transpose[0] … transpose[5]`` aggregate into one ``transpose``
phase group — matching how a phase-based scheduler treats recurring
program regions.
"""

from __future__ import annotations

import dataclasses
import re
import typing as _t

from repro.cluster.machine import Cluster, ClusterSpec, paper_spec
from repro.mpi.program import RunResult
from repro.npb.base import BenchmarkModel

__all__ = ["PhaseStats", "PhaseProfile", "profile_benchmark", "normalize_label"]

_ITER_SUFFIX = re.compile(r"\[[^\]]*\]$")


def normalize_label(label: str) -> str:
    """Strip a trailing ``[...]`` iteration marker from a phase label."""
    return _ITER_SUFFIX.sub("", label)


@dataclasses.dataclass(frozen=True)
class PhaseStats:
    """Aggregated times for one phase group (per single rank)."""

    label: str
    compute_s: float
    comm_s: float

    @property
    def total_s(self) -> float:
        """Total traced time of the group."""
        return self.compute_s + self.comm_s

    @property
    def comm_fraction(self) -> float:
        """Share of the group's time spent in communication."""
        return self.comm_s / self.total_s if self.total_s > 0 else 0.0


class PhaseProfile:
    """Per-phase-group profile of one run (one representative rank)."""

    def __init__(
        self, stats: _t.Mapping[str, PhaseStats], elapsed_s: float, rank: int
    ) -> None:
        self._stats = dict(stats)
        self.elapsed_s = float(elapsed_s)
        self.rank = int(rank)

    @classmethod
    def from_run(cls, result: RunResult, rank: int = 0) -> "PhaseProfile":
        """Build a profile from a traced :class:`RunResult`."""
        if result.tracer is None:
            raise ValueError("run was not traced; pass trace=True")
        groups: dict[str, dict[str, float]] = {}
        for rec in result.tracer.iter(rank=rank):
            group = groups.setdefault(
                normalize_label(rec.phase), {"compute": 0.0, "comm": 0.0}
            )
            if rec.category in group:
                group[rec.category] += rec.duration
        stats = {
            label: PhaseStats(label, g["compute"], g["comm"])
            for label, g in groups.items()
        }
        return cls(stats, result.elapsed_s, rank)

    # -- queries -----------------------------------------------------------

    @property
    def phases(self) -> tuple[str, ...]:
        """Phase-group labels, by descending total time."""
        return tuple(
            sorted(self._stats, key=lambda p: -self._stats[p].total_s)
        )

    def stats(self, label: str) -> PhaseStats:
        """The stats of one phase group."""
        return self._stats[label]

    def communication_bound_phases(
        self, threshold: float = 0.5
    ) -> tuple[str, ...]:
        """Phase groups whose communication fraction exceeds
        ``threshold`` — the DVS scheduling targets."""
        return tuple(
            label
            for label in self.phases
            if self._stats[label].comm_fraction >= threshold
        )

    def total_comm_fraction(self) -> float:
        """Communication share of all traced time."""
        total = sum(s.total_s for s in self._stats.values())
        comm = sum(s.comm_s for s in self._stats.values())
        return comm / total if total > 0 else 0.0

    def as_rows(self) -> list[tuple[str, float, float, float]]:
        """(label, compute_s, comm_s, comm_fraction) rows for reports."""
        return [
            (
                label,
                self._stats[label].compute_s,
                self._stats[label].comm_s,
                self._stats[label].comm_fraction,
            )
            for label in self.phases
        ]


def profile_benchmark(
    benchmark: BenchmarkModel,
    n_ranks: int,
    spec: ClusterSpec | None = None,
    frequency_hz: float | None = None,
    rank: int = 0,
) -> PhaseProfile:
    """Run a benchmark with tracing and return its phase profile."""
    base_spec = (spec or paper_spec()).with_nodes(n_ranks)
    cluster = Cluster(base_spec, frequency_hz=frequency_hz, trace=True)
    result = benchmark.run(cluster)
    return PhaseProfile.from_run(result, rank=rank)
