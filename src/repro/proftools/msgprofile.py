"""Measured communication profiles.

The FP parameterization multiplies a message count by a per-message
time (paper §5.2: "the number of messages obtained by profiling LU").
This module obtains that count by *measurement*: run the application
once, read the per-(rank, phase) send statistics the runtime collects,
and condense them into the :class:`~repro.core.workload.MessageProfile`
shape the model consumes.

The critical-path message count is approximated by the *maximum over
ranks* of per-rank messages sent (the busiest rank paces the job), and
the message size by the byte-weighted mean.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from repro.cluster.machine import Cluster, ClusterSpec, paper_spec
from repro.core.workload import MessageProfile
from repro.mpi.program import RunResult
from repro.npb.base import BenchmarkModel
from repro.proftools.profiler import normalize_label

__all__ = ["MessageProfileReport", "measure_message_profile"]


@dataclasses.dataclass(frozen=True)
class MessageProfileReport:
    """Measured communication statistics of one run."""

    n_ranks: int
    #: ``{phase_group: {rank: (messages, bytes)}}``.
    by_phase: dict[str, dict[int, tuple[float, float]]]

    @classmethod
    def from_run(cls, result: RunResult) -> "MessageProfileReport":
        grouped: dict[str, dict[int, list[float]]] = collections.defaultdict(
            dict
        )
        for (rank, phase), (count, nbytes) in result.send_stats.items():
            group = normalize_label(phase)
            entry = grouped[group].setdefault(rank, [0.0, 0.0])
            entry[0] += count
            entry[1] += nbytes
        return cls(
            n_ranks=result.n_ranks,
            by_phase={
                group: {r: (v[0], v[1]) for r, v in ranks.items()}
                for group, ranks in grouped.items()
            },
        )

    # -- aggregates --------------------------------------------------------

    def phases(self) -> tuple[str, ...]:
        """Phase groups that sent messages, by descending volume."""
        return tuple(
            sorted(
                self.by_phase,
                key=lambda g: -sum(v[1] for v in self.by_phase[g].values()),
            )
        )

    def rank_totals(self) -> dict[int, tuple[float, float]]:
        """``{rank: (messages, bytes)}`` summed over phases."""
        totals: dict[int, list[float]] = {}
        for ranks in self.by_phase.values():
            for rank, (count, nbytes) in ranks.items():
                entry = totals.setdefault(rank, [0.0, 0.0])
                entry[0] += count
                entry[1] += nbytes
        return {r: (v[0], v[1]) for r, v in totals.items()}

    def message_profile(
        self, phases: _t.Iterable[str] | None = None
    ) -> MessageProfile:
        """Condense to the model's :class:`MessageProfile`.

        Parameters
        ----------
        phases:
            Restrict to these phase groups (default: all).
        """
        selected = set(phases) if phases is not None else set(self.by_phase)
        per_rank: dict[int, list[float]] = {}
        for group in selected:
            for rank, (count, nbytes) in self.by_phase.get(group, {}).items():
                entry = per_rank.setdefault(rank, [0.0, 0.0])
                entry[0] += count
                entry[1] += nbytes
        if not per_rank:
            return MessageProfile(0.0, 0.0)
        busiest = max(per_rank.values(), key=lambda v: v[0])
        count = busiest[0]
        total_bytes = sum(v[1] for v in per_rank.values())
        total_msgs = sum(v[0] for v in per_rank.values())
        mean_size = total_bytes / total_msgs if total_msgs > 0 else 0.0
        return MessageProfile(critical_messages=count, nbytes=mean_size)


def measure_message_profile(
    benchmark: BenchmarkModel,
    n_ranks: int,
    spec: ClusterSpec | None = None,
    frequency_hz: float | None = None,
) -> MessageProfileReport:
    """Run a benchmark once and return its measured message statistics."""
    base_spec = (spec or paper_spec()).with_nodes(n_ranks)
    cluster = Cluster(base_spec, frequency_hz=frequency_hz)
    result = benchmark.run(cluster)
    return MessageProfileReport.from_run(result)
