"""Measurement toolset substrate.

The paper's methodology leans on three measurement tools, each of which
is reproduced here against the simulated cluster:

* :mod:`~repro.proftools.papi` — PAPI-style hardware-counter sessions,
  including the real-world constraint that only a few events can be
  counted per run (so characterization takes multiple runs, as the
  paper notes).
* :mod:`~repro.proftools.lmbench` — LMBENCH-style memory-level latency
  probes isolating seconds-per-instruction for CPU/L1/L2/memory work at
  every frequency (Table 6's upper rows).
* :mod:`~repro.proftools.mpptest` — MPPTEST-style message timing across
  sizes and frequencies (Table 6's lower rows).
* :mod:`~repro.proftools.profiler` — per-phase time/energy profiling of
  full runs, the input to DVS scheduling (:mod:`repro.sched`).
"""

from repro.proftools.lmbench import LevelLatencyProbe
from repro.proftools.mpptest import MessageTimeTable, MppTest
from repro.proftools.msgprofile import (
    MessageProfileReport,
    measure_message_profile,
)
from repro.proftools.papi import PapiSession, counter_campaign
from repro.proftools.profiler import PhaseProfile, profile_benchmark

__all__ = [
    "PapiSession",
    "counter_campaign",
    "LevelLatencyProbe",
    "MppTest",
    "MessageTimeTable",
    "PhaseProfile",
    "profile_benchmark",
    "MessageProfileReport",
    "measure_message_profile",
]
