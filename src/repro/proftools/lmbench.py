"""LMBENCH-style memory-level latency probes.

The fine-grain parameterization's step 2 (paper §5.2) needs the
average time per instruction *for each memory level separately*, at
every frequency: "We use the LMBENCH toolset as it enables us to
isolate the latency for each of these workload types."

:class:`LevelLatencyProbe` reproduces the idea on the simulator: for
each level it executes a micro-workload touching *only* that level and
divides elapsed time by the instruction count.  The output is the
``{frequency: {level: seconds}}`` table that
:meth:`repro.core.cpi.WorkloadRates.from_level_latencies` consumes, and
whose shape is the paper's Table 6: ON-chip latencies fall as 1/f,
memory latency is flat except for the low-frequency bus quirk.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.machine import Cluster, ClusterSpec, paper_spec
from repro.cluster.workmix import InstructionMix
from repro.errors import ConfigurationError
from repro.mpi.program import run_program

__all__ = ["LevelLatencyProbe"]

#: Instruction count per probe: large enough that fixed costs vanish.
_PROBE_INSTRUCTIONS = 1e8


class LevelLatencyProbe:
    """Measures per-level seconds/instruction across frequencies."""

    #: The four workload types of Table 5/6.
    LEVELS = ("cpu", "l1", "l2", "mem")

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = (spec or paper_spec()).with_nodes(1)

    def probe_level(self, level: str, frequency_hz: float) -> float:
        """Seconds per instruction for one level at one frequency."""
        if level not in self.LEVELS:
            raise ConfigurationError(
                f"unknown level {level!r}; choose from {self.LEVELS}"
            )
        mix = InstructionMix(**{level: _PROBE_INSTRUCTIONS})
        cluster = Cluster(self.spec, frequency_hz=frequency_hz)

        def program(ctx):
            yield from ctx.compute(mix)

        result = run_program(cluster, program)
        return result.elapsed_s / _PROBE_INSTRUCTIONS

    def measure(
        self, frequencies: _t.Iterable[float] | None = None
    ) -> dict[float, dict[str, float]]:
        """The full per-level latency table over ``frequencies``.

        Defaults to every operating point of the probed platform.
        Result shape: ``{frequency_hz: {level: seconds/instruction}}``.
        """
        if frequencies is None:
            frequencies = self.spec.cpu.operating_points.frequencies
        table: dict[float, dict[str, float]] = {}
        for f in frequencies:
            table[float(f)] = {
                level: self.probe_level(level, f) for level in self.LEVELS
            }
        return table

    def table6_rows(
        self, frequencies: _t.Iterable[float] | None = None
    ) -> dict[str, dict[float, float]]:
        """The probe data pivoted like the paper's Table 6 (rows =
        levels, columns = frequencies, nanoseconds)."""
        data = self.measure(frequencies)
        rows: dict[str, dict[float, float]] = {
            level: {} for level in self.LEVELS
        }
        for f, levels in data.items():
            for level, seconds in levels.items():
                rows[level][f] = seconds * 1e9
        return rows
