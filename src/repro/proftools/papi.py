"""PAPI-style hardware-counter sessions.

Real hardware can count only a handful of events simultaneously; the
paper notes: "Hardware limitations on the number and type of events
counted simultaneously require us to run the application multiple times
in order to record all the events we need."  :class:`PapiSession`
reproduces that interface — start a limited event set, run, stop, read
— and :func:`counter_campaign` orchestrates the multiple runs needed
to cover all five events of the Table 5 methodology.
"""

from __future__ import annotations

import math
import typing as _t

from repro.cluster.counters import PAPI_EVENTS
from repro.cluster.machine import Cluster, ClusterSpec, paper_spec
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.npb.base import BenchmarkModel

__all__ = ["PapiSession", "counter_campaign"]

#: Pentium-M-era PMUs exposed two programmable counters.
DEFAULT_MAX_EVENTS = 2


class PapiSession:
    """A bounded-width counter session on one node.

    Mirrors the PAPI flow: ``start(events)`` → run work → ``stop()``
    returns the counted values.  At most ``max_events`` can be active.
    """

    def __init__(self, node: Node, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 1:
            raise ConfigurationError(f"max_events must be >= 1: {max_events}")
        self.node = node
        self.max_events = int(max_events)
        self._active: tuple[str, ...] | None = None
        self._start_values: dict[str, float] = {}

    @property
    def available_events(self) -> tuple[str, ...]:
        """Events this (simulated) PMU implements."""
        return PAPI_EVENTS

    def start(self, events: _t.Sequence[str]) -> None:
        """Arm a set of events (bounded by the PMU width)."""
        if self._active is not None:
            raise ConfigurationError("a PAPI session is already running")
        if len(events) == 0:
            raise ConfigurationError("need at least one event")
        if len(events) > self.max_events:
            raise ConfigurationError(
                f"hardware counts at most {self.max_events} events at once; "
                f"got {len(events)}"
            )
        for ev in events:
            if ev not in PAPI_EVENTS:
                raise ConfigurationError(
                    f"unknown PAPI event {ev!r}; available: {PAPI_EVENTS}"
                )
        self._active = tuple(events)
        self._start_values = {
            ev: self.node.counters.read(ev) for ev in events
        }

    def stop(self) -> dict[str, float]:
        """Disarm and return per-event deltas since :meth:`start`."""
        if self._active is None:
            raise ConfigurationError("no PAPI session running")
        deltas = {
            ev: self.node.counters.read(ev) - self._start_values[ev]
            for ev in self._active
        }
        self._active = None
        self._start_values = {}
        return deltas


def counter_campaign(
    benchmark: BenchmarkModel,
    spec: ClusterSpec | None = None,
    events: _t.Sequence[str] = PAPI_EVENTS,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> dict[str, float]:
    """Measure all ``events`` for a benchmark via repeated runs.

    Runs the benchmark sequentially ``ceil(len(events)/max_events)``
    times, counting a different event group each run — the paper's
    multiple-run protocol.  Determinism of the simulator plays the role
    of the paper's "event counts are similar across runs" assumption.
    """
    base_spec = (spec or paper_spec()).with_nodes(1)
    groups = max(math.ceil(len(events) / max_events), 1)
    results: dict[str, float] = {}
    for g in range(groups):
        group = list(events[g * max_events : (g + 1) * max_events])
        if not group:
            continue
        cluster = Cluster(base_spec)
        session = PapiSession(cluster.node(0), max_events=max_events)
        session.start(group)
        benchmark.run(cluster)
        results.update(session.stop())
    return results
