"""Configuration "sweet spot" search.

The paper's motivation (§1, §2): with an accurate power-aware
performance model you can search the (processor count, frequency) space
for configurations optimized under performance/power constraints —
without measuring every cell.  :class:`SweetSpotFinder` implements the
searches the paper sketches:

* the fastest configuration outright,
* the fastest configuration under a cluster power budget,
* the most energy-frugal configuration within a slowdown bound,
* the minimum energy-delay (EDP) and energy-delay-squared (ED²P)
  configurations.

Inputs are grids of (predicted or measured) times and energies, so the
finder works identically on model output and on campaign data.
"""

from __future__ import annotations

import typing as _t

from repro.core.energy import EnergyPrediction
from repro.errors import ModelError

__all__ = ["SweetSpotFinder", "SweetSpot"]

Key = tuple[int, float]


class SweetSpot(_t.NamedTuple):
    """One selected configuration and its figures."""

    n: int
    frequency_hz: float
    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product of the configuration."""
        return self.energy_j * self.time_s

    @property
    def frequency_mhz(self) -> float:
        """Frequency in MHz for display."""
        return self.frequency_hz / 1e6


class SweetSpotFinder:
    """Searches a (N, f) grid of time/energy figures.

    Parameters
    ----------
    predictions:
        ``{(n, frequency_hz): EnergyPrediction}`` — as produced by
        :meth:`repro.core.energy.EnergyModel.prediction_grid`, or built
        from a measured campaign.
    """

    def __init__(
        self, predictions: _t.Mapping[Key, EnergyPrediction]
    ) -> None:
        if not predictions:
            raise ModelError("sweet-spot search needs a non-empty grid")
        self._grid = {
            (int(n), float(f)): p for (n, f), p in predictions.items()
        }

    def _spot(self, key: Key) -> SweetSpot:
        p = self._grid[key]
        return SweetSpot(key[0], key[1], p.time_s, p.energy_j)

    def _argmin(
        self,
        objective: _t.Callable[[EnergyPrediction], float],
        feasible: _t.Callable[[Key, EnergyPrediction], bool] | None = None,
    ) -> SweetSpot:
        candidates = [
            key
            for key, p in self._grid.items()
            if feasible is None or feasible(key, p)
        ]
        if not candidates:
            raise ModelError("no configuration satisfies the constraints")
        best = min(
            candidates,
            key=lambda k: (objective(self._grid[k]), k[0], k[1]),
        )
        return self._spot(best)

    # -- searches ------------------------------------------------------------

    def fastest(self) -> SweetSpot:
        """The minimum-time configuration."""
        return self._argmin(lambda p: p.time_s)

    def fastest_within_power(self, power_budget_w: float) -> SweetSpot:
        """Fastest configuration whose mean power fits the budget."""
        if power_budget_w <= 0:
            raise ModelError(f"power budget must be positive: {power_budget_w}")
        return self._argmin(
            lambda p: p.time_s,
            feasible=lambda _k, p: p.mean_power_w <= power_budget_w,
        )

    def min_energy(self, max_slowdown: float | None = None) -> SweetSpot:
        """Most energy-frugal configuration.

        ``max_slowdown`` (e.g. 1.05 for "at most 5 % slower") bounds
        the admissible time relative to the fastest configuration.
        """
        if max_slowdown is None:
            return self._argmin(lambda p: p.energy_j)
        if max_slowdown < 1.0:
            raise ModelError(f"max_slowdown must be >= 1: {max_slowdown}")
        t_best = self.fastest().time_s
        return self._argmin(
            lambda p: p.energy_j,
            feasible=lambda _k, p: p.time_s <= max_slowdown * t_best,
        )

    def min_edp(self) -> SweetSpot:
        """The minimum energy-delay-product configuration."""
        return self._argmin(lambda p: p.edp)

    def min_ed2p(self) -> SweetSpot:
        """The minimum E·T² configuration."""
        return self._argmin(lambda p: p.ed2p)

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict[str, SweetSpot]:
        """All standard searches at once."""
        return {
            "fastest": self.fastest(),
            "min_energy": self.min_energy(),
            "min_edp": self.min_edp(),
            "min_ed2p": self.min_ed2p(),
        }
