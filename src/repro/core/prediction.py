"""The prediction facade: measurements in, validated predictions out.

:class:`Predictor` bundles a measured :class:`~repro.core.measurements.
TimingCampaign` with any object implementing ``predict_time(n, f)``
(both parameterizations do) and produces the paper's deliverables:
predicted time/speedup grids, error tables against the measurements,
and — given an :class:`~repro.core.energy.EnergyModel` — EDP grids and
their error tables.
"""

from __future__ import annotations

import typing as _t

from repro.core.analysis import ErrorTable
from repro.core.energy import EnergyModel, EnergyPrediction
from repro.core.measurements import TimingCampaign
from repro.core.speedup import measured_speedup_table
from repro.errors import ModelError

__all__ = ["Predictor", "TimePredictor"]


class TimePredictor(_t.Protocol):
    """Anything that predicts an execution time for (n, f)."""

    def predict_time(self, n: int, frequency_hz: float) -> float:
        """Predicted seconds for the configuration."""
        ...  # pragma: no cover - protocol


class Predictor:
    """Couples a fitted model with the campaign it should reproduce.

    Parameters
    ----------
    campaign:
        The measured grid (the "truth" to validate against).
    model:
        A fitted SP/FP parameterization (or anything with
        ``predict_time``).
    energy_model:
        Optional; enables energy/EDP predictions.
    overhead_for:
        Optional ``(n, f) -> seconds`` giving the overhead share of the
        predicted time, used to blend power states in the energy
        prediction.  SP's :meth:`~repro.core.params_sp.
        SimplifiedParameterization.overhead` is the natural source.
    """

    def __init__(
        self,
        campaign: TimingCampaign,
        model: TimePredictor,
        energy_model: EnergyModel | None = None,
        overhead_for: _t.Callable[[int, float], float] | None = None,
    ) -> None:
        self.campaign = campaign
        self.model = model
        self.energy_model = energy_model
        self.overhead_for = overhead_for

    # -- grids ---------------------------------------------------------------

    def grid_keys(self) -> tuple[tuple[int, float], ...]:
        """The campaign's (n, f) grid."""
        return tuple(sorted(self.campaign.times))

    def predicted_times(self) -> dict[tuple[int, float], float]:
        """Predicted time at every measured grid point."""
        return {
            (n, f): self.model.predict_time(n, f)
            for (n, f) in self.grid_keys()
        }

    def predicted_speedups(self) -> dict[tuple[int, float], float]:
        """Predicted power-aware speedups (vs the *measured* baseline).

        Using the measured ``T_1(w, f0)`` as numerator mirrors the
        paper's error tables, which compare predicted and measured
        speedups over the same baseline.
        """
        baseline = self.campaign.sequential_base_time()
        return {
            key: baseline / t for key, t in self.predicted_times().items()
        }

    def measured_speedups(self) -> dict[tuple[int, float], float]:
        """Measured power-aware speedups (Eq. 4 over the campaign)."""
        return measured_speedup_table(
            self.campaign.times, self.campaign.base_frequency_hz
        )

    # -- error tables -----------------------------------------------------------

    def speedup_error_table(self, label: str = "") -> ErrorTable:
        """Relative speedup errors over the grid (Tables 3/7 shape)."""
        return ErrorTable.compare(
            self.predicted_speedups(), self.measured_speedups(), label=label
        )

    def time_error_table(self, label: str = "") -> ErrorTable:
        """Relative execution-time errors over the grid."""
        return ErrorTable.compare(
            self.predicted_times(), self.campaign.times, label=label
        )

    # -- energy -----------------------------------------------------------------

    def predicted_energies(self) -> dict[tuple[int, float], EnergyPrediction]:
        """Energy/EDP predictions at every grid point."""
        if self.energy_model is None:
            raise ModelError("no energy model attached to this predictor")
        times = self.predicted_times()
        overheads = {}
        if self.overhead_for is not None:
            overheads = {
                (n, f): self.overhead_for(n, f) for (n, f) in times
            }
        return self.energy_model.prediction_grid(times, overheads)

    def edp_error_table(self, label: str = "") -> ErrorTable:
        """Relative EDP errors vs the campaign's measured energies."""
        if not self.campaign.energies:
            raise ModelError("campaign carries no energy measurements")
        predicted = {
            key: pred.edp for key, pred in self.predicted_energies().items()
        }
        measured = {
            key: self.campaign.energies[key] * self.campaign.times[key]
            for key in self.campaign.energies
            if key in self.campaign.times
        }
        return ErrorTable.compare(predicted, measured, label=label)

    def energy_error_table(self, label: str = "") -> ErrorTable:
        """Relative energy errors vs the campaign's measured energies."""
        if not self.campaign.energies:
            raise ModelError("campaign carries no energy measurements")
        predicted = {
            key: pred.energy_j
            for key, pred in self.predicted_energies().items()
        }
        return ErrorTable.compare(
            predicted, self.campaign.energies, label=label
        )
