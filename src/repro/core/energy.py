"""Energy and energy-delay prediction.

The paper closes by noting that power-aware speedup "coupled with an
energy-delay metric … can predict both the performance and the
energy/power consumption".  This module supplies that coupling:

* node power comes from the CMOS model at each operating point
  (:class:`~repro.cluster.power.PowerSpec` — the same one the
  simulator integrates, so predictions and simulated measurements are
  commensurable);
* a predicted execution time splits into *busy* time (the workload,
  drawing COMPUTE power) and *overhead* time (communication waits,
  drawing a COMM/IDLE blend);
* energy is ``N × Σ (power × time)`` and the energy-delay product is
  ``E · T`` (or ``E · T²``).

The EDP surface over (N, f) is what "sweet spot" identification
(:mod:`repro.core.sweetspot`) searches.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.opoints import OperatingPointTable
from repro.cluster.power import PowerSpec, PowerState
from repro.errors import ModelError

__all__ = ["EnergyModel", "EnergyPrediction"]


class EnergyPrediction(_t.NamedTuple):
    """Predicted energy figures for one (N, f) configuration."""

    energy_j: float
    time_s: float

    @property
    def edp(self) -> float:
        """Energy-delay product ``E · T``."""
        return self.energy_j * self.time_s

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product ``E · T²``."""
        return self.energy_j * self.time_s**2

    @property
    def mean_power_w(self) -> float:
        """Average power implied by the prediction."""
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0


class EnergyModel:
    """Turns time predictions into energy/EDP predictions.

    Parameters
    ----------
    power_spec:
        The node power model.
    operating_points:
        Legal (f, V) pairs for power lookups.
    overhead_comm_fraction:
        During overhead time a node is partly moving bytes (COMM) and
        partly blocked (IDLE); this sets the blend.
    """

    def __init__(
        self,
        power_spec: PowerSpec,
        operating_points: OperatingPointTable,
        overhead_comm_fraction: float = 0.3,
    ) -> None:
        if not 0.0 <= overhead_comm_fraction <= 1.0:
            raise ModelError(
                "overhead_comm_fraction must be in [0, 1]: "
                f"{overhead_comm_fraction}"
            )
        self.power_spec = power_spec
        self.operating_points = operating_points
        self.overhead_comm_fraction = float(overhead_comm_fraction)

    # -- power ---------------------------------------------------------------

    def busy_power_w(self, frequency_hz: float) -> float:
        """Per-node power while executing workload."""
        point = self.operating_points.lookup(frequency_hz)
        return self.power_spec.node_power_w(point, PowerState.COMPUTE)

    def overhead_power_w(self, frequency_hz: float) -> float:
        """Per-node power during parallel overhead (COMM/IDLE blend)."""
        point = self.operating_points.lookup(frequency_hz)
        comm = self.power_spec.node_power_w(point, PowerState.COMM)
        idle = self.power_spec.node_power_w(point, PowerState.IDLE)
        c = self.overhead_comm_fraction
        return c * comm + (1.0 - c) * idle

    # -- energy ---------------------------------------------------------------

    def predict(
        self,
        n: int,
        frequency_hz: float,
        total_time_s: float,
        overhead_time_s: float = 0.0,
    ) -> EnergyPrediction:
        """Predicted energy for ``n`` nodes at ``f`` given a predicted
        time and its overhead component.

        ``overhead_time_s`` is clamped into ``[0, total_time_s]``.
        """
        if n < 1:
            raise ModelError(f"n must be >= 1: {n}")
        if total_time_s < 0:
            raise ModelError(f"time must be >= 0: {total_time_s}")
        overhead = min(max(overhead_time_s, 0.0), total_time_s)
        busy = total_time_s - overhead
        energy = n * (
            self.busy_power_w(frequency_hz) * busy
            + self.overhead_power_w(frequency_hz) * overhead
        )
        return EnergyPrediction(energy_j=energy, time_s=total_time_s)

    def prediction_grid(
        self,
        times: _t.Mapping[tuple[int, float], float],
        overheads: _t.Mapping[tuple[int, float], float] | None = None,
    ) -> dict[tuple[int, float], EnergyPrediction]:
        """Energy predictions for a grid of predicted times."""
        overheads = overheads or {}
        return {
            (n, f): self.predict(n, f, t, overheads.get((n, f), 0.0))
            for (n, f), t in times.items()
        }
