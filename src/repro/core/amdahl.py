"""Amdahl's law and its multi-enhancement generalization (Eq. 1–3).

These are the baselines the paper's motivating example (§2, Table 1)
shows failing on power-aware clusters.  Three pieces:

* :func:`amdahl_speedup` — Eq. 2: one enhancement applied to a fraction
  of the workload.
* :func:`generalized_amdahl_speedup` — Eq. 3: ``e`` simultaneous
  enhancements, assumed independent.
* :func:`product_of_speedups_prediction` — the way Eq. 3 is actually
  *used* in the paper's Table 1: predict the combined (N, f) speedup as
  the product of the two measured single-enhancement speedups,
  ``S(N, f0) × S(1, f)``.  On communication-bound codes this
  over-predicts badly, because the enhancements are interdependent.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ModelError

__all__ = [
    "amdahl_speedup",
    "generalized_amdahl_speedup",
    "product_of_speedups_prediction",
]


def amdahl_speedup(enhanced_fraction: float, enhancement_speedup: float) -> float:
    """Eq. 2: speedup when ``enhanced_fraction`` of the work is sped up
    by ``enhancement_speedup``.

    >>> amdahl_speedup(1.0, 4.0)   # fully parallel on 4 processors
    4.0
    >>> round(amdahl_speedup(0.5, 1e12), 6)   # serial half dominates
    2.0
    """
    if not 0.0 <= enhanced_fraction <= 1.0:
        raise ModelError(
            f"enhanced fraction must be in [0, 1]: {enhanced_fraction}"
        )
    if enhancement_speedup <= 0:
        raise ModelError(
            f"enhancement speedup must be positive: {enhancement_speedup}"
        )
    denominator = (1.0 - enhanced_fraction) + enhanced_fraction / enhancement_speedup
    return 1.0 / denominator


def generalized_amdahl_speedup(
    enhancements: _t.Iterable[tuple[float, float]],
) -> float:
    """Eq. 3: the product of per-enhancement Amdahl speedups.

    Parameters
    ----------
    enhancements:
        Pairs ``(enhanced_fraction, enhancement_speedup)``, one per
        enhancement.  The paper notes this formula *assumes the
        enhancements' effects are independent* — the assumption that
        breaks on power-aware clusters.

    >>> generalized_amdahl_speedup([(1.0, 2.0), (1.0, 3.0)])
    6.0
    """
    speedup = 1.0
    count = 0
    for fraction, se in enhancements:
        speedup *= amdahl_speedup(fraction, se)
        count += 1
    if count == 0:
        raise ModelError("need at least one enhancement")
    return speedup


def product_of_speedups_prediction(
    measured_times: _t.Mapping[tuple[int, float], float],
    base_frequency_hz: float,
) -> dict[tuple[int, float], float]:
    """Table 1's predictor: ``S_pred(N, f) = S(N, f0) · S(1, f)``.

    Parameters
    ----------
    measured_times:
        ``{(n, frequency_hz): seconds}``; must contain the full base
        column ``(n, f0)`` and base row ``(1, f)`` for every cell to
        be predicted.
    base_frequency_hz:
        The slowest frequency ``f0``.

    Returns predictions for every (n, f) whose base column and row
    entries are present.
    """
    f0 = float(base_frequency_hz)
    base_cell = (1, f0)
    if base_cell not in measured_times:
        raise ModelError(f"missing baseline measurement {base_cell}")
    t_base = measured_times[base_cell]
    predictions: dict[tuple[int, float], float] = {}
    for (n, f), _t_measured in measured_times.items():
        col = (n, f0)
        row = (1, float(f))
        if col not in measured_times or row not in measured_times:
            continue
        s_parallel = t_base / measured_times[col]
        s_frequency = t_base / measured_times[row]
        predictions[(n, float(f))] = s_parallel * s_frequency
    return predictions
