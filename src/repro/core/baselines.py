"""Related-work speedup models (paper §6).

The paper situates power-aware speedup among the classical scalability
models; we implement them both as baselines for the comparison benches
and because they are useful in their own right:

* :func:`gustafson_speedup` — fixed-*time* (scaled) speedup
  [Gustafson 1988].
* :func:`memory_bounded_speedup` — Sun–Ni's memory-bounded speedup
  [Sun & Ni 1993].
* :func:`karp_flatt_serial_fraction` — the experimentally determined
  serial fraction [Karp & Flatt 1990], a diagnostic for measured
  speedups.
* :func:`isoefficiency_workload` — the workload growth needed to hold
  efficiency constant [Grama et al. 1993].
"""

from __future__ import annotations

import typing as _t

from repro.errors import ModelError

__all__ = [
    "gustafson_speedup",
    "memory_bounded_speedup",
    "karp_flatt_serial_fraction",
    "parallel_efficiency",
    "isoefficiency_workload",
]


def _check_serial_fraction(serial_fraction: float) -> float:
    if not 0.0 <= serial_fraction <= 1.0:
        raise ModelError(
            f"serial fraction must be in [0, 1]: {serial_fraction}"
        )
    return float(serial_fraction)


def _check_n(n: int) -> int:
    if n < 1:
        raise ModelError(f"processor count must be >= 1: {n}")
    return int(n)


def gustafson_speedup(serial_fraction: float, n: int) -> float:
    """Fixed-time (scaled) speedup: ``s + (1 − s)·N``.

    The workload grows with N so the parallel part fills the same wall
    time; speedup is measured against running the *scaled* workload
    serially.

    >>> gustafson_speedup(0.0, 16)
    16.0
    """
    s = _check_serial_fraction(serial_fraction)
    n = _check_n(n)
    return s + (1.0 - s) * n


def memory_bounded_speedup(
    serial_fraction: float,
    n: int,
    workload_growth: _t.Callable[[int], float] | None = None,
) -> float:
    """Sun–Ni memory-bounded speedup.

    The parallel workload scales by ``G(N)`` — the factor by which the
    aggregate memory of N nodes lets the problem grow::

        S = (s + (1 − s)·G(N)) / (s + (1 − s)·G(N)/N)

    ``G(N) = 1`` recovers Amdahl; ``G(N) = N`` recovers Gustafson.  The
    default ``G(N) = N`` models memory that scales linearly with nodes
    and a workload that uses all of it.
    """
    s = _check_serial_fraction(serial_fraction)
    n = _check_n(n)
    growth = workload_growth(n) if workload_growth is not None else float(n)
    if growth <= 0:
        raise ModelError(f"workload growth must be positive: {growth}")
    numerator = s + (1.0 - s) * growth
    denominator = s + (1.0 - s) * growth / n
    return numerator / denominator


def karp_flatt_serial_fraction(speedup: float, n: int) -> float:
    """The experimentally determined serial fraction.

    ``e = (1/S − 1/N) / (1 − 1/N)`` — computed from a *measured*
    speedup.  Rising ``e`` with N signals growing parallel overhead,
    which is precisely FT's signature in the paper.
    """
    n = _check_n(n)
    if n == 1:
        raise ModelError("Karp-Flatt is undefined for N = 1")
    if speedup <= 0:
        raise ModelError(f"speedup must be positive: {speedup}")
    return (1.0 / speedup - 1.0 / n) / (1.0 - 1.0 / n)


def parallel_efficiency(speedup: float, n: int) -> float:
    """``E = S / N`` — the speedup's share of ideal scaling."""
    n = _check_n(n)
    if speedup < 0:
        raise ModelError(f"speedup must be >= 0: {speedup}")
    return speedup / n


def isoefficiency_workload(
    overhead_time: _t.Callable[[int, float], float],
    n: int,
    efficiency: float,
    unit_work_seconds: float,
    *,
    initial_workload: float = 1.0,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> float:
    """Workload (in unit-work items) keeping ``efficiency`` on ``n`` CPUs.

    Solves the isoefficiency relation ``W = E/(1−E) · T_o(N, W) /
    t_unit`` by fixed-point iteration, where ``overhead_time(n, w)``
    prices the total overhead for workload ``w`` on ``n`` processors.

    Raises :class:`~repro.errors.ModelError` if the iteration fails to
    converge (overhead growing superlinearly in W means no fixed
    workload achieves the efficiency).
    """
    n = _check_n(n)
    if not 0.0 < efficiency < 1.0:
        raise ModelError(f"efficiency must be in (0, 1): {efficiency}")
    if unit_work_seconds <= 0:
        raise ModelError(
            f"unit work time must be positive: {unit_work_seconds}"
        )
    ratio = efficiency / (1.0 - efficiency)
    w = float(initial_workload)
    for _ in range(max_iterations):
        w_next = ratio * overhead_time(n, w) / unit_work_seconds
        if w_next <= 0:
            return 0.0
        if abs(w_next - w) <= tolerance * max(w, 1.0):
            return w_next
        w = w_next
    raise ModelError(
        f"isoefficiency iteration did not converge for n={n}, "
        f"efficiency={efficiency}"
    )
