"""Execution-time equations of the power-aware speedup model.

Implements the paper's time formulae over a decomposed
:class:`~repro.core.workload.Workload` and a pair of
:class:`~repro.core.cpi.WorkloadRates`:

* **Eq. 6** (sequential):
  ``T_1(w, f) = w_ON · CPI_ON/f_ON + w_OFF · CPI_OFF/f_OFF``
* **Eq. 9** (parallel, DOP-decomposed):
  ``T_N(w, f) = Σ_i [ (w_i_ON/i)·⌈i/N⌉·CPI_ON/f + (w_i_OFF/i)·⌈i/N⌉·CPI_OFF/f_OFF ]
  + T(w_PO_ON, f) + T(w_PO_OFF, f_OFF)``
  (the ⌈i/N⌉ factor is footnote 2's extension for DOP > N)
* **Eq. 15/16** (simplified, under Assumption 1):
  ``T_N(w, f) = T_1(w, f)/N + T_PO``.

The overhead term is delegated to an
:class:`~repro.core.workload.OverheadModel`, which is how the same
equations serve the SP (measured overhead) and FP (message-profile
overhead) parameterizations and the ablations (frequency-scaled
overhead).
"""

from __future__ import annotations

from repro.core.cpi import WorkloadRates
from repro.core.workload import OverheadModel, Workload, ZeroOverhead
from repro.errors import ConfigurationError

__all__ = ["ExecutionTimeModel"]


class ExecutionTimeModel:
    """Predicts execution times for a workload on a power-aware cluster.

    Parameters
    ----------
    workload:
        The DOP/ON/OFF-decomposed workload.
    rates:
        Seconds-per-instruction rates per frequency.
    overhead:
        Parallel-overhead model; defaults to none.
    """

    def __init__(
        self,
        workload: Workload,
        rates: WorkloadRates,
        overhead: OverheadModel | None = None,
    ) -> None:
        self.workload = workload
        self.rates = rates
        self.overhead = overhead if overhead is not None else ZeroOverhead()

    # -- Eq. 6 --------------------------------------------------------------

    def sequential_time(self, frequency_hz: float) -> float:
        """``T_1(w, f)``: the whole workload on one processor (Eq. 6)."""
        mix = self.workload.total_mix
        return (
            mix.on_chip
            * self.rates.on_chip_seconds_per_instruction(frequency_hz)
            + mix.off_chip
            * self.rates.off_chip_seconds_per_instruction(frequency_hz)
        )

    # -- Eq. 9 --------------------------------------------------------------

    def parallel_time(self, n: int, frequency_hz: float) -> float:
        """``T_N(w, f)`` with the full DOP decomposition (Eq. 9).

        For ``n = 1`` this reduces to :meth:`sequential_time` (every
        component's effective divisor is 1 and overhead vanishes).
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        on_rate = self.rates.on_chip_seconds_per_instruction(frequency_hz)
        off_rate = self.rates.off_chip_seconds_per_instruction(frequency_hz)
        time = 0.0
        for comp in self.workload.components:
            divisor = comp.effective_divisor(n)
            time += comp.mix.on_chip * on_rate / divisor
            time += comp.mix.off_chip * off_rate / divisor
        time += self.overhead.overhead_time(n, frequency_hz)
        return time

    # -- Eq. 15/16 (Assumption 1) ---------------------------------------------

    def simplified_parallel_time(self, n: int, frequency_hz: float) -> float:
        """``T_1(w, f)/N + T_PO`` (Eq. 15/16: Assumption 1).

        Treats the entire workload as perfectly parallelizable, which
        over-estimates the benefit of processors — the error source the
        paper discusses in §5.1.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        return self.sequential_time(
            frequency_hz
        ) / n + self.overhead.overhead_time(n, frequency_hz)

    # -- decomposition helpers -----------------------------------------------

    def time_breakdown(self, n: int, frequency_hz: float) -> dict[str, float]:
        """Per-term decomposition of :meth:`parallel_time`.

        Keys: ``on_chip``, ``off_chip``, ``overhead`` — the quantities
        Eq. 11 names (parallelizable/serial × ON/OFF portions are
        recoverable from the workload's components).
        """
        on_rate = self.rates.on_chip_seconds_per_instruction(frequency_hz)
        off_rate = self.rates.off_chip_seconds_per_instruction(frequency_hz)
        on = sum(
            c.mix.on_chip * on_rate / c.effective_divisor(n)
            for c in self.workload.components
        )
        off = sum(
            c.mix.off_chip * off_rate / c.effective_divisor(n)
            for c in self.workload.components
        )
        return {
            "on_chip": on,
            "off_chip": off,
            "overhead": self.overhead.overhead_time(n, frequency_hz),
        }
