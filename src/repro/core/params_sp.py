"""Simplified parameterization (paper §5.1).

The four-step recipe, verbatim from the paper:

1. Measure ``T_N(w, f0)`` for each processor count at the base
   frequency.
2. Derive the parallel overhead (Eq. 17)::

       T(w_PO^OFF, f_OFF)(N) = T_N(w, f0) − T_1(w, f0)/N

3. Measure ``T_1(w, f)`` for each frequency on one processor.
4. Predict (Eq. 18)::

       T_N(w, f) = T_1(w, f)/N + [T_N(w, f0) − T_1(w, f0)/N]

Two assumptions underpin it:

* **Assumption 1** — the workload is perfectly parallelizable
  (over-estimates the benefit of N; error grows with N).
* **Assumption 2** — parallel overhead is frequency-insensitive
  (under-estimates the benefit of f; error grows with f).

Both error signatures appear in the paper's Table 7 and in our
reproduction benches.
"""

from __future__ import annotations

import typing as _t

from repro.core.measurements import TimingCampaign
from repro.core.workload import MeasuredOverhead
from repro.errors import MeasurementError, ModelError

__all__ = ["SimplifiedParameterization"]


class SimplifiedParameterization:
    """SP model fitted from a timing campaign.

    Parameters
    ----------
    campaign:
        Must contain the base column (all N at ``f0``) and base row
        (all f at N = 1).
    """

    def __init__(self, campaign: TimingCampaign) -> None:
        self.campaign = campaign
        self.base_frequency_hz = campaign.base_frequency_hz
        self._t1_by_f = campaign.base_row()
        self._tn_at_f0 = campaign.base_column()
        if self.base_frequency_hz not in self._t1_by_f:
            raise MeasurementError(
                "SP needs the sequential run at the base frequency"
            )
        self._t1_f0 = self._t1_by_f[self.base_frequency_hz]

    # -- Step 2: Eq. 17 --------------------------------------------------------

    def overhead(self, n: int) -> float:
        """Derived parallel-overhead time for ``n`` processors (Eq. 17).

        May come out slightly negative when the measured run scales
        super-linearly (cache effects); the value is reported raw here
        and clamped only where used as a time term.
        """
        n = int(n)
        if n == 1:
            return 0.0
        if n not in self._tn_at_f0:
            raise MeasurementError(
                f"SP has no base-frequency measurement for N={n}; "
                f"measured: {sorted(self._tn_at_f0)}"
            )
        return self._tn_at_f0[n] - self._t1_f0 / n

    def overhead_model(self) -> MeasuredOverhead:
        """The derived overheads as an
        :class:`~repro.core.workload.OverheadModel` for reuse in the
        general equations."""
        return MeasuredOverhead(
            {n: self.overhead(n) for n in self._tn_at_f0 if n != 1}
        )

    # -- Step 4: Eq. 18 -------------------------------------------------------

    def predict_time(self, n: int, frequency_hz: float) -> float:
        """``T_N(w, f) = T_1(w, f)/N + overhead(N)`` (Eq. 18)."""
        n = int(n)
        f = float(frequency_hz)
        if f not in self._t1_by_f:
            raise MeasurementError(
                f"SP has no sequential measurement at {f / 1e6:.0f} MHz; "
                f"measured: {[fi / 1e6 for fi in sorted(self._t1_by_f)]}"
            )
        if n == 1:
            return self._t1_by_f[f]
        return self._t1_by_f[f] / n + max(self.overhead(n), 0.0)

    def predict_speedup(self, n: int, frequency_hz: float) -> float:
        """``S_N(w, f) = T_1(w, f0) / T_N_pred(w, f)``."""
        t = self.predict_time(n, frequency_hz)
        if t <= 0:
            raise ModelError(f"non-positive predicted time at ({n}, {frequency_hz})")
        return self._t1_f0 / t

    # -- batch helpers -----------------------------------------------------------

    def prediction_grid(
        self,
        counts: _t.Iterable[int] | None = None,
        frequencies: _t.Iterable[float] | None = None,
    ) -> dict[tuple[int, float], float]:
        """Predicted times over a grid (defaults to the campaign's)."""
        counts = tuple(counts) if counts is not None else self.campaign.counts
        freqs = (
            tuple(frequencies)
            if frequencies is not None
            else self.campaign.frequencies
        )
        return {
            (n, f): self.predict_time(n, f) for n in counts for f in freqs
        }

    def inputs_used(self) -> dict[str, _t.Any]:
        """The measurements this fit consumed (for reporting).

        SP needs ``counts + frequencies − 1`` runs, versus the full
        grid's ``counts × frequencies`` — the practical appeal the
        paper emphasizes.
        """
        return {
            "base_column_counts": sorted(self._tn_at_f0),
            "base_row_frequencies_mhz": [
                f / 1e6 for f in sorted(self._t1_by_f)
            ],
            "runs_required": len(self._tn_at_f0) + len(self._t1_by_f) - 1,
        }
