"""Fine-grain parameterization (paper §5.2).

Three steps, none of which requires running the parallel application
across the full (N, f) grid:

1. **Workload distribution** — read hardware counters on a sequential
   run; derive the per-memory-level instruction mix (Table 5).
2. **Workload time** — measure per-level seconds/instruction with
   LMBENCH-style probes at every frequency, and per-message times with
   MPPTEST-style probes (Table 6).  Weight the per-level latencies by
   the mix to get ``CPI_ON/f`` and take the memory row as
   ``CPI_OFF/f_OFF``.
3. **Prediction** — compose Eq. 14 (sequential) and Eq. 15 (parallel
   under Assumption 1) with the message-profile overhead
   ``T(w_PO, f) = messages(N) × t_msg(size(N), f)``.

Compared to SP, FP separates ON- and OFF-chip work — so frequency
effects are modelled rather than measured — at the cost of extra
parameterization studies.  The optional ``workload`` argument extends
the paper: when a DOP-decomposed workload is supplied the prediction
uses Eq. 9 instead of Assumption 1, which is the "better estimates of
DOP" direction the paper names as future work.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.workmix import InstructionMix
from repro.core.cpi import WorkloadRates
from repro.core.exectime import ExecutionTimeModel
from repro.core.workload import (
    MessageOverhead,
    MessageProfile,
    Workload,
)
from repro.errors import ModelError

__all__ = ["FineGrainParameterization"]


class FineGrainParameterization:
    """FP model built from counters + microbenchmark tables.

    Parameters
    ----------
    mix:
        Counter-derived instruction mix of the whole application
        (step 1).
    rates:
        Per-frequency ON/OFF-chip rates (step 2,
        :meth:`~repro.core.cpi.WorkloadRates.from_level_latencies`).
    message_time:
        ``(nbytes, frequency_hz) -> seconds`` per-message cost
        (step 2, MPPTEST-style).
    message_profile_for:
        ``n -> MessageProfile`` from application profiling.
    workload:
        Optional DOP decomposition.  When omitted, Assumption 1
        (fully parallel) applies, as in the paper.
    max_dop:
        The paper's ``m``; used only when ``workload`` is omitted.
    """

    def __init__(
        self,
        mix: InstructionMix,
        rates: WorkloadRates,
        message_time: _t.Callable[[float, float], float],
        message_profile_for: _t.Callable[[int], MessageProfile],
        workload: Workload | None = None,
        max_dop: int = 1 << 20,
    ) -> None:
        self.mix = mix
        self.rates = rates
        self.overhead = MessageOverhead(message_profile_for, message_time)
        if workload is None:
            workload = Workload.fully_parallel("fp", mix, max_dop)
        self.workload = workload
        self._exec = ExecutionTimeModel(workload, rates, self.overhead)

    # -- Step 3: prediction ----------------------------------------------------

    def predict_sequential_time(self, frequency_hz: float) -> float:
        """Eq. 14: ``w_ON·CPI_ON/f + w_OFF·CPI_OFF/f_OFF``."""
        return self._exec.sequential_time(frequency_hz)

    def predict_time(self, n: int, frequency_hz: float) -> float:
        """Eq. 15 (or Eq. 9 with a DOP workload): parallel time."""
        if n < 1:
            raise ModelError(f"n must be >= 1: {n}")
        return self._exec.parallel_time(n, frequency_hz)

    def predict_speedup(self, n: int, frequency_hz: float) -> float:
        """Power-aware speedup against ``T_1(w, f0)``."""
        baseline = self.predict_sequential_time(self.rates.base_frequency)
        t = self.predict_time(n, frequency_hz)
        if t <= 0:
            raise ModelError(
                f"non-positive predicted time at ({n}, {frequency_hz})"
            )
        return baseline / t

    def prediction_grid(
        self,
        counts: _t.Iterable[int],
        frequencies: _t.Iterable[float] | None = None,
    ) -> dict[tuple[int, float], float]:
        """Predicted times over a grid."""
        freqs = (
            tuple(frequencies)
            if frequencies is not None
            else self.rates.frequencies
        )
        return {
            (n, f): self.predict_time(n, f) for n in counts for f in freqs
        }

    def time_breakdown(self, n: int, frequency_hz: float) -> dict[str, float]:
        """ON-chip / OFF-chip / overhead decomposition of a prediction."""
        return self._exec.time_breakdown(n, frequency_hz)

    def parameter_summary(self) -> dict[str, _t.Any]:
        """The fitted parameters, shaped like the paper's Tables 5–6."""
        return {
            "mix": self.mix.as_dict(),
            "on_chip_fraction": self.mix.on_chip_fraction,
            "on_chip_weights": self.mix.on_chip_weights(),
            "cpi_on": self.rates.cpi_on,
            "on_chip_ns_per_ins": {
                f / 1e6: self.rates.on_chip_seconds_per_instruction(f) * 1e9
                for f in self.rates.frequencies
            },
            "off_chip_ns_per_ins": {
                f / 1e6: self.rates.off_chip_seconds_per_instruction(f) * 1e9
                for f in self.rates.frequencies
            },
        }
