"""Workload rates: seconds per instruction as functions of frequency.

The model's time equations need two rates (paper Eq. 6 / Table 6):

* ``CPI_ON / f_ON`` — seconds per ON-chip instruction.  ``CPI_ON`` is a
  frequency-independent cycle count, so this rate falls as 1/f.
* ``CPI_OFF / f_OFF`` — seconds per OFF-chip instruction.  Clocked by
  the memory bus, hence (nearly) DVFS-independent; the paper's platform
  shows a small *rise* at low core frequencies (bus downshift), which a
  per-frequency table captures.

:class:`WorkloadRates` bundles both.  Build it:

* from fine-grain measurements
  (:meth:`WorkloadRates.from_level_latencies` — §5.2 step 2: weight the
  per-memory-level latencies by the counter-derived workload
  distribution), or
* from a hardware spec directly (tests / analytic studies).
"""

from __future__ import annotations

import typing as _t

from repro.cluster.workmix import InstructionMix
from repro.errors import ConfigurationError, ModelError

__all__ = ["WorkloadRates"]


class WorkloadRates:
    """Seconds-per-instruction rates for ON- and OFF-chip work.

    Parameters
    ----------
    cpi_on:
        Average ON-chip cycles per instruction (paper: 2.19 for LU).
    off_chip_s_by_f:
        Mapping from core frequency (Hz) to seconds per OFF-chip
        instruction (Table 6's ``CPI_OFF/f_OFF`` row).
    frequencies:
        The legal frequencies.  Defaults to the keys of
        ``off_chip_s_by_f``.
    """

    def __init__(
        self,
        cpi_on: float,
        off_chip_s_by_f: _t.Mapping[float, float],
        frequencies: _t.Iterable[float] | None = None,
    ) -> None:
        if cpi_on < 0:
            raise ConfigurationError(f"cpi_on must be >= 0: {cpi_on}")
        self.cpi_on = float(cpi_on)
        self._off_chip = {float(f): float(s) for f, s in off_chip_s_by_f.items()}
        for f, s in self._off_chip.items():
            if f <= 0 or s < 0:
                raise ConfigurationError(
                    f"invalid off-chip rate entry {f} -> {s}"
                )
        if frequencies is None:
            self.frequencies = tuple(sorted(self._off_chip))
        else:
            self.frequencies = tuple(sorted(float(f) for f in frequencies))
        missing = [f for f in self.frequencies if f not in self._off_chip]
        if missing:
            raise ConfigurationError(
                f"off-chip rate missing for frequencies {missing}"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_level_latencies(
        cls,
        mix: InstructionMix,
        level_seconds_by_f: _t.Mapping[float, _t.Mapping[str, float]],
    ) -> "WorkloadRates":
        """Fine-grain parameterization step 2 (paper §5.2).

        Parameters
        ----------
        mix:
            The counter-derived workload distribution (step 1); its
            ON-chip level weights average the per-level latencies.
        level_seconds_by_f:
            ``{frequency: {"cpu": s, "l1": s, "l2": s, "mem": s}}`` —
            measured seconds per instruction at each memory level
            (LMBENCH-style probes).

        The weighted ON-chip latency must scale as 1/f if the probe data
        is consistent; ``cpi_on`` is recovered by multiplying by ``f``
        and averaging across frequencies.
        """
        if not level_seconds_by_f:
            raise ConfigurationError("need at least one frequency of probes")
        weights = mix.on_chip_weights()
        cpi_estimates = []
        off_chip: dict[float, float] = {}
        for f, levels in level_seconds_by_f.items():
            for needed in ("cpu", "l1", "l2", "mem"):
                if needed not in levels:
                    raise ConfigurationError(
                        f"probe data at {f} Hz missing level {needed!r}"
                    )
            on_seconds = sum(
                weights[level] * levels[level] for level in weights
            )
            cpi_estimates.append(on_seconds * float(f))
            off_chip[float(f)] = float(levels["mem"])
        cpi_on = sum(cpi_estimates) / len(cpi_estimates)
        return cls(cpi_on, off_chip)

    # -- rates ---------------------------------------------------------------

    def check_frequency(self, frequency_hz: float) -> float:
        """Validate ``frequency_hz`` against the known operating points."""
        f = float(frequency_hz)
        if f not in self._off_chip:
            raise ModelError(
                f"no rate data for {f / 1e6:.0f} MHz; known: "
                f"{[fi / 1e6 for fi in self.frequencies]} MHz"
            )
        return f

    def on_chip_seconds_per_instruction(self, frequency_hz: float) -> float:
        """``CPI_ON / f`` — falls as 1/f (Table 6, second row)."""
        f = self.check_frequency(frequency_hz)
        return self.cpi_on / f

    def off_chip_seconds_per_instruction(self, frequency_hz: float) -> float:
        """``CPI_OFF / f_OFF`` at the given *core* frequency."""
        f = self.check_frequency(frequency_hz)
        return self._off_chip[f]

    @property
    def base_frequency(self) -> float:
        """The lowest known frequency — the paper's ``f0``."""
        return self.frequencies[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkloadRates CPI_ON={self.cpi_on:.3f} over "
            f"{[f / 1e6 for f in self.frequencies]} MHz>"
        )
