"""Workload decomposition for the power-aware speedup model.

The paper decomposes a workload ``w`` along two axes (§3):

1. **ON/OFF-chip**: ``w = w_ON + w_OFF``.  ON-chip work scales with the
   core clock (DVFS); OFF-chip work is clocked by the memory bus.
2. **Degree of parallelism (DOP)**: ``w = Σ_i w_i`` where ``w_i`` is
   the work whose DOP is exactly ``i`` (it can use at most ``i``
   processors no matter how many exist).

On top of the decomposed workload sits the **parallel overhead**
``w_PO`` — communication and synchronization work that appears only in
parallel execution, is itself not parallelizable, and splits ON/OFF
chip.  For message-passing codes the paper observes ``w_PO_ON ≈ 0``:
overhead lives in the network, not the core (§4.3, [5, 17]).

This module provides:

* :class:`DopComponent` / :class:`Workload` — the decomposed workload.
* Overhead models implementing the ``overhead_time(n, f)`` protocol:
  :class:`ZeroOverhead`, :class:`MeasuredOverhead` (SP-style: one
  derived number per N), :class:`MessageOverhead` (FP-style: message
  count × measured per-message time).
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.cluster.workmix import InstructionMix
from repro.errors import ConfigurationError, ModelError

__all__ = [
    "DopComponent",
    "Workload",
    "OverheadModel",
    "ZeroOverhead",
    "MeasuredOverhead",
    "MessageProfile",
    "MessageOverhead",
]


@dataclasses.dataclass(frozen=True, slots=True)
class DopComponent:
    """Work with one fixed degree of parallelism.

    Attributes
    ----------
    dop:
        The component's degree of parallelism ``i`` (>= 1): the
        maximum number of processors that can be busy on it.
    mix:
        The component's instruction mix (gives ``w_i_ON`` and
        ``w_i_OFF``).
    """

    dop: int
    mix: InstructionMix

    def __post_init__(self) -> None:
        if self.dop < 1:
            raise ConfigurationError(f"dop must be >= 1: {self.dop}")

    def effective_divisor(self, n: int) -> float:
        """Parallel speedup of this component on ``n`` processors.

        With ``i = dop``: the component occupies min(i, n) processors;
        for ``i > n`` the work wraps around in ⌈i/n⌉ passes (footnote 2
        of the paper), giving ``i / ⌈i/n⌉`` effective speedup.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        return self.dop / math.ceil(self.dop / n)


class Workload:
    """A DOP- and ON/OFF-chip-decomposed workload.

    Parameters
    ----------
    name:
        Identifier used in reports.
    components:
        The DOP spectrum.  Multiple components may share a DOP value
        (they are kept separate; queries aggregate).
    """

    def __init__(
        self, name: str, components: _t.Iterable[DopComponent]
    ) -> None:
        self.name = str(name)
        self.components = tuple(components)
        if not self.components:
            raise ConfigurationError("workload needs at least one component")

    # -- constructors --------------------------------------------------------

    @classmethod
    def serial_parallel(
        cls,
        name: str,
        serial_mix: InstructionMix,
        parallel_mix: InstructionMix,
        max_dop: int,
    ) -> "Workload":
        """The common two-term split ``w = w_1 + w_N`` (paper §3 usage).

        ``serial_mix`` gets DOP 1; ``parallel_mix`` gets DOP
        ``max_dop`` (the paper's ``m``).
        """
        components = []
        if serial_mix.total > 0:
            components.append(DopComponent(1, serial_mix))
        components.append(DopComponent(max_dop, parallel_mix))
        return cls(name, components)

    @classmethod
    def fully_parallel(
        cls, name: str, mix: InstructionMix, max_dop: int
    ) -> "Workload":
        """Assumption 1 of §5.1: the whole workload has DOP = m."""
        return cls(name, [DopComponent(max_dop, mix)])

    # -- aggregates --------------------------------------------------------

    @property
    def total_mix(self) -> InstructionMix:
        """The summed instruction mix over all components."""
        return sum((c.mix for c in self.components), InstructionMix.zero())

    @property
    def total_on_chip(self) -> float:
        """``w_ON`` over the whole workload."""
        return self.total_mix.on_chip

    @property
    def total_off_chip(self) -> float:
        """``w_OFF`` over the whole workload."""
        return self.total_mix.off_chip

    @property
    def max_dop(self) -> int:
        """The paper's ``m``: the largest DOP present."""
        return max(c.dop for c in self.components)

    def serial_fraction(self) -> float:
        """Fraction of total work with DOP = 1."""
        total = self.total_mix.total
        if total <= 0:
            return 0.0
        serial = sum(c.mix.total for c in self.components if c.dop == 1)
        return serial / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Workload {self.name!r} components={len(self.components)} "
            f"m={self.max_dop}>"
        )


class OverheadModel(_t.Protocol):
    """Anything that can price parallel overhead in seconds.

    Implementations answer ``overhead_time(n, f)``: the serial parallel
    overhead time ``T(w_PO, f)`` on ``n`` processors at core frequency
    ``f`` (Hz).  ``n = 1`` must return 0 — a sequential run has no
    parallel overhead.
    """

    def overhead_time(self, n: int, frequency_hz: float) -> float:
        """Overhead seconds for (n, f)."""
        ...  # pragma: no cover - protocol


@dataclasses.dataclass(frozen=True)
class ZeroOverhead:
    """No parallel overhead (the EP idealization, Eq. 12)."""

    def overhead_time(self, n: int, frequency_hz: float) -> float:
        """Always zero: ideal parallelism has no overhead."""
        return 0.0


class MeasuredOverhead:
    """SP-style overhead: one derived/measured time per processor count.

    Embodies Assumption 2 (§5.1): overhead is frequency-*insensitive*,
    so the stored per-N seconds apply at every frequency.

    Parameters
    ----------
    by_n:
        Mapping from processor count to overhead seconds (Eq. 17's
        ``T(w_PO^OFF, f_OFF)`` per N).  Negative derived values are
        clamped to zero (they arise from super-linear cache effects).
    """

    def __init__(self, by_n: _t.Mapping[int, float]) -> None:
        self._by_n = {int(n): max(float(t), 0.0) for n, t in by_n.items()}

    def overhead_time(self, n: int, frequency_hz: float) -> float:
        """The stored per-N overhead, identical at every frequency
        (Assumption 2)."""
        if n == 1:
            return 0.0
        try:
            return self._by_n[int(n)]
        except KeyError:
            raise ModelError(
                f"no overhead measurement for n={n}; available: "
                f"{sorted(self._by_n)}"
            ) from None

    def known_counts(self) -> tuple[int, ...]:
        """Processor counts with a stored overhead value."""
        return tuple(sorted(self._by_n))


@dataclasses.dataclass(frozen=True, slots=True)
class MessageProfile:
    """A benchmark's communication profile at one processor count.

    Attributes
    ----------
    critical_messages:
        Number of messages on the critical path (the count the paper
        multiplies by a per-message time, §5.2 step 2).
    nbytes:
        Bytes per message (paper Table 6: LU sends 310 doubles at 2
        nodes, 155 at 4).
    """

    critical_messages: float
    nbytes: float

    def __post_init__(self) -> None:
        if self.critical_messages < 0:
            raise ConfigurationError(
                f"critical_messages must be >= 0: {self.critical_messages}"
            )
        if self.nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0: {self.nbytes}")


class MessageOverhead:
    """FP-style overhead: message count × measured per-message time.

    Parameters
    ----------
    profile_for:
        Callable giving the :class:`MessageProfile` at each processor
        count (from application profiling).
    message_time:
        Callable ``(nbytes, frequency_hz) -> seconds``: the per-message
        time, from MPPTEST-style measurement
        (:class:`repro.proftools.mpptest.MessageTimeTable`) or an
        analytic model (:class:`repro.mpi.cost.HockneyModel` adapted).
    """

    def __init__(
        self,
        profile_for: _t.Callable[[int], MessageProfile],
        message_time: _t.Callable[[float, float], float],
    ) -> None:
        self._profile_for = profile_for
        self._message_time = message_time

    def overhead_time(self, n: int, frequency_hz: float) -> float:
        """Messages on the critical path x per-message time at f."""
        if n <= 1:
            return 0.0
        profile = self._profile_for(n)
        return profile.critical_messages * self._message_time(
            profile.nbytes, frequency_hz
        )
