"""Prediction-error analysis.

The paper reports model quality as tables of relative errors over the
(N, f) grid (Tables 1, 3, 7).  :class:`ErrorTable` reproduces that
shape: build it from a mapping of predictions and a mapping of
measurements, query cells, rows, columns and summary statistics, and
render it through :mod:`repro.reporting.tables`.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ModelError

__all__ = ["relative_error", "ErrorTable"]

Key = tuple[int, float]


def relative_error(predicted: float, measured: float) -> float:
    """``|predicted − measured| / measured`` (the paper's error metric:
    "the difference between the measured and predicted speedup divided
    by the measured speedup", Table 3 caption)."""
    if measured == 0:
        raise ModelError("relative error undefined for measured == 0")
    return abs(predicted - measured) / abs(measured)


class ErrorTable:
    """Relative errors over a (processor count, frequency) grid."""

    def __init__(self, errors: _t.Mapping[Key, float], label: str = "") -> None:
        self._errors = {
            (int(n), float(f)): float(e) for (n, f), e in errors.items()
        }
        self.label = str(label)

    # -- constructors -------------------------------------------------------

    @classmethod
    def compare(
        cls,
        predicted: _t.Mapping[Key, float],
        measured: _t.Mapping[Key, float],
        label: str = "",
    ) -> "ErrorTable":
        """Errors over every key present in *both* mappings."""
        keys = set(predicted) & set(measured)
        if not keys:
            raise ModelError("no common (n, f) cells to compare")
        return cls(
            {k: relative_error(predicted[k], measured[k]) for k in keys},
            label=label,
        )

    # -- access -----------------------------------------------------------

    def error(self, n: int, frequency_hz: float) -> float:
        """The error at one cell."""
        key = (int(n), float(frequency_hz))
        try:
            return self._errors[key]
        except KeyError:
            raise ModelError(f"no error entry for {key}") from None

    def cells(self) -> dict[Key, float]:
        """All cells (a copy)."""
        return dict(self._errors)

    @property
    def counts(self) -> tuple[int, ...]:
        """Distinct processor counts, ascending."""
        return tuple(sorted({n for n, _ in self._errors}))

    @property
    def frequencies(self) -> tuple[float, ...]:
        """Distinct frequencies, ascending."""
        return tuple(sorted({f for _, f in self._errors}))

    def row(self, n: int) -> dict[float, float]:
        """Errors for one processor count across frequencies."""
        return {f: e for (ni, f), e in self._errors.items() if ni == n}

    def column(self, frequency_hz: float) -> dict[int, float]:
        """Errors for one frequency across processor counts."""
        f = float(frequency_hz)
        return {n: e for (n, fi), e in self._errors.items() if fi == f}

    # -- statistics -----------------------------------------------------------

    @property
    def max_error(self) -> float:
        """The worst cell."""
        return max(self._errors.values())

    @property
    def mean_error(self) -> float:
        """The average over all cells."""
        return sum(self._errors.values()) / len(self._errors)

    def max_excluding_base(self, base_frequency_hz: float) -> float:
        """Worst error ignoring the base-frequency column.

        The base column is zero by construction for measurement-driven
        predictors (the paper's tables show 0 % there), so excluding it
        gives the informative maximum.
        """
        f0 = float(base_frequency_hz)
        others = [e for (n, f), e in self._errors.items() if f != f0]
        if not others:
            raise ModelError("table only contains the base column")
        return max(others)

    def __len__(self) -> int:
        return len(self._errors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ErrorTable {self.label!r} cells={len(self)} "
            f"max={self.max_error:.1%} mean={self.mean_error:.1%}>"
        )
