"""Measurement campaigns: the raw inputs to parameterization.

A :class:`TimingCampaign` is a table of execution times indexed by
``(processor count, frequency)`` — exactly what the paper gathers on
its cluster before fitting either parameterization.  Optional energy
readings ride along for the energy-delay studies.

Both parameterizations consume campaigns:

* SP (§5.1) needs the *base column* (every N at ``f0``) and the
  *base row* (every f at N = 1).
* FP (§5.2) needs no timing campaign at all (it builds times from
  counters and microbenchmarks) but campaigns supply the measured
  truth that prediction-error tables compare against.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import MeasurementError

__all__ = ["TimingCampaign"]


@dataclasses.dataclass
class TimingCampaign:
    """Measured execution times (and optionally energies) over a grid.

    Attributes
    ----------
    times:
        ``{(n, frequency_hz): seconds}``.
    base_frequency_hz:
        The lowest frequency ``f0`` (the speedup baseline).
    energies:
        Optional ``{(n, frequency_hz): joules}``.
    label:
        Human-readable campaign name (benchmark + class).
    """

    times: dict[tuple[int, float], float]
    base_frequency_hz: float
    energies: dict[tuple[int, float], float] = dataclasses.field(
        default_factory=dict
    )
    label: str = ""

    def __post_init__(self) -> None:
        self.times = {
            (int(n), float(f)): float(t) for (n, f), t in self.times.items()
        }
        self.energies = {
            (int(n), float(f)): float(e)
            for (n, f), e in self.energies.items()
        }
        self.base_frequency_hz = float(self.base_frequency_hz)
        for key, t in self.times.items():
            if t <= 0:
                raise MeasurementError(f"non-positive time at {key}: {t}")

    # -- lookups ------------------------------------------------------------

    def time(self, n: int, frequency_hz: float) -> float:
        """The measured time at one grid point."""
        key = (int(n), float(frequency_hz))
        try:
            return self.times[key]
        except KeyError:
            raise MeasurementError(
                f"campaign {self.label!r} has no measurement at "
                f"N={key[0]}, f={key[1] / 1e6:.0f} MHz"
            ) from None

    def energy(self, n: int, frequency_hz: float) -> float:
        """The measured energy at one grid point."""
        key = (int(n), float(frequency_hz))
        try:
            return self.energies[key]
        except KeyError:
            raise MeasurementError(
                f"campaign {self.label!r} has no energy at "
                f"N={key[0]}, f={key[1] / 1e6:.0f} MHz"
            ) from None

    # -- structure ------------------------------------------------------------

    @property
    def counts(self) -> tuple[int, ...]:
        """Distinct processor counts, ascending."""
        return tuple(sorted({n for n, _ in self.times}))

    @property
    def frequencies(self) -> tuple[float, ...]:
        """Distinct frequencies, ascending."""
        return tuple(sorted({f for _, f in self.times}))

    def base_column(self) -> dict[int, float]:
        """``{n: T_N(w, f0)}`` — SP Step 1's measurements."""
        f0 = self.base_frequency_hz
        return {n: t for (n, f), t in self.times.items() if f == f0}

    def base_row(self) -> dict[float, float]:
        """``{f: T_1(w, f)}`` — SP Step 3's measurements."""
        return {f: t for (n, f), t in self.times.items() if n == 1}

    def sequential_base_time(self) -> float:
        """``T_1(w, f0)`` — the speedup baseline."""
        return self.time(1, self.base_frequency_hz)

    def speedups(self) -> dict[tuple[int, float], float]:
        """Measured power-aware speedups for every grid point (Eq. 4)."""
        baseline = self.sequential_base_time()
        return {key: baseline / t for key, t in self.times.items()}

    def merged_with(self, other: "TimingCampaign") -> "TimingCampaign":
        """A campaign containing both tables (other wins on conflicts)."""
        if other.base_frequency_hz != self.base_frequency_hz:
            raise MeasurementError(
                "cannot merge campaigns with different base frequencies"
            )
        return TimingCampaign(
            times={**self.times, **other.times},
            base_frequency_hz=self.base_frequency_hz,
            energies={**self.energies, **other.energies},
            label=self.label or other.label,
        )
