"""Power-aware speedup (paper Eq. 4 and 10–13).

Power-aware speedup compares the parallel execution time at any
(processor count, frequency) configuration against one fixed baseline:
the *sequential* run at the *lowest* frequency ``f0``::

    S_N(w, f) = T_1(w, f0) / T_N(w, f)          (Eq. 4 / Eq. 10)

This single definition captures both enhancements simultaneously, which
is the paper's point: the two effects interact through parallel
overhead and OFF-chip work, so no product of per-enhancement speedups
(Eq. 3) reproduces it for real codes.

:class:`PowerAwareSpeedupModel` evaluates the model analytically over
an :class:`~repro.core.exectime.ExecutionTimeModel`;
:func:`measured_speedup_table` computes the same quantity from measured
(or simulated) execution times so models and measurements can be
compared cell by cell.
"""

from __future__ import annotations

import typing as _t

from repro.core.exectime import ExecutionTimeModel
from repro.errors import ModelError

__all__ = ["PowerAwareSpeedupModel", "measured_speedup_table"]


class PowerAwareSpeedupModel:
    """Analytic power-aware speedup over an execution-time model.

    Parameters
    ----------
    exec_model:
        The execution-time model (workload + rates + overhead).
    base_frequency_hz:
        The paper's ``f0``.  Defaults to the rates' lowest frequency.
    simplified:
        When true, use the Assumption-1 parallel time (Eq. 15/16)
        instead of the DOP-decomposed Eq. 9.
    """

    def __init__(
        self,
        exec_model: ExecutionTimeModel,
        base_frequency_hz: float | None = None,
        simplified: bool = False,
    ) -> None:
        self.exec_model = exec_model
        if base_frequency_hz is None:
            base_frequency_hz = exec_model.rates.base_frequency
        self.base_frequency_hz = exec_model.rates.check_frequency(
            base_frequency_hz
        )
        self.simplified = bool(simplified)

    # -- times -----------------------------------------------------------

    @property
    def baseline_time(self) -> float:
        """``T_1(w, f0)``: the speedup denominator's numerator."""
        return self.exec_model.sequential_time(self.base_frequency_hz)

    def time(self, n: int, frequency_hz: float) -> float:
        """``T_N(w, f)`` under the configured equations."""
        if self.simplified:
            return self.exec_model.simplified_parallel_time(n, frequency_hz)
        return self.exec_model.parallel_time(n, frequency_hz)

    # -- speedups ------------------------------------------------------------

    def speedup(self, n: int, frequency_hz: float) -> float:
        """``S_N(w, f) = T_1(w, f0) / T_N(w, f)`` (Eq. 4/10)."""
        t = self.time(n, frequency_hz)
        if t <= 0:
            raise ModelError(f"non-positive predicted time at ({n}, {frequency_hz})")
        return self.baseline_time / t

    def parallel_speedup(self, n: int) -> float:
        """Traditional speedup at the base frequency (the 600 MHz column)."""
        return self.speedup(n, self.base_frequency_hz)

    def frequency_speedup(self, frequency_hz: float) -> float:
        """Sequential speedup from frequency alone (the N = 1 row)."""
        return self.speedup(1, frequency_hz)

    def surface(
        self,
        counts: _t.Iterable[int],
        frequencies: _t.Iterable[float] | None = None,
    ) -> dict[tuple[int, float], float]:
        """The 2-D speedup surface over a (N, f) grid (Figures 1b/2b)."""
        if frequencies is None:
            frequencies = self.exec_model.rates.frequencies
        return {
            (n, f): self.speedup(n, f)
            for n in counts
            for f in frequencies
        }


def measured_speedup_table(
    times: _t.Mapping[tuple[int, float], float],
    base_frequency_hz: float,
) -> dict[tuple[int, float], float]:
    """Speedups from a table of measured execution times.

    Parameters
    ----------
    times:
        ``{(n, frequency_hz): seconds}`` including the baseline cell
        ``(1, base_frequency_hz)``.
    base_frequency_hz:
        The paper's ``f0``.

    Returns the same keys mapped to
    ``T_measured(1, f0) / T_measured(n, f)``.
    """
    key = (1, float(base_frequency_hz))
    if key not in times:
        raise ModelError(
            f"times table is missing the baseline cell {key}"
        )
    baseline = times[key]
    if baseline <= 0:
        raise ModelError(f"non-positive baseline time: {baseline}")
    out: dict[tuple[int, float], float] = {}
    for (n, f), t in times.items():
        if t <= 0:
            raise ModelError(f"non-positive measured time at ({n}, {f})")
        out[(n, float(f))] = baseline / t
    return out
