"""Power-aware speedup: the paper's analytical contribution.

This package implements the model of Ge & Cameron's *Power-Aware
Speedup* (IPDPS 2007) and both of its parameterization methods:

* :mod:`~repro.core.workload` — workload decomposition: ON/OFF-chip
  split, degree-of-parallelism (DOP) components, parallel-overhead
  descriptions.
* :mod:`~repro.core.cpi` — workload *rates*: seconds per ON-chip and
  OFF-chip instruction as functions of frequency (Table 6's rows).
* :mod:`~repro.core.exectime` — execution-time equations (Eq. 5–9 and
  the simplified Eq. 14–16).
* :mod:`~repro.core.speedup` — power-aware speedup itself (Eq. 4,
  10–13).
* :mod:`~repro.core.amdahl` — the classical and generalized Amdahl
  baselines (Eq. 1–3) the paper argues against.
* :mod:`~repro.core.baselines` — Gustafson, Sun–Ni, Karp–Flatt,
  isoefficiency (related-work speedup models, §6).
* :mod:`~repro.core.params_sp` — simplified parameterization (§5.1).
* :mod:`~repro.core.params_fp` — fine-grain parameterization (§5.2).
* :mod:`~repro.core.energy` — energy / energy-delay prediction.
* :mod:`~repro.core.prediction` — the measurement-to-prediction facade.
* :mod:`~repro.core.sweetspot` — configuration search.
* :mod:`~repro.core.analysis` — error tables and model comparison.
"""

from repro.core.amdahl import (
    amdahl_speedup,
    generalized_amdahl_speedup,
    product_of_speedups_prediction,
)
from repro.core.analysis import ErrorTable, relative_error
from repro.core.baselines import (
    gustafson_speedup,
    karp_flatt_serial_fraction,
    memory_bounded_speedup,
)
from repro.core.cpi import WorkloadRates
from repro.core.energy import EnergyModel
from repro.core.exectime import ExecutionTimeModel
from repro.core.params_fp import FineGrainParameterization
from repro.core.params_sp import SimplifiedParameterization
from repro.core.prediction import Predictor
from repro.core.speedup import PowerAwareSpeedupModel
from repro.core.sweetspot import SweetSpotFinder
from repro.core.workload import (
    DopComponent,
    MeasuredOverhead,
    MessageOverhead,
    MessageProfile,
    Workload,
    ZeroOverhead,
)

__all__ = [
    "Workload",
    "DopComponent",
    "ZeroOverhead",
    "MeasuredOverhead",
    "MessageOverhead",
    "MessageProfile",
    "WorkloadRates",
    "ExecutionTimeModel",
    "PowerAwareSpeedupModel",
    "amdahl_speedup",
    "generalized_amdahl_speedup",
    "product_of_speedups_prediction",
    "gustafson_speedup",
    "memory_bounded_speedup",
    "karp_flatt_serial_fraction",
    "SimplifiedParameterization",
    "FineGrainParameterization",
    "EnergyModel",
    "Predictor",
    "SweetSpotFinder",
    "ErrorTable",
    "relative_error",
]
