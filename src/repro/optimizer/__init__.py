"""Energy-optimal configuration optimizer.

Searches ``(platform, processor count, frequency)`` for the
energy-, EDP- or time-optimal configuration of a benchmark under a
power budget, pricing candidates through the analytic backend and
confirming the winner in the DES.  Exposed as the
``repro-experiments optimize`` CLI, the declarative
``optimizer_search`` experiment and the service's ``POST /optimize``.
"""

from repro.optimizer.search import (
    OBJECTIVES,
    Candidate,
    OptimizeResult,
    check_objective,
    optimize,
)

__all__ = [
    "OBJECTIVES",
    "Candidate",
    "OptimizeResult",
    "check_objective",
    "optimize",
]
