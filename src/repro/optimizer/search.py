"""Energy-optimal configuration search across platforms.

The power-aware speedup model's practical payoff (paper §6): given a
benchmark and a power budget, *which* configuration — processor count,
frequency, and now platform — minimizes energy (or energy-delay
product)?  :func:`optimize` answers by exhaustive enumeration: every
``(platform, N, f)`` candidate is priced through the closed-form
analytic backend (:mod:`repro.analytic`) in one vectorized pass per
platform, infeasible candidates (cap violations, unmodelable cells)
are filtered out with recorded reasons, and the winner is optionally
*confirmed* by running its single cell through the discrete-event
simulator.

Exhaustive enumeration is deliberate: the full search space (3
platforms × 5 counts × 5 frequencies) prices in well under a
millisecond, and the CI smoke test
(``benchmarks/bench_optimizer.py``) cross-checks the winner against
an independent re-enumeration.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError
from repro.governor.caps import PowerCap
from repro.npb import BENCHMARKS, ProblemClass

__all__ = [
    "OBJECTIVES",
    "Candidate",
    "OptimizeResult",
    "check_objective",
    "optimize",
]

#: Search objectives: total energy, energy-delay product, or time.
OBJECTIVES = ("energy", "edp", "time")


def check_objective(objective: str) -> str:
    """Validate an objective name, returning it normalised."""
    name = str(objective).strip().lower()
    if name not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}: valid choices are "
            + ", ".join(repr(o) for o in OBJECTIVES)
        )
    return name


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One priced ``(platform, N, f)`` configuration."""

    platform: str
    n: int
    frequency_hz: float
    time_s: float
    energy_j: float
    feasible: bool
    reason: str = ""

    @property
    def edp_j_s(self) -> float:
        """Energy-delay product, the paper's combined metric."""
        return self.energy_j * self.time_s

    @property
    def mean_power_w(self) -> float:
        """Average cluster power over the candidate's run."""
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0

    def objective_value(self, objective: str) -> float:
        """The candidate's score under a (validated) objective."""
        if objective == "energy":
            return self.energy_j
        if objective == "edp":
            return self.edp_j_s
        return self.time_s

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready rendering (service and CLI exports)."""
        return {
            "platform": self.platform,
            "n": self.n,
            "frequency_mhz": self.frequency_hz / 1e6,
            "time_s": self.time_s,
            "energy_j": self.energy_j,
            "edp_j_s": self.edp_j_s,
            "mean_power_w": self.mean_power_w,
            "feasible": self.feasible,
            "reason": self.reason,
        }


@dataclasses.dataclass(frozen=True)
class OptimizeResult:
    """Outcome of one :func:`optimize` search."""

    benchmark: str
    problem_class: str
    objective: str
    cap: PowerCap
    platforms: tuple[str, ...]
    counts: tuple[int, ...]
    candidates: tuple[Candidate, ...]
    winner: Candidate
    skipped: tuple[dict[str, _t.Any], ...] = ()
    confirmation: dict[str, float] | None = None

    def feasible_candidates(self) -> tuple[Candidate, ...]:
        """The candidates that survived the power budget."""
        return tuple(c for c in self.candidates if c.feasible)

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-ready document (the ``/optimize`` response body)."""
        return {
            "benchmark": self.benchmark,
            "class": self.problem_class,
            "objective": self.objective,
            "cap": self.cap.as_dict(),
            "platforms": list(self.platforms),
            "counts": list(self.counts),
            "winner": self.winner.as_dict(),
            "candidates": [c.as_dict() for c in self.candidates],
            "skipped": list(self.skipped),
            "confirmation": self.confirmation,
        }


def _candidate_sort_key(
    objective: str,
) -> _t.Callable[[Candidate], tuple]:
    def key(candidate: Candidate) -> tuple:
        return (
            candidate.objective_value(objective),
            candidate.time_s,
            candidate.n,
            candidate.frequency_hz,
            candidate.platform,
        )

    return key


def optimize(
    benchmark: str,
    problem_class: str = "A",
    *,
    objective: str = "energy",
    platforms: _t.Sequence[str] | None = None,
    counts: _t.Sequence[int] | None = None,
    cap: PowerCap | None = None,
    confirm: bool = True,
    use_cache: bool = True,
) -> OptimizeResult:
    """Find the ``(platform, N, f)`` minimizing ``objective`` under ``cap``.

    Parameters
    ----------
    benchmark, problem_class:
        The workload, as in :data:`repro.npb.BENCHMARKS`.
    objective:
        ``"energy"`` (joules), ``"edp"`` (J·s) or ``"time"`` (s).
    platforms:
        Registered platform names to search over (default: every
        registered platform).  Unknown names raise
        :class:`~repro.errors.ConfigurationError` naming the choices.
    counts:
        Candidate processor counts (default: the paper grid, clipped
        per platform to its node count).
    cap:
        Power budget enforced per candidate via
        :meth:`PowerCap.admits_spec` (default: uncapped).  Candidates
        over budget stay in the result, marked infeasible.
    confirm:
        Re-run the winning cell through the DES and attach the
        relative analytic-vs-DES errors as ``confirmation``.
    use_cache:
        Passed through to the confirmation measurement.

    The search itself is purely analytic — a vectorized closed-form
    pass per platform — so it never spawns a process pool.
    """
    from repro.experiments.platform import PAPER_COUNTS
    from repro.platforms import check_platform, get_platform, platform_names

    name = str(benchmark).lower()
    if name not in BENCHMARKS:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    objective = check_objective(objective)
    cap = cap or PowerCap()
    searched = tuple(
        check_platform(p) for p in (platforms or platform_names())
    )
    if not searched:
        raise ConfigurationError("optimize needs at least one platform")
    base_counts = tuple(
        int(n) for n in (counts if counts is not None else PAPER_COUNTS)
    )

    from repro.analytic import AnalyticCampaignModel

    problem = ProblemClass.parse(problem_class)
    model_benchmark = BENCHMARKS[name](problem)
    candidates: list[Candidate] = []
    skipped: list[dict[str, _t.Any]] = []
    winner_spec = {}
    for platform in searched:
        spec = get_platform(platform)
        model = AnalyticCampaignModel(model_benchmark, spec)
        frequencies = spec.common_frequencies()
        cells = []
        for n in base_counts:
            if n > spec.n_nodes:
                skipped.append(
                    {
                        "platform": platform,
                        "n": n,
                        "reason": (
                            f"exceeds the platform's {spec.n_nodes} nodes"
                        ),
                    }
                )
                continue
            for f in frequencies:
                reason = model.unsupported_reason((n, f))
                if reason is not None:
                    skipped.append(
                        {
                            "platform": platform,
                            "n": n,
                            "frequency_mhz": f / 1e6,
                            "reason": reason,
                        }
                    )
                else:
                    cells.append((n, f))
        if not cells:
            continue
        evaluation = model.evaluate_cells(cells)
        times = evaluation.times_by_cell()
        energies = evaluation.energies_by_cell()
        for cell in cells:
            n, f = cell
            admitted = cap.admits_spec(f, spec, n)
            candidates.append(
                Candidate(
                    platform=platform,
                    n=n,
                    frequency_hz=f,
                    time_s=times[cell],
                    energy_j=energies[cell],
                    feasible=admitted,
                    reason=(
                        ""
                        if admitted
                        else f"over power cap {cap.label!r}"
                    ),
                )
            )
        winner_spec[platform] = spec

    feasible = [c for c in candidates if c.feasible]
    if not feasible:
        raise ConfigurationError(
            f"power cap {cap.label!r} ({cap.as_dict()}) admits no "
            f"candidate configuration for {name}.{problem.value} on "
            f"platforms {', '.join(searched)}"
        )
    winner = min(feasible, key=_candidate_sort_key(objective))

    confirmation: dict[str, float] | None = None
    if confirm:
        from repro.experiments.platform import measure_campaign

        campaign = measure_campaign(
            model_benchmark,
            [winner.n],
            [winner.frequency_hz],
            use_cache=use_cache,
            spec=winner_spec[winner.platform],
            backend="des",
        )
        cell = (winner.n, winner.frequency_hz)
        des_time = campaign.times[cell]
        des_energy = campaign.energies[cell]
        confirmation = {
            "des_time_s": des_time,
            "des_energy_j": des_energy,
            "time_rel_err": (
                abs(winner.time_s - des_time) / des_time
                if des_time
                else 0.0
            ),
            "energy_rel_err": (
                abs(winner.energy_j - des_energy) / des_energy
                if des_energy
                else 0.0
            ),
        }

    return OptimizeResult(
        benchmark=name,
        problem_class=problem.value,
        objective=objective,
        cap=cap,
        platforms=searched,
        counts=base_counts,
        candidates=tuple(
            sorted(candidates, key=_candidate_sort_key(objective))
        ),
        winner=winner,
        skipped=tuple(skipped),
        confirmation=confirmation,
    )
