"""Background job management for campaign simulation.

Campaigns are minutes of CPU where predictions are microseconds, so
the service runs them as *jobs*: ``POST /campaign`` returns a job id
immediately and the simulation proceeds on a small thread pool (each
thread drives the fault-tolerant :mod:`repro.runtime` process pool
underneath).  The manager provides the serving-side guarantees:

* **bounded admission** — at most ``max_queue`` jobs queued+running;
  beyond that submission raises :class:`JobQueueFullError` (HTTP 503)
  instead of accepting unbounded work;
* **deduplication** — submissions are keyed (by campaign digest); a
  key with an active job returns that job instead of a new one;
* **cancellation** — queued jobs are cancelled outright; running jobs
  get a cooperative ``cancel_requested`` flag;
* **TTL'd retention** — finished jobs stay queryable for ``ttl_s``
  seconds, then are purged so a long-lived server cannot leak
  completed-job state;
* **graceful drain** — :meth:`JobManager.drain` stops admission and
  waits for running jobs (the SIGTERM path).

Job state transitions: ``queued -> running -> done | failed``, or
``queued -> cancelled``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import typing as _t

__all__ = [
    "Job",
    "JobManager",
    "JobQueueFullError",
    "UnknownJobError",
]

#: States a job can be observed in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_ACTIVE = ("queued", "running")


class JobQueueFullError(RuntimeError):
    """The bounded job queue rejected a submission (maps to 503)."""


class UnknownJobError(KeyError):
    """No job with that id exists (maps to 404; possibly TTL-purged)."""

    def __str__(self) -> str:
        return Exception.__str__(self)


@dataclasses.dataclass
class Job:
    """One submitted campaign, as observed by the manager."""

    id: str
    key: str
    label: str
    params: dict[str, _t.Any]
    status: str = "queued"
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    result: dict[str, _t.Any] | None = None
    error: str = ""
    error_type: str = ""
    cancel_requested: bool = False
    #: Runtime accounting captured from the campaign's metrics record
    #: (source, attempts, retries, crash recoveries, per-cell attempt
    #: counts, failure reports) — the PR 2 fault-tolerance history.
    runtime: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def as_dict(self, include_result: bool = True) -> dict[str, _t.Any]:
        """JSON-ready form (what ``/jobs/<id>`` returns)."""
        document: dict[str, _t.Any] = {
            "job_id": self.id,
            "key": self.key,
            "label": self.label,
            "params": self.params,
            "status": self.status,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "cancel_requested": self.cancel_requested,
            "runtime": self.runtime,
        }
        if self.error:
            document["error"] = self.error
            document["error_type"] = self.error_type
        if include_result and self.result is not None:
            document["result"] = self.result
        return document


class JobManager:
    """Bounded, deduplicating executor of campaign jobs.

    ``fn`` passed to :meth:`submit` runs on a worker thread and
    receives the :class:`Job`; its return value (a JSON-ready dict)
    becomes ``job.result``.
    """

    def __init__(
        self,
        *,
        max_workers: int = 2,
        max_queue: int = 64,
        ttl_s: float = 900.0,
    ) -> None:
        import concurrent.futures

        self.max_queue = max(1, int(max_queue))
        self.ttl_s = max(0.0, float(ttl_s))
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []  # insertion order, for purge + list
        self._by_key: dict[str, str] = {}  # key -> active job id
        self._futures: dict[str, _t.Any] = {}
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, int(max_workers)),
            thread_name_prefix="repro-job",
        )
        self._counter = 0
        self._draining = False
        self.submitted = 0
        self.coalesced = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.expired = 0

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        key: str,
        label: str,
        fn: _t.Callable[[Job], dict[str, _t.Any]],
        params: dict[str, _t.Any] | None = None,
    ) -> tuple[Job, bool]:
        """Submit (or join) a job; returns ``(job, created)``.

        ``created`` is False when an active job with the same key
        absorbed the submission.
        """
        with self._lock:
            self.purge_expired()
            active_id = self._by_key.get(key)
            if active_id is not None:
                job = self._jobs.get(active_id)
                if job is not None and job.status in _ACTIVE:
                    self.coalesced += 1
                    return job, False
            if self._draining:
                self.rejected += 1
                raise JobQueueFullError(
                    "service is draining; not accepting new jobs"
                )
            active = sum(
                1 for j in self._jobs.values() if j.status in _ACTIVE
            )
            if active >= self.max_queue:
                self.rejected += 1
                raise JobQueueFullError(
                    f"job queue full ({active} active >= "
                    f"{self.max_queue} max)"
                )
            self._counter += 1
            job = Job(
                id=f"job-{self._counter:06d}",
                key=key,
                label=label,
                params=dict(params or {}),
                submitted_s=time.time(),
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._by_key[key] = job.id
            self.submitted += 1
            future = self._executor.submit(self._run, job, fn)
            self._futures[job.id] = future
        return job, True

    def _run(self, job: Job, fn: _t.Callable[[Job], dict]) -> None:
        with self._lock:
            if job.status == "cancelled":
                return
            job.status = "running"
            job.started_s = time.time()
        try:
            result = fn(job)
        except Exception as exc:
            with self._lock:
                job.status = "failed"
                job.error = str(exc)
                job.error_type = type(exc).__name__
                job.finished_s = time.time()
                self.failed += 1
                self._release(job)
        else:
            with self._lock:
                job.status = "done"
                job.result = result
                job.finished_s = time.time()
                self.completed += 1
                self._release(job)

    def _release(self, job: Job) -> None:
        """Drop the active-key index entry (lock held by caller)."""
        if self._by_key.get(job.key) == job.id:
            del self._by_key[job.key]
        self._futures.pop(job.id, None)

    # -- queries ---------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        """Look up one job; raises :class:`UnknownJobError`."""
        with self._lock:
            self.purge_expired()
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(
                    f"unknown job {job_id!r} (never submitted, or "
                    "expired past the result TTL)"
                )
            return job

    def jobs(self) -> list[Job]:
        """Every retained job, oldest first."""
        with self._lock:
            self.purge_expired()
            return [self._jobs[jid] for jid in self._order]

    def active_count(self) -> int:
        """Jobs currently queued or running."""
        with self._lock:
            return sum(
                1 for j in self._jobs.values() if j.status in _ACTIVE
            )

    # -- lifecycle ---------------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; flag a running one.

        A queued job (its thread has not started) transitions to
        ``cancelled``.  A running campaign cannot be interrupted
        mid-simulation, so it only gets ``cancel_requested`` — the
        caller sees the flag in the job document.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            job.cancel_requested = True
            future = self._futures.get(job_id)
            if (
                job.status == "queued"
                and future is not None
                and future.cancel()
            ):
                job.status = "cancelled"
                job.finished_s = time.time()
                self.cancelled += 1
                self._release(job)
            return job

    def purge(self, now: float | None = None) -> int:
        """Locked :meth:`purge_expired` for periodic housekeeping.

        The query methods purge opportunistically, but a service that
        stops being queried would retain expired results until the
        next request — the server's housekeeping task calls this on a
        timer so retention is bounded by the TTL, not by traffic.
        """
        with self._lock:
            return self.purge_expired(now)

    def purge_expired(self, now: float | None = None) -> int:
        """Drop finished jobs older than the TTL (lock held by caller
        when invoked internally; use :meth:`purge` standalone)."""
        if self.ttl_s <= 0:
            return 0
        now = time.time() if now is None else now
        removed = 0
        for job_id in list(self._order):
            job = self._jobs[job_id]
            if job.status in _ACTIVE or job.finished_s is None:
                continue
            if now - job.finished_s > self.ttl_s:
                del self._jobs[job_id]
                self._order.remove(job_id)
                self._futures.pop(job_id, None)
                removed += 1
                self.expired += 1
        return removed

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admission and wait for active jobs to finish.

        Returns True when everything finished inside ``timeout_s``.
        Queued-but-unstarted jobs are cancelled rather than waited on.
        """
        import asyncio

        with self._lock:
            self._draining = True
            for job_id, future in list(self._futures.items()):
                job = self._jobs[job_id]
                if job.status == "queued" and future.cancel():
                    job.status = "cancelled"
                    job.finished_s = time.time()
                    self.cancelled += 1
                    self._release(job)
        deadline = time.monotonic() + max(0.0, timeout_s)
        while self.active_count() > 0:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.02)
        return True

    def shutdown(self) -> None:
        """Tear down the worker threads (after :meth:`drain`)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def draining(self) -> bool:
        """Whether admission has been stopped for shutdown."""
        return self._draining

    def stats(self) -> dict[str, _t.Any]:
        """JSON-ready counters for the ``/metrics`` endpoint."""
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "submitted": self.submitted,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "expired": self.expired,
                "retained": len(self._jobs),
                "by_status": by_status,
                "max_queue": self.max_queue,
                "result_ttl_s": self.ttl_s,
                "draining": self._draining,
            }
