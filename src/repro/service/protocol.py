"""Wire protocol of the service: HTTP/1.1 framing and JSON rendering.

The service speaks a deliberately small slice of HTTP — enough for any
stock client (curl, ``http.client``, a browser) while staying pure
stdlib:

* request line + headers + ``Content-Length``-framed body;
* responses are always ``application/json`` with an explicit length;
* ``Connection: keep-alive`` is honored (HTTP/1.1 default), so load
  generators can reuse connections;
* malformed input maps to structured error payloads
  (``{"error": {"type", "message"}}``) rather than dropped
  connections.

Grids in request/response bodies use the shared export schema
(:func:`repro.reporting.jsonify`): cells are ``"N@fMHz"`` keys, and
:func:`parse_grid_key` inverts that rendering exactly.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import typing as _t

from repro.reporting import grid_key, jsonify

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "Request",
    "error_payload",
    "grid_key",
    "jsonify",
    "parse_grid_key",
    "read_request",
    "render_response",
]

#: Largest accepted request body (predict/campaign payloads are tiny).
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request head (request line + headers).
MAX_HEADER_BYTES = 1 << 14

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A request violated the wire protocol (maps to 400/413)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should survive this exchange."""
        connection = self.headers.get("connection", "").lower()
        if self.http_version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> _t.Any:
        """The body parsed as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")


async def read_request(reader: _t.Any) -> Request | None:
    """Parse one request off an asyncio stream.

    Returns ``None`` on a clean EOF before any bytes (the client
    closed a keep-alive connection); raises :class:`ProtocolError` on
    malformed or oversized input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request head")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large", status=413)
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head too large", status=413)

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ProtocolError(f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise ProtocolError("request body too large", status=413)
    body = await reader.readexactly(length) if length else b""

    # Strip any query string; the API is body-driven.
    path = target.split("?", 1)[0]
    return Request(
        method=method.upper(),
        path=path,
        headers=headers,
        body=body,
        http_version=version,
    )


def render_response(
    status: int,
    payload: _t.Any,
    *,
    keep_alive: bool = True,
) -> bytes:
    """Serialize a JSON response to raw HTTP bytes.

    ``payload`` is passed through :func:`jsonify`, so grid-keyed dicts
    and ``as_dict`` objects serialize without caller-side conversion.
    """
    body = json.dumps(jsonify(payload)).encode("utf-8")
    reason = _STATUS_TEXT.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def error_payload(error_type: str, message: str) -> dict[str, _t.Any]:
    """The service's uniform error body."""
    return {"error": {"type": error_type, "message": message}}


def parse_grid_key(key: str) -> tuple[int, float]:
    """Invert :func:`grid_key`: ``"4@600MHz"`` -> ``(4, 600e6)``."""
    text = key.strip()
    if not text.endswith("MHz"):
        raise ProtocolError(f"bad grid key {key!r} (expected 'N@fMHz')")
    n_text, sep, mhz_text = text[: -len("MHz")].partition("@")
    if not sep:
        raise ProtocolError(f"bad grid key {key!r} (expected 'N@fMHz')")
    try:
        return int(n_text), float(mhz_text) * 1e6
    except ValueError:
        raise ProtocolError(f"bad grid key {key!r} (expected 'N@fMHz')")
