"""Long-running prediction & campaign service.

Every other entry point to the reproduction is a one-shot CLI: each
invocation re-imports the package, re-warms the caches and cannot
share in-flight work between callers.  This subsystem turns the
reproduction into a *server* — ``repro-serve`` (or ``repro-experiments
serve``) starts a stdlib-only asyncio HTTP service that keeps fitted
models, campaign caches and the fault-tolerant worker pool alive
across requests.

The workload is asymmetric, and the service is shaped around that:

* **Predictions are closed-form and cheap** (the paper's Eqs. 10–18
  reduce to a handful of float operations once a parameterization is
  fitted), so ``POST /predict`` answers synchronously — sub-millisecond
  on a warm model — with concurrent identical requests *coalesced*
  into one computation and concurrent distinct requests *micro-batched*
  into single vectorized numpy evaluations
  (:mod:`repro.service.coalesce`).
* **Campaign simulation is expensive and cacheable**, so ``POST
  /campaign`` submits a background job (:mod:`repro.service.jobs`)
  onto the fault-tolerant :mod:`repro.runtime` pool, deduplicated
  against running jobs, a bounded in-process LRU
  (:mod:`repro.service.memcache`) and the persistent
  :class:`~repro.runtime.diskcache.DiskCache`.  ``GET /jobs/<id>``
  reports status plus the runtime's retry/attempt history.

``GET /metrics`` exposes the service counters together with
:func:`repro.runtime.campaign_metrics` (per-campaign sources, engine
throughput, disk-cache behaviour), making the PR 3 observability work
externally scrapeable; ``GET /healthz`` is the liveness probe.

Everything speaks JSON over HTTP/1.1 with no dependencies beyond the
standard library and numpy, and every float in a response is
bit-identical to the equivalent direct
:class:`~repro.core.params_sp.SimplifiedParameterization` /
:func:`~repro.experiments.platform.measure_campaign` call — JSON
round-trips doubles exactly.

Environment variables (flags take precedence):

* ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT`` — bind address
  (default ``127.0.0.1:8642``; port ``0`` picks a free port).
* ``REPRO_SERVE_WARMUP`` — comma-separated ``benchmark:CLASS`` models
  to fit before accepting traffic (e.g. ``ep:A,ft:A``); unwarmed
  models are fitted lazily on first use.
* ``REPRO_SERVE_JOB_WORKERS`` — campaign job threads (default 2).
* ``REPRO_SERVE_QUEUE`` — max queued+running jobs before ``/campaign``
  returns 503 (default 64).
* ``REPRO_SERVE_RESULT_TTL`` — seconds a finished job is retained
  (default 900).
* ``REPRO_SERVE_CACHE_ENTRIES`` — in-process LRU response-cache bound
  (default 512).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.coalesce import Coalescer, PredictBatcher
from repro.service.jobs import Job, JobManager, JobQueueFullError
from repro.service.memcache import LRUCache
from repro.service.server import (
    ReproService,
    ServiceConfig,
    ServiceThread,
    main,
)

__all__ = [
    "Coalescer",
    "Job",
    "JobManager",
    "JobQueueFullError",
    "LRUCache",
    "PredictBatcher",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "main",
]
