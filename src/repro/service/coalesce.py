"""Request coalescing and micro-batched prediction.

Two distinct sharing mechanisms live here:

* :class:`Coalescer` — *single-flight* execution: identical concurrent
  requests share one in-flight computation.  The first arrival runs
  the factory; every later identical arrival (until the result lands)
  awaits the same future.  The service uses it for predictor fitting,
  predict responses and campaign-job submission alike.
* :class:`PredictBatcher` — *micro-batching*: concurrent ``/predict``
  requests that reach the event loop in the same scheduling window are
  flushed together, and all their grid points are evaluated in one
  vectorized numpy pass per model instead of one Python call per point.

Bit-exactness is load-bearing: :func:`evaluate_points` performs the
same IEEE-754 double operations the scalar
:meth:`~repro.core.params_sp.SimplifiedParameterization.predict_time`
path performs (one divide, one add per point), just element-wise over
an array, so a batched response is bit-identical to an unbatched one —
and both are bit-identical to calling the model directly.  The
element-wise kernels themselves (:func:`repro.analytic.vectorized.
sp_times`, :func:`~repro.analytic.vectorized.energy_joules`) are
shared with the analytic campaign backend, so the service and
``backend="analytic"`` agree by construction.
"""

from __future__ import annotations

import asyncio
import dataclasses
import typing as _t

import numpy as np

from repro.analytic.vectorized import energy_joules, sp_times
from repro.core.energy import EnergyModel
from repro.core.measurements import TimingCampaign
from repro.core.params_sp import SimplifiedParameterization
from repro.errors import MeasurementError

__all__ = [
    "Coalescer",
    "PredictBatcher",
    "PredictorBundle",
    "evaluate_points",
]

GridPoint = tuple[int, float]


@dataclasses.dataclass
class PredictorBundle:
    """A fitted model and everything needed to answer ``/predict``.

    Built once per (benchmark, problem class) — the expensive part is
    the fitting campaign — then held resident by the service so
    predictions are pure closed-form arithmetic.
    """

    benchmark: str
    problem_class: str
    campaign: TimingCampaign
    sp: SimplifiedParameterization
    energy_model: EnergyModel

    def overhead_seconds(self, n: int) -> float:
        """The SP overhead term as used in energy blending (clamped)."""
        return max(self.sp.overhead(n), 0.0) if n > 1 else 0.0


def evaluate_points(
    bundle: PredictorBundle, points: _t.Sequence[GridPoint]
) -> dict[GridPoint, dict[str, float]]:
    """One vectorized pass over a batch of grid points.

    Returns ``{(n, f): {"time_s", "speedup", "energy_j", "edp"}}``
    where every float is bit-identical to the scalar
    ``sp.predict_time`` / ``sp.predict_speedup`` /
    ``energy_model.predict`` calls for that point.
    """
    if not points:
        return {}
    base_row = bundle.sp.campaign.base_row()
    base_column = bundle.sp.campaign.base_column()
    for n, f in points:
        if f not in base_row:
            raise MeasurementError(
                f"model {bundle.benchmark}.{bundle.problem_class} has "
                f"no sequential measurement at {f / 1e6:.0f} MHz; "
                f"measured: {[fi / 1e6 for fi in sorted(base_row)]}"
            )
        if n != 1 and n not in base_column:
            raise MeasurementError(
                f"model {bundle.benchmark}.{bundle.problem_class} has "
                f"no base-frequency measurement for N={n}; "
                f"measured: {sorted(base_column)}"
            )

    n_arr = np.array([float(n) for n, _ in points])
    t1_arr = np.array([base_row[f] for _, f in points])
    overhead_arr = np.array(
        [bundle.overhead_seconds(n) for n, _ in points]
    )
    # Eq. 18, element-wise: T_N(w, f) = T_1(w, f)/N + overhead(N),
    # with the N = 1 entries restored to the bare T_1 (the scalar
    # path has no overhead term there at all).
    times = sp_times(t1_arr, n_arr, overhead_arr)
    # Eq. 4 over predictions: S = T_1(w, f0) / T_N(w, f).
    speedups = bundle.campaign.sequential_base_time() / times
    # Power lookups are per-frequency table reads; the blend itself is
    # the shared element-wise kernel the analytic backend uses.
    energies = energy_joules(
        n_arr,
        np.array([bundle.energy_model.busy_power_w(f) for _, f in points]),
        np.array(
            [bundle.energy_model.overhead_power_w(f) for _, f in points]
        ),
        times,
        overhead_arr,
    )
    edps = energies * times

    results: dict[GridPoint, dict[str, float]] = {}
    for i, (n, f) in enumerate(points):
        results[(n, f)] = {
            "time_s": float(times[i]),
            "speedup": float(speedups[i]),
            "energy_j": float(energies[i]),
            "edp": float(edps[i]),
        }
    return results


class Coalescer:
    """Single-flight sharing of identical concurrent computations."""

    def __init__(self) -> None:
        self._inflight: dict[_t.Any, asyncio.Future] = {}
        #: Computations actually started (cache-miss leaders).
        self.started = 0
        #: Requests that joined an already-running computation.
        self.coalesced = 0

    def inflight(self) -> int:
        """Number of computations currently running."""
        return len(self._inflight)

    async def run(
        self,
        key: _t.Any,
        factory: _t.Callable[[], _t.Awaitable[_t.Any]],
    ) -> tuple[_t.Any, bool]:
        """Run ``factory`` unless ``key`` is already in flight.

        Returns ``(result, joined)`` where ``joined`` is True when this
        call shared another caller's computation.  Exceptions propagate
        to the leader *and* every joiner.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            # shield: a cancelled joiner must not cancel the shared
            # computation under the leader and the other joiners.
            return await asyncio.shield(existing), True

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.started += 1
        try:
            result = await factory()
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                future.exception()  # joiners still raise; leader logs
            raise
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result(result)
        return result, False


class _PendingPredict(_t.NamedTuple):
    bundle: PredictorBundle
    points: tuple[GridPoint, ...]
    future: asyncio.Future


class PredictBatcher:
    """Flush concurrent predict evaluations as vectorized batches.

    ``evaluate`` never computes inline: it parks the request and
    schedules one flush per event-loop scheduling window.  Whatever
    accumulated by the time the flush callback runs — under concurrent
    load, many requests — is grouped per model and evaluated with one
    :func:`evaluate_points` call each.
    """

    def __init__(self) -> None:
        self._pending: list[_PendingPredict] = []
        self._flush_scheduled = False
        #: Flush rounds executed.
        self.batches = 0
        #: Evaluation requests served.
        self.requests = 0
        #: Grid points evaluated across all batches (pre-dedup).
        self.batched_points = 0
        #: Largest number of requests sharing one flush.
        self.max_batch = 0

    async def evaluate(
        self, bundle: PredictorBundle, points: _t.Sequence[GridPoint]
    ) -> dict[GridPoint, dict[str, float]]:
        """Evaluate ``points`` on ``bundle``, batched with neighbours."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append(
            _PendingPredict(bundle, tuple(points), future)
        )
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_soon(self._flush)
        return await asyncio.shield(future)

    def _flush(self) -> None:
        pending, self._pending = self._pending, []
        self._flush_scheduled = False
        if not pending:
            return
        self.batches += 1
        self.requests += len(pending)
        self.max_batch = max(self.max_batch, len(pending))

        by_bundle: dict[int, list[_PendingPredict]] = {}
        bundles: dict[int, PredictorBundle] = {}
        for item in pending:
            by_bundle.setdefault(id(item.bundle), []).append(item)
            bundles[id(item.bundle)] = item.bundle

        for bundle_id, items in by_bundle.items():
            bundle = bundles[bundle_id]
            union: list[GridPoint] = []
            seen: set[GridPoint] = set()
            for item in items:
                for point in item.points:
                    if point not in seen:
                        seen.add(point)
                        union.append(point)
            self.batched_points += len(union)
            try:
                table = evaluate_points(bundle, union)
            except Exception:
                # One bad point poisons the shared pass; fall back to
                # per-request evaluation so valid requests still serve.
                for item in items:
                    try:
                        result = evaluate_points(bundle, item.points)
                    except Exception as exc:
                        if not item.future.done():
                            item.future.set_exception(exc)
                    else:
                        if not item.future.done():
                            item.future.set_result(result)
                continue
            for item in items:
                if not item.future.done():
                    item.future.set_result(
                        {point: table[point] for point in item.points}
                    )

    def stats(self) -> dict[str, _t.Any]:
        """JSON-ready counters for the ``/metrics`` endpoint."""
        return {
            "batches": self.batches,
            "requests": self.requests,
            "batched_points": self.batched_points,
            "max_batch": self.max_batch,
            "mean_batch": (
                self.requests / self.batches if self.batches else 0.0
            ),
        }
