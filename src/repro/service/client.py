"""A stdlib client for the prediction & campaign service.

:class:`ServiceClient` wraps :mod:`http.client` with one persistent
keep-alive connection per instance — concurrent callers each create
their own client (the load benchmark runs one per worker thread).
Service-side errors surface as :class:`ServiceError` carrying the
HTTP status and the structured error body.

Transient connection failures (``ConnectionRefusedError`` while the
server restarts, a reset mid-read) are retried with bounded
exponential backoff — but only when the request is safe to repeat:
idempotent GETs retry by default, POSTs only when the caller flags
``retry=True`` (fabric workers do: their completions deduplicate
server-side, so repeating one is harmless, and surviving a
coordinator restart is the point).
"""

from __future__ import annotations

import http.client
import json
import time
import typing as _t

__all__ = ["ServiceClient", "ServiceError"]

#: Connection-level failures worth retrying: the server was down,
#: restarting, or dropped the connection mid-exchange.  HTTP *status*
#: errors are never retried — the request made it and was answered.
_TRANSIENT_ERRORS = (
    http.client.HTTPException,
    ConnectionError,  # refused, reset, aborted
    BrokenPipeError,
    TimeoutError,
)


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(
        self, status: int, error_type: str, message: str
    ) -> None:
        super().__init__(
            f"HTTP {status} [{error_type}]: {message}"
        )
        self.status = status
        self.error_type = error_type
        self.message = message


class ServiceClient:
    """JSON-over-HTTP client; one keep-alive connection, not
    thread-safe (use one client per thread)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout_s: float = 60.0,
        *,
        retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.retries = max(0, int(retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self._connection: http.client.HTTPConnection | None = None
        #: Connections established / re-established after the first.
        #: ``reconnects`` staying near zero is the keep-alive path
        #: working — fabric workers surface it in their stats.
        self.connects = 0
        self.reconnects = 0

    # -- plumbing -----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            self.connects += 1
            if self.connects > 1:
                self.reconnects += 1
        return self._connection

    def close(self) -> None:
        """Drop the persistent connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: _t.Any) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: _t.Any | None = None,
        *,
        retry: bool | None = None,
    ) -> _t.Any:
        """One round trip; returns the parsed JSON body.

        A stale keep-alive connection (the server may have closed it
        between requests) always gets one silent reconnect.  Beyond
        that, *transient* connection failures — refused while the
        server restarts, reset mid-read — are retried up to
        ``self.retries`` times with exponential backoff
        (``retry_backoff_s * 2**k``), but only when ``retry`` is true:
        it defaults to ``True`` for idempotent GETs and ``False`` for
        everything else, so a non-idempotent POST is never silently
        repeated unless the caller declared it safe.
        """
        if retry is None:
            retry = method.upper() in ("GET", "HEAD")
        extra_attempts = self.retries if retry else 1
        payload = (
            json.dumps(body).encode("utf-8")
            if body is not None
            else None
        )
        headers = {"Content-Type": "application/json"}
        for attempt in range(extra_attempts + 1):
            connection = self._connect()
            try:
                connection.request(method, path, payload, headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except _TRANSIENT_ERRORS:
                self.close()
                if attempt >= extra_attempts:
                    raise
                # The first reconnect is free (stale keep-alive is
                # routine, not an outage); later ones back off.
                if attempt > 0:
                    time.sleep(
                        self.retry_backoff_s * 2 ** (attempt - 1)
                    )
        document = json.loads(raw) if raw else {}
        if response.status >= 400:
            error = (
                document.get("error", {})
                if isinstance(document, dict)
                else {}
            )
            raise ServiceError(
                response.status,
                error.get("type", "unknown"),
                error.get("message", raw.decode("utf-8", "replace")),
            )
        return document

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> dict[str, _t.Any]:
        """``GET /healthz`` — liveness (the process is up)."""
        return self.request("GET", "/healthz")

    def readyz(self) -> dict[str, _t.Any]:
        """``GET /readyz`` — readiness to take *new* work.

        Raises :class:`ServiceError` with status 503 while the
        service is draining or its job queue is full.
        """
        return self.request("GET", "/readyz")

    def metrics(self) -> dict[str, _t.Any]:
        """``GET /metrics``."""
        return self.request("GET", "/metrics")

    def platforms(self) -> dict[str, _t.Any]:
        """``GET /platforms`` — the registered platform specs."""
        return self.request("GET", "/platforms")

    def predict(
        self,
        benchmark: str,
        problem_class: str = "A",
        cells: _t.Sequence[str] | None = None,
        counts: _t.Sequence[int] | None = None,
        frequencies_mhz: _t.Sequence[float] | None = None,
        *,
        platform: str | None = None,
    ) -> dict[str, _t.Any]:
        """``POST /predict`` — closed-form SP/energy predictions.

        With no grid arguments the service evaluates the model's full
        fitted grid; ``platform`` selects a registered platform (the
        service fits one model per benchmark × class × platform).
        """
        body: dict[str, _t.Any] = {
            "benchmark": benchmark,
            "class": problem_class,
        }
        if cells is not None:
            body["cells"] = list(cells)
        if counts is not None:
            body["counts"] = list(counts)
        if frequencies_mhz is not None:
            body["frequencies_mhz"] = list(frequencies_mhz)
        if platform is not None:
            body["platform"] = platform
        return self.request("POST", "/predict", body)

    def submit_campaign(
        self,
        benchmark: str,
        problem_class: str = "A",
        counts: _t.Sequence[int] | None = None,
        frequencies_mhz: _t.Sequence[float] | None = None,
        *,
        fabric: bool | None = None,
        allow_partial: bool | None = None,
        platform: str | None = None,
    ) -> dict[str, _t.Any]:
        """``POST /campaign`` — returns the job ticket (202).

        ``fabric`` asks the service to execute on the worker fleet
        (falling back to its local pool when no workers are live);
        ``allow_partial`` lets the campaign complete with failed-cell
        metadata instead of failing outright; ``platform`` selects a
        registered platform for the grid.
        """
        body: dict[str, _t.Any] = {
            "benchmark": benchmark,
            "class": problem_class,
        }
        if counts is not None:
            body["counts"] = list(counts)
        if frequencies_mhz is not None:
            body["frequencies_mhz"] = list(frequencies_mhz)
        if fabric is not None:
            body["fabric"] = bool(fabric)
        if allow_partial is not None:
            body["allow_partial"] = bool(allow_partial)
        if platform is not None:
            body["platform"] = platform
        return self.request("POST", "/campaign", body)

    def submit_govern(
        self,
        benchmark: str,
        problem_class: str = "A",
        ranks: int = 4,
        *,
        policy: str | None = None,
        scenario: str | None = None,
        cluster_cap_w: float | None = None,
        node_cap_w: float | None = None,
        epoch_phases: int | None = None,
        safety: float | None = None,
        seed: int | None = None,
        platform: str | None = None,
    ) -> dict[str, _t.Any]:
        """``POST /govern`` — returns the job ticket (202).

        Runs a closed-loop governed simulation on the service;
        ``scenario`` names a derived power-cap scenario
        (``uncapped``/``cluster_cap``/``node_cap``), or explicit watt
        budgets can be given.  The finished job's result carries the
        full decision trace and the EDP comparison against the static
        baseline under the same cap.
        """
        body: dict[str, _t.Any] = {
            "benchmark": benchmark,
            "class": problem_class,
            "ranks": int(ranks),
        }
        if policy is not None:
            body["policy"] = policy
        if scenario is not None:
            body["scenario"] = scenario
        if cluster_cap_w is not None:
            body["cluster_cap_w"] = float(cluster_cap_w)
        if node_cap_w is not None:
            body["node_cap_w"] = float(node_cap_w)
        if epoch_phases is not None:
            body["epoch_phases"] = int(epoch_phases)
        if safety is not None:
            body["safety"] = float(safety)
        if seed is not None:
            body["seed"] = int(seed)
        if platform is not None:
            body["platform"] = platform
        return self.request("POST", "/govern", body)

    def submit_optimize(
        self,
        benchmark: str,
        problem_class: str = "A",
        *,
        objective: str = "energy",
        platforms: _t.Sequence[str] | None = None,
        counts: _t.Sequence[int] | None = None,
        scenario: str | None = None,
        cluster_cap_w: float | None = None,
        node_cap_w: float | None = None,
        confirm: bool | None = None,
    ) -> dict[str, _t.Any]:
        """``POST /optimize`` — returns the job ticket (202).

        Searches every ``(platform, N, f)`` configuration for the
        ``objective``-optimal one under the given power budget; the
        finished job's result is the full candidate ranking with the
        winner's DES confirmation.
        """
        body: dict[str, _t.Any] = {
            "benchmark": benchmark,
            "class": problem_class,
            "objective": objective,
        }
        if platforms is not None:
            body["platforms"] = list(platforms)
        if counts is not None:
            body["counts"] = list(counts)
        if scenario is not None:
            body["scenario"] = scenario
        if cluster_cap_w is not None:
            body["cluster_cap_w"] = float(cluster_cap_w)
        if node_cap_w is not None:
            body["node_cap_w"] = float(node_cap_w)
        if confirm is not None:
            body["confirm"] = bool(confirm)
        return self.request("POST", "/optimize", body)

    def experiments(self) -> dict[str, _t.Any]:
        """``GET /experiments`` — the registry's pipeline specs."""
        return self.request("GET", "/experiments")

    def submit_experiment(
        self,
        experiment_id: str,
        params: dict[str, _t.Any] | None = None,
    ) -> dict[str, _t.Any]:
        """``POST /experiments/<id>`` — returns the job ticket (202)."""
        return self.request(
            "POST", f"/experiments/{experiment_id}", dict(params or {})
        )

    def job(self, job_id: str) -> dict[str, _t.Any]:
        """``GET /jobs/<id>`` — status, runtime history, result."""
        return self.request("GET", f"/jobs/{job_id}")

    def jobs(self) -> dict[str, _t.Any]:
        """``GET /jobs`` — every retained job plus manager stats."""
        return self.request("GET", "/jobs")

    def cancel_job(self, job_id: str) -> dict[str, _t.Any]:
        """``POST /jobs/<id>/cancel``."""
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def wait_for_job(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
    ) -> dict[str, _t.Any]:
        """Poll ``/jobs/<id>`` until it leaves the active states.

        Returns the final job document (``done``, ``failed`` or
        ``cancelled``); raises :class:`TimeoutError` past
        ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            document = self.job(job_id)
            if document.get("status") not in ("queued", "running"):
                return document
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {document.get('status')!r} "
                    f"after {timeout_s}s"
                )
            time.sleep(poll_s)
