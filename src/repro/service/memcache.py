"""Bounded in-process LRU cache — the tier in front of the disk cache.

The campaign runtime already has two tiers: an unbounded per-process
dict keyed by campaign identity and the persistent, content-addressed
:class:`~repro.runtime.diskcache.DiskCache`.  A long-lived server
needs a third: a *bounded* map from request keys to fully-rendered
response payloads, so repeated traffic is served without re-rendering
(or re-reading disk) and memory stays capped no matter how varied the
traffic gets.

The implementation is an ``OrderedDict`` under a lock (service job
threads populate it while the event loop reads it) with hit / miss /
eviction counters surfaced at ``/metrics``.
"""

from __future__ import annotations

import collections
import threading
import typing as _t

__all__ = ["DEFAULT_MAX_ENTRIES", "LRUCache"]

#: Default response-cache bound (REPRO_SERVE_CACHE_ENTRIES overrides).
DEFAULT_MAX_ENTRIES = 512

_MISSING: _t.Any = object()


class LRUCache:
    """A thread-safe, bounded, least-recently-used key/value cache.

    Parameters
    ----------
    max_entries:
        Resident-entry bound; inserting beyond it evicts the least
        recently *used* (read or written) entries.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._entries: collections.OrderedDict[_t.Any, _t.Any] = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: _t.Any, default: _t.Any = None) -> _t.Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: _t.Any, value: _t.Any) -> None:
        """Insert (or refresh) ``key``, evicting beyond the bound."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: _t.Any) -> bool:
        # Membership is a metrics-free peek: no counter, no recency.
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """JSON-ready counters for the ``/metrics`` endpoint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
